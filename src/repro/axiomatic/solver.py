"""Incremental backtracking search over candidate executions.

The legacy enumerator (:mod:`repro.axiomatic.candidates`) materializes the
full cross product of reads-from choices × per-location coherence
permutations and only then filters by value resolution, RMW atomicity, and
the model's acyclicity axioms -- factorial work, most of it spent on
candidates that die on their very first inconsistent edge.  This module
replaces it with a solver that extends a partial (rf, co) assignment one
decision at a time and rejects the partial assignment the moment any
axiom breaks:

* **Decision order.**  For each location (sorted), the coherence order is
  grown append-only: each decision picks the next write in ``co``.  Once
  every write is placed, each non-RMW read picks its ``rf`` source (the
  initializing write or any same-location write).
* **Incremental cycle detection.**  Every axiom graph the model supplies
  (:meth:`~repro.axiomatic.models.AxiomaticModel.axiom_graphs`) is
  maintained as a Pearce--Kelly online topological order with an undo
  trail: adding the co/rf/fr edges a decision implies either keeps the
  order consistent or proves a cycle, in which case the whole subtree is
  pruned.
* **Unit propagation.**  An RMW's rf is forced the instant the RMW is
  placed in ``co`` (it must read its immediate co-predecessor), and in
  target mode (:func:`result_allowed`) a read whose required value is
  pinned by the target result prunes rf sources by value.
* **Value propagation.**  Concrete values flow through rf edges and
  same-thread data dependencies as soon as they are implied, and a
  functional value-dependency graph (write -> the read its stored value
  names, rf source -> read) is kept acyclic online: a cycle there is
  exactly the out-of-thin-air condition the enumerator's value fixpoint
  rejects, detected here before the candidate is ever completed.

The solver and the enumerator consume the same
:class:`~repro.axiomatic.models.AxiomGraph` descriptors, so the two
backends cannot drift on what each axiom contains; their result sets are
asserted bit-identical in the test suite and in benchmark E18.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.axiomatic.candidates import Candidate
from repro.axiomatic.events import EventLayout, ReadRef, extract_layout
from repro.axiomatic.models import AxiomaticModel, AxiomGraph
from repro.core.execution import Result
from repro.core.types import Location, Value
from repro.machine.program import Program


class SearchBudgetExceeded(RuntimeError):
    """The candidate search exceeded its configured cap or deadline."""


@dataclass(frozen=True)
class SolverConfig:
    """Resource bounds shared by the solver and the legacy enumerator.

    ``max_candidates`` bounds the number of *admitted* candidates a query
    may produce; ``max_seconds`` is a wall-clock deadline.  Either bound
    being crossed raises :class:`SearchBudgetExceeded` -- the caller
    asked a question too big for the budget, and a silently truncated
    result set would be indistinguishable from a small one.
    """

    max_candidates: Optional[int] = None
    max_seconds: Optional[float] = None


class _IncrementalOrder:
    """Online topological order with undo (Pearce & Kelly 2004).

    ``add_edge`` keeps nodes in a total order consistent with all edges
    added so far, touching only the affected region between the edge's
    endpoints; it returns False (mutating nothing) when the edge would
    close a cycle.  The trail records edge insertions and position
    reassignments so a backtracking search can rewind to any mark.
    """

    __slots__ = ("ord", "succs", "preds", "trail")

    def __init__(self, n: int) -> None:
        self.ord = list(range(n))
        self.succs: List[List[int]] = [[] for _ in range(n)]
        self.preds: List[List[int]] = [[] for _ in range(n)]
        self.trail: List[Tuple[int, int, int]] = []

    def mark(self) -> int:
        return len(self.trail)

    def undo_to(self, mark: int) -> None:
        trail = self.trail
        while len(trail) > mark:
            kind, x, y = trail.pop()
            if kind == 0:  # edge (x, y)
                self.succs[x].pop()
                self.preds[y].pop()
            else:  # node x held position y
                self.ord[x] = y

    def add_edge(self, a: int, b: int) -> bool:
        if a == b:
            return False
        ordv = self.ord
        ub = ordv[a]
        lb = ordv[b]
        if lb > ub:  # already consistent: append and done
            self.succs[a].append(b)
            self.preds[b].append(a)
            self.trail.append((0, a, b))
            return True
        # Discovery: the affected region is [lb, ub].  Along any path in
        # a consistent order positions strictly increase, so bounding the
        # DFS by the region is sound.
        forward = []
        seen_f = {b}
        stack = [b]
        while stack:
            u = stack.pop()
            forward.append(u)
            for v in self.succs[u]:
                if v == a:
                    return False  # b reaches a: the edge closes a cycle
                if v not in seen_f and ordv[v] <= ub:
                    seen_f.add(v)
                    stack.append(v)
        backward = []
        seen_b = {a}
        stack = [a]
        while stack:
            u = stack.pop()
            backward.append(u)
            for v in self.preds[u]:
                if v not in seen_b and ordv[v] >= lb:
                    seen_b.add(v)
                    stack.append(v)
        # Reassign: pool the affected positions and give them back with
        # everything reaching `a` before everything reachable from `b`.
        backward.sort(key=ordv.__getitem__)
        forward.sort(key=ordv.__getitem__)
        affected = backward + forward
        positions = sorted(ordv[u] for u in affected)
        trail = self.trail
        for u, p in zip(affected, positions):
            trail.append((1, u, ordv[u]))
            ordv[u] = p
        self.succs[a].append(b)
        self.preds[b].append(a)
        trail.append((0, a, b))
        return True


_NOPIN = object()


class _Search:
    """One solver run: program layout, axiom graphs, optional target."""

    def __init__(
        self,
        program: Program,
        layout: EventLayout,
        graphs: Sequence[AxiomGraph],
        config: Optional[SolverConfig] = None,
        target: Optional[Result] = None,
    ) -> None:
        self.program = program
        self.layout = layout
        events = layout.events
        self.by_uid = {e.uid: e for e in events}
        n = max((e.uid for e in events), default=-1) + 1

        self.graphs: List[Tuple[AxiomGraph, _IncrementalOrder]] = []
        for graph in graphs:
            order = _IncrementalOrder(n)
            for a, b in graph.po_pairs:
                if not order.add_edge(a, b):  # pragma: no cover - static po
                    raise AssertionError("static program order is cyclic")
            self.graphs.append((graph, order))

        # Functional value-dependency graph: read -> writes naming it.
        self.value_order = _IncrementalOrder(n)
        self.writes_of_read: Dict[int, List[int]] = {}
        self.wval: Dict[int, Value] = {}
        for e in events:
            if e.is_write:
                if isinstance(e.write_value, ReadRef):
                    self.writes_of_read.setdefault(
                        e.write_value.event_uid, []
                    ).append(e.uid)
                    self.value_order.add_edge(e.write_value.event_uid, e.uid)
                else:
                    self.wval[e.uid] = e.write_value

        self.writes_by_loc: Dict[Location, List[int]] = {}
        for e in events:
            if e.is_write:
                self.writes_by_loc.setdefault(e.location, []).append(e.uid)

        self.rval: Dict[int, Value] = {}
        self.readers_waiting: Dict[int, List[int]] = {}
        self.rf: Dict[int, Optional[int]] = {}
        self.co_orders: Dict[Location, List[int]] = {
            loc: [] for loc in self.writes_by_loc
        }
        self.co_pos: Dict[Location, Dict[int, int]] = {
            loc: {} for loc in self.writes_by_loc
        }
        self.assigned_reads_by_loc: Dict[Location, List[int]] = {}
        self.trail: List[Tuple[str, object]] = []

        # Decision plan: grow each location's co, then assign free reads.
        self.plan: List[Tuple[str, object]] = []
        for loc in sorted(self.writes_by_loc):
            for _ in self.writes_by_loc[loc]:
                self.plan.append(("place", loc))
        for e in events:
            if e.is_read and not e.is_write:  # RMW rf is forced at placement
                self.plan.append(("rf", e.uid))

        config = config or SolverConfig()
        self.max_candidates = config.max_candidates
        self.deadline = (
            time.monotonic() + config.max_seconds
            if config.max_seconds is not None
            else None
        )
        self.admitted = 0

        self.pin: Dict[int, Value] = {}
        self.target_ok = True
        if target is not None:
            self.target_ok = self._build_pins(target)

    # -- target mode -------------------------------------------------

    def _build_pins(self, target: Result) -> bool:
        """Pin each read's value from the target result, per-proc in po
        order.  A shape mismatch means no candidate can match."""
        reads_by_proc: Dict[int, List[int]] = {}
        for e in sorted(self.by_uid.values(), key=lambda e: (e.proc, e.po_index)):
            if e.is_read:
                reads_by_proc.setdefault(e.proc, []).append(e.uid)
        for proc in range(self.program.num_procs):
            uids = reads_by_proc.get(proc, [])
            values = target.reads[proc] if proc < len(target.reads) else ()
            if len(uids) != len(values):
                return False
            for uid, value in zip(uids, values):
                self.pin[uid] = value
        return True

    # -- trail -------------------------------------------------------

    def _mark(self) -> Tuple[int, ...]:
        return (
            len(self.trail),
            self.value_order.mark(),
            *(order.mark() for _, order in self.graphs),
        )

    def _undo(self, marks: Tuple[int, ...]) -> None:
        trail = self.trail
        while len(trail) > marks[0]:
            kind, arg = trail.pop()
            if kind == "rval":
                del self.rval[arg]
            elif kind == "wval":
                del self.wval[arg]
            elif kind == "wait":
                self.readers_waiting[arg].pop()
            elif kind == "rf":
                del self.rf[arg]
            elif kind == "co":
                uid = self.co_orders[arg].pop()
                del self.co_pos[arg][uid]
            else:  # "areader"
                self.assigned_reads_by_loc[arg].pop()
        self.value_order.undo_to(marks[1])
        for (_, order), mark in zip(self.graphs, marks[2:]):
            order.undo_to(mark)

    # -- propagation -------------------------------------------------

    def _add_edge_all(self, a: int, b: int, rf_edge: bool = False) -> bool:
        by_uid = self.by_uid
        for graph, order in self.graphs:
            if (
                rf_edge
                and graph.external_rf_only
                and by_uid[a].proc == by_uid[b].proc
            ):
                continue
            if not order.add_edge(a, b):
                return False
        return True

    def _set_read_value(self, uid: int, value: Value) -> bool:
        pin = self.pin.get(uid, _NOPIN)
        if pin is not _NOPIN and pin != value:
            return False
        self.rval[uid] = value
        self.trail.append(("rval", uid))
        for w in self.writes_of_read.get(uid, ()):
            self.wval[w] = value
            self.trail.append(("wval", w))
            for r2 in list(self.readers_waiting.get(w, ())):
                if not self._set_read_value(r2, value):
                    return False
        return True

    def _propagate_rf_value(self, read_uid: int, src: Optional[int]) -> bool:
        if src is None:
            initial = self.program.initial_memory[
                self.by_uid[read_uid].location
            ]
            return self._set_read_value(read_uid, initial)
        value = self.wval.get(src)
        if value is not None:
            return self._set_read_value(read_uid, value)
        # The source write's value hangs on a not-yet-resolved read; park
        # this read to be resolved by the cascade when the value lands.
        self.readers_waiting.setdefault(src, []).append(read_uid)
        self.trail.append(("wait", src))
        return True

    def _assign_rf(self, read_uid: int, src: Optional[int]) -> bool:
        self.rf[read_uid] = src
        self.trail.append(("rf", read_uid))
        loc = self.by_uid[read_uid].location
        self.assigned_reads_by_loc.setdefault(loc, []).append(read_uid)
        self.trail.append(("areader", loc))
        if src is not None:
            if not self._add_edge_all(src, read_uid, rf_edge=True):
                return False
            if not self.value_order.add_edge(src, read_uid):
                return False  # out-of-thin-air value cycle
        # fr: this read precedes every write already placed co-after its
        # source (writes placed later add their own fr at placement).
        order = self.co_orders.get(loc)
        if order:
            start = 0 if src is None else self.co_pos[loc][src] + 1
            for w in order[start:]:
                if w != read_uid and not self._add_edge_all(read_uid, w):
                    return False
        return self._propagate_rf_value(read_uid, src)

    def _place_write(self, loc: Location, uid: int) -> bool:
        order = self.co_orders[loc]
        pred = order[-1] if order else None
        order.append(uid)
        self.co_pos[loc][uid] = len(order) - 1
        self.trail.append(("co", loc))
        if pred is not None and not self._add_edge_all(pred, uid):
            return False
        # fr: every already-assigned read of this location precedes the
        # new write (their sources are all co-before it).
        for r in self.assigned_reads_by_loc.get(loc, ()):
            if r != uid and not self._add_edge_all(r, uid):
                return False
        event = self.by_uid[uid]
        if event.is_read:
            # Unit propagation: an RMW reads its immediate co-predecessor.
            return self._assign_rf(uid, pred)
        return True

    # -- search ------------------------------------------------------

    def _rf_sources(self, read_uid: int) -> Iterator[Optional[int]]:
        loc = self.by_uid[read_uid].location
        pin = self.pin.get(read_uid, _NOPIN)
        if pin is _NOPIN:
            yield None
            yield from self.writes_by_loc.get(loc, ())
            return
        if self.program.initial_memory[loc] == pin:
            yield None
        for src in self.writes_by_loc.get(loc, ()):
            value = self.wval.get(src)
            if value is None or value == pin:
                yield src

    def run(self) -> Iterator[Candidate]:
        if not self.target_ok:
            return
        yield from self._decide(0)

    def _decide(self, i: int) -> Iterator[Candidate]:
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise SearchBudgetExceeded(
                f"axiomatic search for {self.program.name!r} passed its "
                "deadline"
            )
        plan = self.plan
        if i == len(plan):
            yield self._leaf()
            return
        kind, arg = plan[i]
        if kind == "place":
            loc = arg
            placed = self.co_pos[loc]
            for uid in self.writes_by_loc[loc]:
                if uid in placed:
                    continue
                marks = self._mark()
                if self._place_write(loc, uid):
                    yield from self._decide(i + 1)
                self._undo(marks)
        else:
            read_uid = arg
            for src in self._rf_sources(read_uid):
                marks = self._mark()
                if self._assign_rf(read_uid, src):
                    yield from self._decide(i + 1)
                self._undo(marks)

    def _leaf(self) -> Candidate:
        self.admitted += 1
        if (
            self.max_candidates is not None
            and self.admitted > self.max_candidates
        ):
            raise SearchBudgetExceeded(
                f"axiomatic search for {self.program.name!r} exceeded "
                f"{self.max_candidates} admitted candidates"
            )
        candidate = Candidate(
            program=self.program,
            events=self.layout.events,
            rf=dict(self.rf),
            co={
                loc: tuple(order) for loc, order in self.co_orders.items()
            },
            read_values=dict(self.rval),
            write_values=dict(self.wval),
            fences=self.layout.fences,
        )
        candidate.__dict__["_event_table"] = self.by_uid
        candidate.__dict__["_co_positions"] = {
            loc: dict(pos) for loc, pos in self.co_pos.items()
        }
        return candidate


def solve_candidates(
    program: Program,
    model: Optional[AxiomaticModel] = None,
    config: Optional[SolverConfig] = None,
) -> Iterator[Candidate]:
    """Yield the candidates the model admits, search-pruned.

    With ``model=None`` the search runs with no acyclicity axioms and
    yields exactly the well-formed candidate set (RMW atomicity and value
    consistency still prune) -- the single-enumeration backend for
    multi-model tables.
    """
    layout = extract_layout(program)
    graphs = (
        model.axiom_graphs(program, layout) if model is not None else ()
    )
    return _Search(program, layout, graphs, config=config).run()


def solver_allowed_results(
    program: Program,
    model: AxiomaticModel,
    config: Optional[SolverConfig] = None,
) -> FrozenSet[Result]:
    """Every result the model admits on ``program`` (solver backend)."""
    return frozenset(
        candidate.result()
        for candidate in solve_candidates(program, model, config)
    )


def result_allowed(
    program: Program,
    model: AxiomaticModel,
    result: Result,
    config: Optional[SolverConfig] = None,
) -> bool:
    """Does the model admit this exact result?

    Runs the search in target mode: every read's value is pinned from the
    result, so rf sources with a known conflicting value are never even
    branched on, and the search exits on the first matching candidate.
    """
    layout = extract_layout(program)
    graphs = model.axiom_graphs(program, layout)
    search = _Search(
        program, layout, graphs, config=config, target=result
    )
    for candidate in search.run():
        if candidate.result() == result:
            return True
    return False
