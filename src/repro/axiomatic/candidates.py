"""Candidate-execution enumeration: reads-from and coherence choices.

A *candidate execution* fixes, for every read event, the write event (or
initializing write) it reads from (``rf``), and for every location a total
order of its write events (``co``, with the initializing write first).
Value resolution then propagates concrete values through ``rf`` and
through same-thread data dependencies; candidates whose values never
stabilize (out-of-thin-air value cycles) or whose read-modify-write events
do not read their immediate ``co`` predecessor are discarded.

The memory models in :mod:`repro.axiomatic.models` filter these candidates
by acyclicity axioms over ``po ∪ rf ∪ co ∪ fr`` fragments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.axiomatic.events import Event, InitWrite, ReadRef, extract_events
from repro.core.execution import Result
from repro.core.types import Location, Value
from repro.machine.program import Program

#: rf maps a read event uid to the sourcing write event uid, or None for
#: the location's initializing write.
RfMap = Dict[int, Optional[int]]
#: co maps a location to the uids of its writes in coherence order
#: (the implicit initializing write precedes all of them).
CoMap = Dict[Location, Tuple[int, ...]]


@dataclass
class Candidate:
    """One candidate execution with resolved values."""

    program: Program
    events: List[Event]
    rf: RfMap
    co: CoMap
    read_values: Dict[int, Value]
    write_values: Dict[int, Value]

    def value_of_read(self, event: Event) -> Value:
        """Concrete value returned by a read event."""
        return self.read_values[event.uid]

    def fr_edges(self) -> List[Tuple[int, int]]:
        """from-read edges: read -> writes co-after its source."""
        edges: List[Tuple[int, int]] = []
        for read_uid, write_uid in self.rf.items():
            location = self._event(read_uid).location
            order = self.co.get(location, ())
            if write_uid is None:
                later = order  # everything is after the init write
            else:
                index = order.index(write_uid)
                later = order[index + 1 :]
            for w in later:
                if w != read_uid:  # an RMW does not fr to itself
                    edges.append((read_uid, w))
        return edges

    def _event(self, uid: int) -> Event:
        return self.events[uid]

    def result(self) -> Result:
        """The observable result of this candidate."""
        reads: List[List[Value]] = [[] for _ in range(self.program.num_procs)]
        for event in sorted(self.events, key=lambda e: (e.proc, e.po_index)):
            if event.is_read:
                reads[event.proc].append(self.read_values[event.uid])
        final = {}
        for location, initial in self.program.initial_memory.items():
            order = self.co.get(location, ())
            final[location] = (
                self.write_values[order[-1]] if order else initial
            )
        return Result.build(reads, final)


def enumerate_candidates(program: Program) -> Iterator[Candidate]:
    """Yield every well-formed candidate execution of a litmus program."""
    events = extract_events(program)
    reads = [e for e in events if e.is_read]
    writes_by_loc: Dict[Location, List[Event]] = {}
    for e in events:
        if e.is_write:
            writes_by_loc.setdefault(e.location, []).append(e)

    rf_choices: List[List[Optional[int]]] = []
    for read in reads:
        sources: List[Optional[int]] = [None]  # the initializing write
        sources.extend(
            w.uid for w in writes_by_loc.get(read.location, ())
        )
        rf_choices.append(sources)

    locations = sorted(writes_by_loc)
    co_choices = [
        list(itertools.permutations([w.uid for w in writes_by_loc[loc]]))
        for loc in locations
    ]

    for rf_pick in itertools.product(*rf_choices) if reads else [()]:
        rf: RfMap = {read.uid: src for read, src in zip(reads, rf_pick)}
        for co_pick in itertools.product(*co_choices) if locations else [()]:
            co: CoMap = dict(zip(locations, co_pick))
            candidate = _resolve(program, events, rf, co)
            if candidate is not None:
                yield candidate


def _resolve(
    program: Program,
    events: List[Event],
    rf: RfMap,
    co: CoMap,
) -> Optional[Candidate]:
    """Propagate values; reject unstable or RMW-inconsistent candidates."""
    # RMW atomicity at the candidate level: an RMW must read its immediate
    # co-predecessor (or the init write if it is co-first).
    for event in events:
        if event.is_read and event.is_write:
            order = co[event.location]
            index = order.index(event.uid)
            expected = None if index == 0 else order[index - 1]
            if rf[event.uid] != expected:
                return None

    write_values: Dict[int, Value] = {}
    unresolved: Dict[int, ReadRef] = {}
    for event in events:
        if not event.is_write:
            continue
        if isinstance(event.write_value, ReadRef):
            unresolved[event.uid] = event.write_value
        else:
            write_values[event.uid] = event.write_value

    read_values: Dict[int, Value] = {}

    def source_value(read_uid: int) -> Optional[Value]:
        src = rf[read_uid]
        if src is None:
            location = events[read_uid].location
            return program.initial_memory[location]
        return write_values.get(src)

    pending = {e.uid for e in events if e.is_read}
    progress = True
    while pending and progress:
        progress = False
        for read_uid in list(pending):
            value = source_value(read_uid)
            if value is None:
                continue
            read_values[read_uid] = value
            pending.discard(read_uid)
            progress = True
            for write_uid, ref in list(unresolved.items()):
                if ref.event_uid == read_uid:
                    write_values[write_uid] = value
                    del unresolved[write_uid]
    if pending or unresolved:
        return None  # value cycle: out-of-thin-air candidate
    return Candidate(
        program=program,
        events=events,
        rf=rf,
        co=co,
        read_values=read_values,
        write_values=write_values,
    )
