"""Candidate-execution enumeration: reads-from and coherence choices.

A *candidate execution* fixes, for every read event, the write event (or
initializing write) it reads from (``rf``), and for every location a total
order of its write events (``co``, with the initializing write first).
Value resolution then propagates concrete values through ``rf`` and
through same-thread data dependencies; candidates whose values never
stabilize (out-of-thin-air value cycles) or whose read-modify-write events
do not read their immediate ``co`` predecessor are discarded.

The memory models in :mod:`repro.axiomatic.models` filter these candidates
by acyclicity axioms over ``po ∪ rf ∪ co ∪ fr`` fragments.

This module is the *generate-then-filter* enumerator: it materializes the
full cross product of rf choices × per-location co permutations and
resolves each combination.  :mod:`repro.axiomatic.solver` replaces it as
the production backend with an incremental backtracking search; the
enumerator is kept as the differential oracle the solver is checked
against (the ``core/_legacy.py`` idiom).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.axiomatic.events import (
    Event,
    EventLayout,
    FenceMarker,
    InitWrite,
    ReadRef,
    extract_layout,
)
from repro.core.execution import Result
from repro.core.types import Location, Value
from repro.machine.program import Program

#: rf maps a read event uid to the sourcing write event uid, or None for
#: the location's initializing write.
RfMap = Dict[int, Optional[int]]
#: co maps a location to the uids of its writes in coherence order
#: (the implicit initializing write precedes all of them).
CoMap = Dict[Location, Tuple[int, ...]]
#: co positions: location -> {write uid -> index in the co order}.
CoPosMap = Dict[Location, Dict[int, int]]


@dataclass
class Candidate:
    """One candidate execution with resolved values."""

    program: Program
    events: Sequence[Event]
    rf: RfMap
    co: CoMap
    read_values: Dict[int, Value]
    write_values: Dict[int, Value]
    fences: Tuple[FenceMarker, ...] = ()

    def value_of_read(self, event: Event) -> Value:
        """Concrete value returned by a read event."""
        return self.read_values[event.uid]

    def event(self, uid: int) -> Event:
        """The event with this uid (no uid == list-index assumption)."""
        table = self.__dict__.get("_event_table")
        if table is None:
            table = {e.uid: e for e in self.events}
            self.__dict__["_event_table"] = table
        return table[uid]

    def co_positions(self) -> CoPosMap:
        """Per-location {write uid -> co index}, computed once."""
        positions = self.__dict__.get("_co_positions")
        if positions is None:
            positions = {
                location: {uid: i for i, uid in enumerate(order)}
                for location, order in self.co.items()
            }
            self.__dict__["_co_positions"] = positions
        return positions

    def fr_edges(self) -> List[Tuple[int, int]]:
        """from-read edges: read -> writes co-after its source."""
        cached = self.__dict__.get("_fr_edges")
        if cached is not None:
            return cached
        positions = self.co_positions()
        edges: List[Tuple[int, int]] = []
        for read_uid, write_uid in self.rf.items():
            location = self.event(read_uid).location
            order = self.co.get(location, ())
            if write_uid is None:
                later = order  # everything is after the init write
            else:
                later = order[positions[location][write_uid] + 1 :]
            for w in later:
                if w != read_uid:  # an RMW does not fr to itself
                    edges.append((read_uid, w))
        self.__dict__["_fr_edges"] = edges
        return edges

    def _event(self, uid: int) -> Event:
        return self.event(uid)

    def result(self) -> Result:
        """The observable result of this candidate."""
        reads: List[List[Value]] = [[] for _ in range(self.program.num_procs)]
        for event in sorted(self.events, key=lambda e: (e.proc, e.po_index)):
            if event.is_read:
                reads[event.proc].append(self.read_values[event.uid])
        final = {}
        for location, initial in self.program.initial_memory.items():
            order = self.co.get(location, ())
            final[location] = (
                self.write_values[order[-1]] if order else initial
            )
        return Result.build(reads, final)


def enumerate_candidates(program: Program) -> Iterator[Candidate]:
    """Yield every well-formed candidate execution of a litmus program."""
    layout = extract_layout(program)
    events = layout.events
    reads = [e for e in events if e.is_read]
    writes_by_loc: Dict[Location, List[Event]] = {}
    for e in events:
        if e.is_write:
            writes_by_loc.setdefault(e.location, []).append(e)

    rf_choices: List[List[Optional[int]]] = []
    for read in reads:
        sources: List[Optional[int]] = [None]  # the initializing write
        sources.extend(
            w.uid for w in writes_by_loc.get(read.location, ())
        )
        rf_choices.append(sources)

    locations = sorted(writes_by_loc)
    # Each permutation carries its position map, computed once here rather
    # than rediscovered with order.index() for every (rf, co) combination.
    co_choices: List[List[Tuple[Tuple[int, ...], Dict[int, int]]]] = [
        [
            (perm, {uid: i for i, uid in enumerate(perm)})
            for perm in itertools.permutations(
                [w.uid for w in writes_by_loc[loc]]
            )
        ]
        for loc in locations
    ]

    for rf_pick in itertools.product(*rf_choices) if reads else [()]:
        rf: RfMap = {read.uid: src for read, src in zip(reads, rf_pick)}
        for co_pick in itertools.product(*co_choices) if locations else [()]:
            co: CoMap = {
                loc: perm for loc, (perm, _) in zip(locations, co_pick)
            }
            co_pos: CoPosMap = {
                loc: pos for loc, (_, pos) in zip(locations, co_pick)
            }
            candidate = _resolve(program, layout, rf, co, co_pos)
            if candidate is not None:
                yield candidate


def _resolve(
    program: Program,
    layout: EventLayout,
    rf: RfMap,
    co: CoMap,
    co_pos: Optional[CoPosMap] = None,
) -> Optional[Candidate]:
    """Propagate values; reject unstable or RMW-inconsistent candidates."""
    events = layout.events
    if co_pos is None:
        co_pos = {
            location: {uid: i for i, uid in enumerate(order)}
            for location, order in co.items()
        }
    by_uid = {e.uid: e for e in events}
    # RMW atomicity at the candidate level: an RMW must read its immediate
    # co-predecessor (or the init write if it is co-first).
    for event in events:
        if event.is_read and event.is_write:
            order = co[event.location]
            index = co_pos[event.location][event.uid]
            expected = None if index == 0 else order[index - 1]
            if rf[event.uid] != expected:
                return None

    write_values: Dict[int, Value] = {}
    unresolved: Dict[int, ReadRef] = {}
    for event in events:
        if not event.is_write:
            continue
        if isinstance(event.write_value, ReadRef):
            unresolved[event.uid] = event.write_value
        else:
            write_values[event.uid] = event.write_value

    read_values: Dict[int, Value] = {}

    def source_value(read_uid: int) -> Optional[Value]:
        src = rf[read_uid]
        if src is None:
            location = by_uid[read_uid].location
            return program.initial_memory[location]
        return write_values.get(src)

    pending = {e.uid for e in events if e.is_read}
    progress = True
    while pending and progress:
        progress = False
        for read_uid in list(pending):
            value = source_value(read_uid)
            if value is None:
                continue
            read_values[read_uid] = value
            pending.discard(read_uid)
            progress = True
            for write_uid, ref in list(unresolved.items()):
                if ref.event_uid == read_uid:
                    write_values[write_uid] = value
                    del unresolved[write_uid]
    if pending or unresolved:
        return None  # value cycle: out-of-thin-air candidate
    candidate = Candidate(
        program=program,
        events=events,
        rf=rf,
        co=co,
        read_values=read_values,
        write_values=write_values,
        fences=layout.fences,
    )
    candidate.__dict__["_co_positions"] = co_pos
    candidate.__dict__["_event_table"] = by_uid
    return candidate
