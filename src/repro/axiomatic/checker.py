"""Axiomatic outcome computation and cross-validation against enumeration.

:func:`allowed_results` is the axiomatic counterpart of
:func:`repro.core.sc.sc_results`: the set of results a model admits on a
straight-line program.  For the SC model the two must agree exactly --
that agreement is property-tested in the suite, tying the axiomatic and
operational halves of the library together.

Two interchangeable backends compute the set:

* ``"solver"`` (the default) -- the incremental backtracking search of
  :mod:`repro.axiomatic.solver`, which prunes partial (rf, co)
  assignments the moment an axiom breaks;
* ``"enumerator"`` -- the original generate-then-filter enumeration of
  :mod:`repro.axiomatic.candidates`, kept as the differential oracle the
  solver is checked against (the ``core/_legacy.py`` idiom).

Setting ``REPRO_AXIOMATIC_LEGACY=1`` in the environment flips the default
back to the enumerator everywhere -- the escape hatch if the solver is
ever suspected of disagreeing with the oracle in the wild.
"""

from __future__ import annotations

import os
import time
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional

from repro.axiomatic.candidates import Candidate, enumerate_candidates
from repro.axiomatic.models import AxiomaticModel
from repro.axiomatic.solver import (
    SearchBudgetExceeded,
    SolverConfig,
    solve_candidates,
)
from repro.core.execution import Result
from repro.machine.program import Program

#: Environment variable forcing the legacy enumerator backend.
LEGACY_BACKEND_ENV = "REPRO_AXIOMATIC_LEGACY"


def default_backend() -> str:
    """The backend used when a caller does not pick one explicitly."""
    flag = os.environ.get(LEGACY_BACKEND_ENV, "").strip().lower()
    return "enumerator" if flag in ("1", "true", "yes", "on") else "solver"


def _admitted_candidates(
    program: Program,
    model: Optional[AxiomaticModel],
    backend: Optional[str],
    config: Optional[SolverConfig],
) -> Iterator[Candidate]:
    """Candidates the model admits, via the chosen backend.

    Both backends honor the same :class:`SolverConfig` budget: the cap
    counts admitted candidates, the deadline is wall-clock, and crossing
    either raises :class:`SearchBudgetExceeded`.
    """
    backend = backend or default_backend()
    if backend == "solver":
        yield from solve_candidates(program, model, config)
        return
    if backend != "enumerator":
        raise ValueError(f"unknown axiomatic backend {backend!r}")
    config = config or SolverConfig()
    deadline = (
        time.monotonic() + config.max_seconds
        if config.max_seconds is not None
        else None
    )
    admitted = 0
    for candidate in enumerate_candidates(program):
        if deadline is not None and time.monotonic() > deadline:
            raise SearchBudgetExceeded(
                f"axiomatic search for {program.name!r} passed its deadline"
            )
        if model is not None and not model.allows(candidate):
            continue
        admitted += 1
        if (
            config.max_candidates is not None
            and admitted > config.max_candidates
        ):
            raise SearchBudgetExceeded(
                f"axiomatic search for {program.name!r} exceeded "
                f"{config.max_candidates} admitted candidates"
            )
        yield candidate


def allowed_results(
    program: Program,
    model: AxiomaticModel,
    backend: Optional[str] = None,
    config: Optional[SolverConfig] = None,
) -> FrozenSet[Result]:
    """Every result the model admits on ``program``."""
    return frozenset(
        candidate.result()
        for candidate in _admitted_candidates(program, model, backend, config)
    )


def allowed_candidates(
    program: Program,
    model: AxiomaticModel,
    backend: Optional[str] = None,
    config: Optional[SolverConfig] = None,
) -> List[Candidate]:
    """The admitted candidates themselves (for inspection/tests)."""
    return list(_admitted_candidates(program, model, backend, config))


def well_formed_candidates(
    program: Program,
    backend: Optional[str] = None,
    config: Optional[SolverConfig] = None,
) -> Iterator[Candidate]:
    """Every well-formed candidate, with no model axioms applied."""
    return _admitted_candidates(program, None, backend, config)


def outcome_table(
    programs: Iterable[Program], models: Iterable[AxiomaticModel]
) -> List[Dict[str, object]]:
    """Rows of {program, model, num_results} for reporting.

    Each program's candidate set is enumerated exactly once and every
    model is checked per candidate (the earlier implementation re-ran the
    full enumeration for each model).
    """
    rows: List[Dict[str, object]] = []
    models = list(models)
    for program in programs:
        admitted: Dict[str, set] = {model.name: set() for model in models}
        for candidate in well_formed_candidates(program):
            result = candidate.result()
            for model in models:
                if model.allows(candidate):
                    admitted[model.name].add(result)
        for model in models:
            rows.append(
                {
                    "program": program.name,
                    "model": model.name,
                    "num_results": len(admitted[model.name]),
                }
            )
    return rows
