"""Axiomatic outcome computation and cross-validation against enumeration.

:func:`allowed_results` is the axiomatic counterpart of
:func:`repro.core.sc.sc_results`: the set of results a model admits on a
straight-line program.  For the SC model the two must agree exactly --
that agreement is property-tested in the suite, tying the axiomatic and
operational halves of the library together.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List

from repro.axiomatic.candidates import Candidate, enumerate_candidates
from repro.axiomatic.models import AxiomaticModel
from repro.core.execution import Result
from repro.machine.program import Program


def allowed_results(
    program: Program, model: AxiomaticModel
) -> FrozenSet[Result]:
    """Every result the model admits on ``program``."""
    results = set()
    for candidate in enumerate_candidates(program):
        if model.allows(candidate):
            results.add(candidate.result())
    return frozenset(results)


def allowed_candidates(
    program: Program, model: AxiomaticModel
) -> List[Candidate]:
    """The admitted candidates themselves (for inspection/tests)."""
    return [c for c in enumerate_candidates(program) if model.allows(c)]


def outcome_table(
    programs: Iterable[Program], models: Iterable[AxiomaticModel]
) -> List[Dict[str, object]]:
    """Rows of {program, model, num_results} for reporting."""
    rows: List[Dict[str, object]] = []
    models = list(models)
    for program in programs:
        for model in models:
            rows.append(
                {
                    "program": program.name,
                    "model": model.name,
                    "num_results": len(allowed_results(program, model)),
                }
            )
    return rows
