"""Axiomatic memory models over candidate executions.

Each model is an acyclicity predicate over fragments of
``po ∪ rf ∪ co ∪ fr``:

* :class:`SCModel` -- sequential consistency: ``acyclic(po ∪ rf ∪ co ∪ fr)``
  (the standard equivalent of Lamport's definition for candidate
  executions);
* :class:`TSOModel` -- a TSO-like model: program order loses its
  write-to-read edges (different locations), internal reads-from is
  relaxed (store-to-load forwarding), and SC-per-location is kept.
  Included as the classic "write buffer with bypassing" comparison point;
* :class:`CoherenceModel` -- only per-location orderings (what a cache
  coherence protocol alone guarantees; [Col90]'s write serialization).

:class:`WeakOrderingDRF` wraps the contract view of the paper's
Definition 2: for programs that obey DRF0 it admits exactly the SC
candidates; for other programs it admits everything coherent (the paper
lets non-conforming software observe anything the substrate can produce,
"random values" included -- coherence is our substrate's floor).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.axiomatic.candidates import Candidate
from repro.core.relations import Relation


def _program_order_edges(candidate: Candidate) -> List[Tuple[int, int]]:
    by_proc: dict = {}
    for event in candidate.events:
        by_proc.setdefault(event.proc, []).append(event)
    edges = []
    for events in by_proc.values():
        events.sort(key=lambda e: e.po_index)
        for a, b in zip(events, events[1:]):
            edges.append((a.uid, b.uid))
    return edges


def _rf_edges(candidate: Candidate) -> List[Tuple[int, int]]:
    return [
        (src, read_uid)
        for read_uid, src in candidate.rf.items()
        if src is not None and src != read_uid
    ]


def _co_edges(candidate: Candidate) -> List[Tuple[int, int]]:
    edges = []
    for order in candidate.co.values():
        for a, b in zip(order, order[1:]):
            edges.append((a, b))
    return edges


def _acyclic(edge_groups: Iterable[List[Tuple[int, int]]]) -> bool:
    relation = Relation()
    for edges in edge_groups:
        for a, b in edges:
            relation.add(a, b)
    return relation.is_acyclic()


class AxiomaticModel:
    """Base: a predicate over candidate executions."""

    name = "abstract"

    def allows(self, candidate: Candidate) -> bool:
        """True when this model admits the candidate."""
        raise NotImplementedError


class SCModel(AxiomaticModel):
    """Sequential consistency: acyclic(po ∪ rf ∪ co ∪ fr)."""

    name = "SC"

    def allows(self, candidate: Candidate) -> bool:
        return _acyclic(
            [
                _program_order_edges(candidate),
                _rf_edges(candidate),
                _co_edges(candidate),
                candidate.fr_edges(),
            ]
        )


class CoherenceModel(AxiomaticModel):
    """Per-location SC only: what write serialization alone guarantees."""

    name = "COHERENCE"

    def allows(self, candidate: Candidate) -> bool:
        events = candidate.events
        po_loc = [
            (a, b)
            for (a, b) in _program_order_edges(candidate)
            if events[a].location == events[b].location
        ]
        return _acyclic(
            [po_loc, _rf_edges(candidate), _co_edges(candidate), candidate.fr_edges()]
        )


class TSOModel(AxiomaticModel):
    """TSO-like: write->read program order relaxed, store forwarding.

    ``ppo`` drops write-to-read pairs; external reads-from, coherence and
    from-read stay global; per-location SC is enforced separately.  A
    faithful SPARC/x86-TSO model has further subtleties (this one is the
    textbook approximation, which is exact on the catalog's tests).
    """

    name = "TSO"

    def allows(self, candidate: Candidate) -> bool:
        if not CoherenceModel().allows(candidate):
            return False
        events = candidate.events
        ppo = [
            (a, b)
            for (a, b) in _program_order_edges_closure(candidate)
            if not (events[a].is_write and not events[a].is_read
                    and events[b].is_read and not events[b].is_write
                    and events[a].location != events[b].location)
        ]
        rfe = [
            (src, read_uid)
            for (src, read_uid) in _rf_edges(candidate)
            if events[src].proc != events[read_uid].proc
        ]
        return _acyclic([ppo, rfe, _co_edges(candidate), candidate.fr_edges()])


def _program_order_edges_closure(candidate: Candidate) -> List[Tuple[int, int]]:
    """All (earlier, later) same-thread pairs, not just adjacent ones.

    TSO's ppo filter must look at every pair: with only adjacent edges, the
    missing W->R edge would be recreated transitively through an
    intermediate event.
    """
    by_proc: dict = {}
    for event in candidate.events:
        by_proc.setdefault(event.proc, []).append(event)
    edges = []
    for events in by_proc.values():
        events.sort(key=lambda e: e.po_index)
        for i, a in enumerate(events):
            for b in events[i + 1 :]:
                edges.append((a.uid, b.uid))
    return edges


class WeakOrderingDRF(AxiomaticModel):
    """Definition 2 as an axiomatic contract.

    For a DRF0 program the admitted candidates are exactly the SC ones;
    otherwise anything the coherent substrate can produce is admitted.
    The DRF0 premise is checked once per program with the operational
    checker (:func:`repro.core.drf0.check_program`).
    """

    name = "WO-DRF0"

    def __init__(self) -> None:
        self._verdicts: dict = {}

    def _program_is_drf0(self, candidate: Candidate) -> bool:
        program = candidate.program
        key = id(program)
        if key not in self._verdicts:
            from repro.core.drf0 import check_program

            self._verdicts[key] = check_program(program).obeys
        return self._verdicts[key]

    def allows(self, candidate: Candidate) -> bool:
        if self._program_is_drf0(candidate):
            return SCModel().allows(candidate)
        return CoherenceModel().allows(candidate)


#: The models compared in the E7 litmus table.
ALL_MODELS = [SCModel(), TSOModel(), CoherenceModel(), WeakOrderingDRF()]
