"""Axiomatic memory models over candidate executions.

Each model is a conjunction of acyclicity axioms over fragments of
``po ∪ rf ∪ co ∪ fr``:

* :class:`SCModel` -- sequential consistency: ``acyclic(po ∪ rf ∪ co ∪ fr)``
  (the standard equivalent of Lamport's definition for candidate
  executions);
* :class:`TSOModel` -- a TSO-like model: program order loses its
  write-to-read edges (different locations, no intervening fence),
  internal reads-from is relaxed (store-to-load forwarding), and
  SC-per-location is kept.  Included as the classic "write buffer with
  bypassing" comparison point;
* :class:`CoherenceModel` -- only per-location orderings (what a cache
  coherence protocol alone guarantees; [Col90]'s write serialization).

:class:`WeakOrderingDRF` wraps the contract view of the paper's
Definition 2: for programs that obey DRF0 it admits exactly the SC
candidates; for other programs it admits everything coherent (the paper
lets non-conforming software observe anything the substrate can produce,
"random values" included -- coherence is our substrate's floor).

Every model exposes its axioms in two equivalent forms:

* :meth:`AxiomaticModel.allows` -- the batch predicate over a finished
  :class:`~repro.axiomatic.candidates.Candidate` (used by the legacy
  enumerator oracle and by single-candidate queries);
* :meth:`AxiomaticModel.axiom_graphs` -- the same axioms as
  :class:`AxiomGraph` descriptors (static program-order edge lists plus
  an rf filter), which the incremental solver
  (:mod:`repro.axiomatic.solver`) turns into online cycle detectors.

Both forms are derived from the same edge-pair helpers, so the solver and
the oracle cannot drift apart on what each axiom contains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.axiomatic.candidates import Candidate
from repro.axiomatic.events import Event, EventLayout, FenceMarker
from repro.core.relations import Relation
from repro.machine.program import Program


@dataclass(frozen=True)
class AxiomGraph:
    """One acyclicity axiom: a static po fragment plus dynamic edges.

    ``po_pairs`` is the model's program-order contribution, fixed per
    program.  The dynamic relations are implied: every axiom graph also
    contains ``co``, ``fr``, and ``rf`` -- all of rf when
    ``external_rf_only`` is False, only cross-processor rf edges when
    True (TSO's ``rfe``: store-to-load forwarding drops internal rf from
    the global ordering requirement).
    """

    name: str
    po_pairs: Tuple[Tuple[int, int], ...]
    external_rf_only: bool = False


def _by_proc(events: Sequence[Event]) -> List[List[Event]]:
    by_proc: dict = {}
    for event in events:
        by_proc.setdefault(event.proc, []).append(event)
    rows = []
    for proc in sorted(by_proc):
        row = by_proc[proc]
        row.sort(key=lambda e: e.po_index)
        rows.append(row)
    return rows


def po_adjacent_pairs(layout: EventLayout) -> Tuple[Tuple[int, int], ...]:
    """Adjacent same-thread pairs: the transitive reduction of po."""
    edges = []
    for row in _by_proc(layout.events):
        for a, b in zip(row, row[1:]):
            edges.append((a.uid, b.uid))
    return tuple(edges)


def po_loc_pairs(layout: EventLayout) -> Tuple[Tuple[int, int], ...]:
    """Adjacent same-thread pairs restricted to a common location."""
    by_uid = {e.uid: e for e in layout.events}
    return tuple(
        (a, b)
        for (a, b) in po_adjacent_pairs(layout)
        if by_uid[a].location == by_uid[b].location
    )


def tso_ppo_pairs(layout: EventLayout) -> Tuple[Tuple[int, int], ...]:
    """TSO's preserved program order, over the *closure* of po.

    The filter must look at every same-thread pair, not just adjacent
    ones: with only adjacent edges, a dropped W->R edge would be
    recreated transitively through an intermediate event.  A pair is
    dropped when it is a write-only event before a read-only event of a
    different location -- unless a fence sits po-between them, which
    restores the ordering (the write buffer drains at the fence).
    """
    edges = []
    for row in _by_proc(layout.events):
        for i, a in enumerate(row):
            for b in row[i + 1 :]:
                relaxed = (
                    a.is_write
                    and not a.is_read
                    and b.is_read
                    and not b.is_write
                    and a.location != b.location
                    and not layout.fence_between(a, b)
                )
                if not relaxed:
                    edges.append((a.uid, b.uid))
    return tuple(edges)


def _candidate_layout(candidate: Candidate) -> EventLayout:
    layout = candidate.__dict__.get("_layout")
    if layout is None:
        layout = EventLayout(tuple(candidate.events), candidate.fences)
        candidate.__dict__["_layout"] = layout
    return layout


def _rf_edges(candidate: Candidate) -> List[Tuple[int, int]]:
    return [
        (src, read_uid)
        for read_uid, src in candidate.rf.items()
        if src is not None and src != read_uid
    ]


def _co_edges(candidate: Candidate) -> List[Tuple[int, int]]:
    edges = []
    for order in candidate.co.values():
        for a, b in zip(order, order[1:]):
            edges.append((a, b))
    return edges


def _acyclic(edge_groups: Iterable[Iterable[Tuple[int, int]]]) -> bool:
    relation = Relation()
    for edges in edge_groups:
        for a, b in edges:
            relation.add(a, b)
    return relation.is_acyclic()


def _graph_allows(candidate: Candidate, graph: AxiomGraph) -> bool:
    rf = _rf_edges(candidate)
    if graph.external_rf_only:
        rf = [
            (src, read_uid)
            for (src, read_uid) in rf
            if candidate.event(src).proc != candidate.event(read_uid).proc
        ]
    return _acyclic(
        [graph.po_pairs, rf, _co_edges(candidate), candidate.fr_edges()]
    )


class AxiomaticModel:
    """Base: a predicate over candidate executions."""

    name = "abstract"

    def axiom_graphs(
        self, program: Program, layout: EventLayout
    ) -> List[AxiomGraph]:
        """The model's acyclicity axioms for this program's layout."""
        raise NotImplementedError

    def allows(self, candidate: Candidate) -> bool:
        """True when this model admits the candidate."""
        layout = _candidate_layout(candidate)
        return all(
            _graph_allows(candidate, graph)
            for graph in self.axiom_graphs(candidate.program, layout)
        )


class SCModel(AxiomaticModel):
    """Sequential consistency: acyclic(po ∪ rf ∪ co ∪ fr)."""

    name = "SC"

    def axiom_graphs(
        self, program: Program, layout: EventLayout
    ) -> List[AxiomGraph]:
        return [AxiomGraph("sc", po_adjacent_pairs(layout))]


class CoherenceModel(AxiomaticModel):
    """Per-location SC only: what write serialization alone guarantees."""

    name = "COHERENCE"

    def axiom_graphs(
        self, program: Program, layout: EventLayout
    ) -> List[AxiomGraph]:
        return [AxiomGraph("coherence", po_loc_pairs(layout))]


class TSOModel(AxiomaticModel):
    """TSO-like: write->read program order relaxed, store forwarding.

    ``ppo`` drops write-to-read pairs (restored by fences); external
    reads-from, coherence and from-read stay global; per-location SC is
    enforced separately.  A faithful SPARC/x86-TSO model has further
    subtleties (this one is the textbook approximation, which is exact on
    the catalog's tests).
    """

    name = "TSO"

    def axiom_graphs(
        self, program: Program, layout: EventLayout
    ) -> List[AxiomGraph]:
        return [
            AxiomGraph("coherence", po_loc_pairs(layout)),
            AxiomGraph(
                "tso", tso_ppo_pairs(layout), external_rf_only=True
            ),
        ]


class WeakOrderingDRF(AxiomaticModel):
    """Definition 2 as an axiomatic contract.

    For a DRF0 program the admitted candidates are exactly the SC ones;
    otherwise anything the coherent substrate can produce is admitted.
    The DRF0 premise is checked once per program with the operational
    checker (:func:`repro.core.drf0.check_program`).
    """

    name = "WO-DRF0"

    def __init__(self) -> None:
        self._verdicts: dict = {}

    def program_is_drf0(self, program: Program) -> bool:
        """The (cached) operational DRF0 verdict the contract hinges on."""
        key = id(program)
        if key not in self._verdicts:
            from repro.core.drf0 import check_program

            self._verdicts[key] = check_program(program).obeys
        return self._verdicts[key]

    def prime_verdict(self, program: Program, obeys: bool) -> None:
        """Pre-seed the DRF0 verdict (campaigns that already know it)."""
        self._verdicts[id(program)] = bool(obeys)

    def axiom_graphs(
        self, program: Program, layout: EventLayout
    ) -> List[AxiomGraph]:
        if self.program_is_drf0(program):
            return SCModel().axiom_graphs(program, layout)
        return CoherenceModel().axiom_graphs(program, layout)


#: The models compared in the E7 litmus table.
ALL_MODELS = [SCModel(), TSOModel(), CoherenceModel(), WeakOrderingDRF()]
