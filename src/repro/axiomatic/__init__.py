"""Axiomatic framework: candidate executions and acyclicity models."""

from repro.axiomatic.candidates import Candidate, enumerate_candidates
from repro.axiomatic.checker import (
    LEGACY_BACKEND_ENV,
    allowed_candidates,
    allowed_results,
    default_backend,
    outcome_table,
    well_formed_candidates,
)
from repro.axiomatic.events import (
    Event,
    EventLayout,
    ReadRef,
    UnsupportedProgram,
    extract_events,
    extract_layout,
)
from repro.axiomatic.models import (
    ALL_MODELS,
    AxiomaticModel,
    AxiomGraph,
    CoherenceModel,
    SCModel,
    TSOModel,
    WeakOrderingDRF,
)
from repro.axiomatic.solver import (
    SearchBudgetExceeded,
    SolverConfig,
    result_allowed,
    solve_candidates,
    solver_allowed_results,
)

__all__ = [
    "ALL_MODELS",
    "AxiomGraph",
    "AxiomaticModel",
    "Candidate",
    "CoherenceModel",
    "Event",
    "EventLayout",
    "LEGACY_BACKEND_ENV",
    "ReadRef",
    "SCModel",
    "SearchBudgetExceeded",
    "SolverConfig",
    "TSOModel",
    "UnsupportedProgram",
    "WeakOrderingDRF",
    "allowed_candidates",
    "allowed_results",
    "default_backend",
    "enumerate_candidates",
    "extract_events",
    "extract_layout",
    "outcome_table",
    "result_allowed",
    "solve_candidates",
    "solver_allowed_results",
    "well_formed_candidates",
]
