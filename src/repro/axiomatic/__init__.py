"""Axiomatic framework: candidate executions and acyclicity models."""

from repro.axiomatic.candidates import Candidate, enumerate_candidates
from repro.axiomatic.checker import (
    allowed_candidates,
    allowed_results,
    outcome_table,
)
from repro.axiomatic.events import (
    Event,
    ReadRef,
    UnsupportedProgram,
    extract_events,
)
from repro.axiomatic.models import (
    ALL_MODELS,
    AxiomaticModel,
    CoherenceModel,
    SCModel,
    TSOModel,
    WeakOrderingDRF,
)

__all__ = [
    "ALL_MODELS",
    "AxiomaticModel",
    "Candidate",
    "CoherenceModel",
    "Event",
    "ReadRef",
    "SCModel",
    "TSOModel",
    "UnsupportedProgram",
    "WeakOrderingDRF",
    "allowed_candidates",
    "allowed_results",
    "enumerate_candidates",
    "extract_events",
    "outcome_table",
]
