"""Static events and symbolic values for the axiomatic framework.

The axiomatic layer works on **straight-line** programs (the standard
litmus-test restriction): each thread's memory instructions map to a fixed
list of :class:`Event` objects.  Store operands may be constants or
registers holding a value read earlier in the same thread -- that is enough
for data-dependency litmus tests (MP with dependent store, etc.) while
keeping value resolution a simple fixpoint.

Fences are not events: they carry no location and take part in no ``rf`` /
``co`` / ``fr`` edge.  :func:`extract_layout` records each fence as a
``(proc, slot)`` marker -- the fence sits *before* the thread's ``slot``-th
memory event -- so order-sensitive models (TSO's ppo filter) can ask
whether a fence separates a same-thread pair without the fence perturbing
``po_index`` numbering.  :func:`extract_events` keeps the historical
fence-rejecting behaviour for callers (delay-set analysis) whose theory
has no fence treatment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.types import Location, OpKind, Value
from repro.machine.isa import (
    Add,
    Div,
    Fence,
    Load,
    MemoryInstruction,
    Mov,
    Mul,
    Store,
    Sub,
    SyncLoad,
    SyncStore,
    TestAndSet,
    Unset,
)
from repro.machine.program import Program


class UnsupportedProgram(ValueError):
    """Raised for programs outside the axiomatic fragment."""


@dataclass(frozen=True)
class ReadRef:
    """Symbolic value: 'whatever event ``event_uid``'s read returns'."""

    event_uid: int


#: A symbolic-or-concrete value.
SymValue = Union[Value, ReadRef]


@dataclass
class Event:
    """One static memory event of a straight-line program.

    ``write_value`` is symbolic (:class:`ReadRef`) when the stored value
    depends on an earlier read of the same thread.
    """

    uid: int
    proc: int
    po_index: int
    kind: OpKind
    location: Location
    write_value: Optional[SymValue] = None

    @property
    def is_read(self) -> bool:
        """True if the event has a read component."""
        return self.kind.has_read

    @property
    def is_write(self) -> bool:
        """True if the event has a write component."""
        return self.kind.has_write

    @property
    def is_sync(self) -> bool:
        """True for synchronization events."""
        return self.kind.is_sync

    def __hash__(self) -> int:
        return self.uid

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"e{self.uid}(P{self.proc} {self.kind.value} {self.location})"


@dataclass(frozen=True)
class InitWrite:
    """The implicit initializing write of one location (co-minimal)."""

    location: Location
    value: Value


#: A fence marker ``(proc, slot)``: the fence separates the same-thread
#: pair ``(a, b)`` exactly when ``a.po_index < slot <= b.po_index``.
FenceMarker = Tuple[int, int]


@dataclass(frozen=True)
class EventLayout:
    """The static shape of a program in the axiomatic fragment.

    ``events`` are the memory events (uids dense, in thread/po order) and
    ``fences`` the fence markers, kept out of band so every existing
    event-indexed structure (rf, co, value maps) is untouched by fences.
    """

    events: Tuple[Event, ...]
    fences: Tuple[FenceMarker, ...] = ()

    def fence_between(self, a: Event, b: Event) -> bool:
        """True when a fence sits po-between same-thread events a and b."""
        if a.proc != b.proc:
            return False
        lo, hi = sorted((a.po_index, b.po_index))
        return any(
            proc == a.proc and lo < slot <= hi
            for proc, slot in self.fences
        )


def extract_events(program: Program) -> List[Event]:
    """Symbolically execute each (straight-line) thread into events.

    Rejects fences: callers of this entry point (delay-set analysis)
    model conflict/program-order graphs with no fence treatment, so a
    silently dropped fence would produce wrong answers.  Fence-aware
    callers use :func:`extract_layout`.
    """
    return list(extract_layout(program, allow_fences=False).events)


def extract_layout(
    program: Program, allow_fences: bool = True
) -> EventLayout:
    """Symbolically execute a straight-line program into an event layout."""
    if not program.is_straight_line():
        raise UnsupportedProgram(
            f"program {program.name!r} has branches; the axiomatic layer "
            "handles straight-line litmus programs only"
        )
    events: List[Event] = []
    fences: List[FenceMarker] = []
    uid = 0
    for proc, code in enumerate(program.threads):
        regs: Dict[str, SymValue] = {}

        def operand(value) -> SymValue:
            if isinstance(value, int):
                return value
            return regs.get(value, 0)

        def arith(op, a, b) -> SymValue:
            if isinstance(a, ReadRef) or isinstance(b, ReadRef):
                raise UnsupportedProgram(
                    "arithmetic on read values is outside the axiomatic fragment"
                )
            return op(a, b)

        po_index = 0
        for instr in code.instructions:
            if isinstance(instr, Mov):
                regs[instr.dst] = operand(instr.src)
            elif isinstance(instr, Add):
                regs[instr.dst] = arith(
                    lambda x, y: x + y, operand(instr.a), operand(instr.b)
                )
            elif isinstance(instr, Sub):
                regs[instr.dst] = arith(
                    lambda x, y: x - y, operand(instr.a), operand(instr.b)
                )
            elif isinstance(instr, Mul):
                regs[instr.dst] = arith(
                    lambda x, y: x * y, operand(instr.a), operand(instr.b)
                )
            elif isinstance(instr, Div):
                regs[instr.dst] = arith(
                    lambda x, y: (x // y if y else 0),
                    operand(instr.a),
                    operand(instr.b),
                )
            elif isinstance(instr, MemoryInstruction):
                write_value: Optional[SymValue] = None
                if isinstance(instr, (Store, SyncStore)):
                    write_value = operand(instr.src)
                elif isinstance(instr, Unset):
                    write_value = 0
                elif isinstance(instr, TestAndSet):
                    write_value = instr.set_value
                event = Event(
                    uid=uid,
                    proc=proc,
                    po_index=po_index,
                    kind=instr.kind,
                    location=instr.location,
                    write_value=write_value,
                )
                events.append(event)
                uid += 1
                po_index += 1
                dst = getattr(instr, "dst", None)
                if dst is not None and instr.kind.has_read:
                    regs[dst] = ReadRef(event.uid)
            elif isinstance(instr, Fence):
                if not allow_fences:
                    raise UnsupportedProgram(
                        f"instruction {instr!r} outside the axiomatic fragment"
                    )
                # The fence sits before the thread's next memory event;
                # po_index numbering is not perturbed.
                fences.append((proc, po_index))
            else:
                # Delay is harmless; branches were excluded above.
                from repro.machine.isa import Delay, Halt

                if not isinstance(instr, (Delay, Halt)):
                    raise UnsupportedProgram(
                        f"instruction {instr!r} outside the axiomatic fragment"
                    )
    return EventLayout(events=tuple(events), fences=tuple(fences))
