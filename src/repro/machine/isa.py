"""Instruction set of the small register machine used to express programs.

Every executor in the library -- the idealized sequentially consistent
architecture (:mod:`repro.core.sc`) and the discrete-event hardware
simulator (:mod:`repro.sim`) -- runs the *same* programs, expressed in this
ISA.  That shared frontend is what lets the Definition-2 contract checker
compare a hardware result directly against the exhaustively enumerated set
of sequentially consistent results.

The ISA is deliberately tiny:

* register/immediate arithmetic (``Mov``, ``Add``, ``Sub``, ``Mul``),
* control flow (``Jump``, ``BranchIf`` with the usual comparisons),
* data memory operations (``Load``, ``Store``),
* the paper's synchronization primitives: ``TestAndSet`` (read-write sync),
  ``Unset``/``SyncStore`` (write-only sync), ``SyncLoad`` (read-only sync,
  i.e. the ``Test`` of a Test-and-TestAndSet),
* ``Delay`` -- consumes simulated cycles, a no-op on the idealized
  architecture; used to model the paper's "does other work" (Figure 3),
* ``Fence`` -- the RP3-style full fence: wait until all previous accesses
  are globally performed (a no-op on the idealized architecture).

Operands are either a register name (``str``) or an immediate (``int``).
Branch targets are label names resolved by :class:`repro.machine.program.ThreadCode`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.types import Condition, Location, OpKind, Value

#: An operand: either a register name or an immediate integer value.
Operand = Union[str, int]


class Instruction:
    """Base class for all instructions (purely a marker)."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Local (non-memory) instructions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Mov(Instruction):
    """``dst = src`` -- copy a register or immediate into a register."""

    dst: str
    src: Operand


@dataclass(frozen=True)
class Add(Instruction):
    """``dst = a + b``."""

    dst: str
    a: Operand
    b: Operand


@dataclass(frozen=True)
class Sub(Instruction):
    """``dst = a - b``."""

    dst: str
    a: Operand
    b: Operand


@dataclass(frozen=True)
class Mul(Instruction):
    """``dst = a * b``."""

    dst: str
    a: Operand
    b: Operand


@dataclass(frozen=True)
class Div(Instruction):
    """``dst = a // b`` (floor division; division by zero yields 0)."""

    dst: str
    a: Operand
    b: Operand


@dataclass(frozen=True)
class Jump(Instruction):
    """Unconditional branch to ``label``."""

    label: str


@dataclass(frozen=True)
class BranchIf(Instruction):
    """Branch to ``label`` when ``cond(a, b)`` holds."""

    cond: Condition
    a: Operand
    b: Operand
    label: str


@dataclass(frozen=True)
class Delay(Instruction):
    """Consume ``cycles`` simulated cycles doing local work.

    On the idealized architecture this is a no-op; on the hardware simulator
    it models computation that does not touch shared memory (the paper's
    "does other work" in Figure 3).
    """

    cycles: int


@dataclass(frozen=True)
class Fence(Instruction):
    """Full memory fence: the issuing processor waits until all its previous
    accesses are globally performed before generating anything later.

    This is the RP3 option the paper describes in Section 2.1 ("a process is
    required to wait for acknowledgements on its outstanding requests only
    on a fence instruction.  As will be apparent later, this option
    functions as a weakly ordered system"): data accesses run unordered and
    the fence is the only ordering point.  On the idealized architecture a
    fence is a no-op (everything is already atomic and in order).
    """


@dataclass(frozen=True)
class Halt(Instruction):
    """Stop the thread.  An implicit ``Halt`` ends every thread."""


# ---------------------------------------------------------------------------
# Memory instructions
# ---------------------------------------------------------------------------


class MemoryInstruction(Instruction):
    """Base class for instructions that access shared memory."""

    __slots__ = ()

    #: OpKind produced by this instruction; overridden per subclass.
    kind: OpKind


@dataclass(frozen=True)
class Load(MemoryInstruction):
    """Data read: ``dst = mem[location]``."""

    dst: str
    location: Location
    kind = OpKind.DATA_READ


@dataclass(frozen=True)
class Store(MemoryInstruction):
    """Data write: ``mem[location] = src``."""

    location: Location
    src: Operand
    kind = OpKind.DATA_WRITE


@dataclass(frozen=True)
class SyncLoad(MemoryInstruction):
    """Read-only synchronization operation (the paper's ``Test``)."""

    dst: str
    location: Location
    kind = OpKind.SYNC_READ


@dataclass(frozen=True)
class SyncStore(MemoryInstruction):
    """Write-only synchronization operation (generalizes ``Unset``)."""

    location: Location
    src: Operand
    kind = OpKind.SYNC_WRITE


@dataclass(frozen=True)
class Unset(MemoryInstruction):
    """The paper's ``Unset``: write-only sync storing 0 to ``location``."""

    location: Location
    kind = OpKind.SYNC_WRITE


@dataclass(frozen=True)
class TestAndSet(MemoryInstruction):
    """Read-write synchronization: ``dst = mem[location]; mem[location] = set_value``.

    Atomic with respect to all other synchronization operations on the same
    location (the paper's implementation-model assumption).
    """

    dst: str
    location: Location
    set_value: Value = 1
    kind = OpKind.SYNC_RMW
    __test__ = False  # keep pytest from collecting this as a test class


def written_value(instruction: MemoryInstruction, operand_value: Value) -> Value:
    """Value stored by a memory instruction's write component.

    ``operand_value`` is the evaluated source operand for ``Store`` and
    ``SyncStore``; it is ignored for ``Unset`` (always 0) and ``TestAndSet``
    (always ``set_value``).
    """
    if isinstance(instruction, Unset):
        return 0
    if isinstance(instruction, TestAndSet):
        return instruction.set_value
    return operand_value
