"""Seeded random program generation, for fuzzing the stack end to end.

The generator produces small straight-line programs over a few data and
synchronization locations -- the same shape the hypothesis strategies use
in the test suite, but reproducible from a single integer seed and usable
from the CLI (``python -m repro fuzz``).

The killer property these programs check (`repro.verify.fuzz`):
sequentially consistent hardware owes SC behaviour to *every* program,
racy or not, so every fuzz result can be validated against the exact
membership oracle with no DRF0 precondition.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.machine.dsl import ThreadBuilder, build_program
from repro.machine.isa import Store, SyncStore, TestAndSet
from repro.machine.program import Program, ThreadCode

DATA_LOCATIONS = ("x", "y", "z")
SYNC_LOCATIONS = ("s", "t")


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for random program shape."""

    max_threads: int = 3
    max_ops_per_thread: int = 4
    max_value: int = 3
    data_locations: Sequence[str] = DATA_LOCATIONS
    sync_locations: Sequence[str] = SYNC_LOCATIONS
    #: Relative weights of (load, store, sync_load, sync_store,
    #: test_and_set, unset).
    op_weights: Sequence[int] = (3, 3, 1, 1, 1, 1)


def random_program(
    seed: int, config: Optional[GeneratorConfig] = None
) -> Program:
    """A random straight-line program, deterministic in ``seed``."""
    cfg = config or GeneratorConfig()
    rng = random.Random(seed)
    num_threads = rng.randint(1, cfg.max_threads)
    threads: List[ThreadBuilder] = []
    for _ in range(num_threads):
        t = ThreadBuilder()
        for index in range(rng.randint(1, cfg.max_ops_per_thread)):
            _append_random_op(t, index, rng, cfg)
        threads.append(t)
    return build_program(threads, name=f"fuzz-{seed}")


def _append_random_op(
    t: ThreadBuilder, index: int, rng: random.Random, cfg: GeneratorConfig
) -> None:
    kind = rng.choices(range(6), weights=cfg.op_weights)[0]
    data_loc = rng.choice(list(cfg.data_locations))
    sync_loc = rng.choice(list(cfg.sync_locations))
    value = rng.randint(0, cfg.max_value)
    if kind == 0:
        t.load(f"r{index}", data_loc)
    elif kind == 1:
        t.store(data_loc, value)
    elif kind == 2:
        t.sync_load(f"r{index}", sync_loc)
    elif kind == 3:
        t.sync_store(sync_loc, value)
    elif kind == 4:
        t.test_and_set(f"r{index}", sync_loc, set_value=max(1, value))
    else:
        t.unset(sync_loc)


def random_programs(
    seeds: Sequence[int], config: Optional[GeneratorConfig] = None
) -> List[Program]:
    """One program per seed."""
    return [random_program(seed, config) for seed in seeds]


def _rebuild(
    program: Program,
    threads: Sequence[ThreadCode],
    name: Optional[str] = None,
) -> Program:
    """Reassemble a shrunk program, dropping now-unreferenced locations."""
    used = {
        instr.location
        for code in threads
        for instr in code.memory_instructions()
    }
    memory = {
        loc: value
        for loc, value in program.initial_memory.items()
        if loc in used
    }
    return Program.make(
        list(threads),
        initial_memory=memory,
        name=name if name is not None else program.name,
    )


def _shrink_mutations(program: Program) -> List[Program]:
    """Every one-step simplification of ``program``, smallest-first.

    Three mutation families, all at the DSL level: drop a whole thread,
    drop a single instruction, and shrink a stored value to its simplest
    form (0, or 1 for a test-and-set's set value).  Threads with labels
    keep their instruction count intact -- removing one would shift
    branch targets -- but fuzz-generated programs are straight-line, so
    in practice every instruction is fair game.  Untouched threads pass
    through as :class:`ThreadCode`, labels and all.
    """
    threads = list(program.threads)
    mutations: List[Program] = []
    if len(threads) > 1:
        for i in range(len(threads)):
            mutations.append(
                _rebuild(program, threads[:i] + threads[i + 1 :])
            )
    for i, code in enumerate(threads):
        if code.labels:
            continue
        instrs = code.instructions
        for j in range(len(instrs)):
            shrunk = ThreadCode(instrs[:j] + instrs[j + 1 :], {})
            mutations.append(
                _rebuild(program, threads[:i] + [shrunk] + threads[i + 1 :])
            )
    for i, code in enumerate(threads):
        instrs = code.instructions
        for j, instr in enumerate(instrs):
            replaced = None
            if isinstance(instr, (Store, SyncStore)):
                if isinstance(instr.src, int) and instr.src != 0:
                    replaced = dataclasses.replace(instr, src=0)
            elif isinstance(instr, TestAndSet) and instr.set_value != 1:
                replaced = dataclasses.replace(instr, set_value=1)
            if replaced is not None:
                patched = dataclasses.replace(
                    code,
                    instructions=instrs[:j] + (replaced,) + instrs[j + 1 :],
                )
                mutations.append(
                    _rebuild(
                        program, threads[:i] + [patched] + threads[i + 1 :]
                    )
                )
    return mutations


def shrink_program(
    program: Program,
    predicate: Callable[[Program], bool],
    name: Optional[str] = None,
) -> Program:
    """Greedily minimize ``program`` while ``predicate`` stays true.

    The differential campaign uses this to turn a disagreeing fuzz
    program into a litmus-sized reproducer: each round tries every
    one-step simplification (drop a thread, drop an instruction, shrink
    a stored value) and keeps the first that still exhibits the
    disagreement, until none does (a fixpoint -- every single-step
    simplification loses the behaviour).  The predicate is assumed true
    of ``program`` itself; if it is not, the input is returned unchanged.
    """
    if not predicate(program):
        return program
    current = program
    progress = True
    while progress:
        progress = False
        for mutation in _shrink_mutations(current):
            if predicate(mutation):
                current = mutation
                progress = True
                break
    if name is not None and current.name != name:
        current = dataclasses.replace(current, name=name)
    return current
