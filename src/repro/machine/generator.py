"""Seeded random program generation, for fuzzing the stack end to end.

The generator produces small straight-line programs over a few data and
synchronization locations -- the same shape the hypothesis strategies use
in the test suite, but reproducible from a single integer seed and usable
from the CLI (``python -m repro fuzz``).

The killer property these programs check (`repro.verify.fuzz`):
sequentially consistent hardware owes SC behaviour to *every* program,
racy or not, so every fuzz result can be validated against the exact
membership oracle with no DRF0 precondition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.machine.dsl import ThreadBuilder, build_program
from repro.machine.program import Program

DATA_LOCATIONS = ("x", "y", "z")
SYNC_LOCATIONS = ("s", "t")


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for random program shape."""

    max_threads: int = 3
    max_ops_per_thread: int = 4
    max_value: int = 3
    data_locations: Sequence[str] = DATA_LOCATIONS
    sync_locations: Sequence[str] = SYNC_LOCATIONS
    #: Relative weights of (load, store, sync_load, sync_store,
    #: test_and_set, unset).
    op_weights: Sequence[int] = (3, 3, 1, 1, 1, 1)


def random_program(
    seed: int, config: Optional[GeneratorConfig] = None
) -> Program:
    """A random straight-line program, deterministic in ``seed``."""
    cfg = config or GeneratorConfig()
    rng = random.Random(seed)
    num_threads = rng.randint(1, cfg.max_threads)
    threads: List[ThreadBuilder] = []
    for _ in range(num_threads):
        t = ThreadBuilder()
        for index in range(rng.randint(1, cfg.max_ops_per_thread)):
            _append_random_op(t, index, rng, cfg)
        threads.append(t)
    return build_program(threads, name=f"fuzz-{seed}")


def _append_random_op(
    t: ThreadBuilder, index: int, rng: random.Random, cfg: GeneratorConfig
) -> None:
    kind = rng.choices(range(6), weights=cfg.op_weights)[0]
    data_loc = rng.choice(list(cfg.data_locations))
    sync_loc = rng.choice(list(cfg.sync_locations))
    value = rng.randint(0, cfg.max_value)
    if kind == 0:
        t.load(f"r{index}", data_loc)
    elif kind == 1:
        t.store(data_loc, value)
    elif kind == 2:
        t.sync_load(f"r{index}", sync_loc)
    elif kind == 3:
        t.sync_store(sync_loc, value)
    elif kind == 4:
        t.test_and_set(f"r{index}", sync_loc, set_value=max(1, value))
    else:
        t.unset(sync_loc)


def random_programs(
    seeds: Sequence[int], config: Optional[GeneratorConfig] = None
) -> List[Program]:
    """One program per seed."""
    return [random_program(seed, config) for seed in seeds]
