"""A small fluent builder for writing programs by hand.

Example -- the store-buffer litmus from the paper's Figure 1::

    from repro.machine.dsl import ThreadBuilder, build_program

    p1 = ThreadBuilder().store("x", 1).load("r1", "y")
    p2 = ThreadBuilder().store("y", 1).load("r2", "x")
    program = build_program([p1, p2], name="store-buffer")

Branches use labels::

    t = (ThreadBuilder()
         .label("spin")
         .test_and_set("r0", "lock")
         .branch_if(Condition.NE, "r0", 0, "spin")
         .store("count", 1)
         .unset("lock"))
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.core.types import Condition, Location, Value
from repro.machine.isa import (
    Add,
    BranchIf,
    Delay,
    Div,
    Fence,
    Instruction,
    Jump,
    Load,
    Mov,
    Mul,
    Operand,
    Store,
    Sub,
    SyncLoad,
    SyncStore,
    TestAndSet,
    Unset,
)
from repro.machine.program import Program, ProgramError, ThreadCode


class ThreadBuilder:
    """Accumulates instructions and labels for one thread."""

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._labels: dict[str, int] = {}

    # -- structure ---------------------------------------------------------

    def label(self, name: str) -> "ThreadBuilder":
        """Place a label at the current position."""
        if name in self._labels:
            raise ProgramError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    def build(self) -> ThreadCode:
        """Finish and return the immutable :class:`ThreadCode`."""
        return ThreadCode(tuple(self._instructions), dict(self._labels))

    # -- local instructions --------------------------------------------------

    def mov(self, dst: str, src: Operand) -> "ThreadBuilder":
        """``dst = src``."""
        self._instructions.append(Mov(dst, src))
        return self

    def add(self, dst: str, a: Operand, b: Operand) -> "ThreadBuilder":
        """``dst = a + b``."""
        self._instructions.append(Add(dst, a, b))
        return self

    def sub(self, dst: str, a: Operand, b: Operand) -> "ThreadBuilder":
        """``dst = a - b``."""
        self._instructions.append(Sub(dst, a, b))
        return self

    def mul(self, dst: str, a: Operand, b: Operand) -> "ThreadBuilder":
        """``dst = a * b``."""
        self._instructions.append(Mul(dst, a, b))
        return self

    def div(self, dst: str, a: Operand, b: Operand) -> "ThreadBuilder":
        """``dst = a // b`` (floor division)."""
        self._instructions.append(Div(dst, a, b))
        return self

    def jump(self, label: str) -> "ThreadBuilder":
        """Unconditional branch."""
        self._instructions.append(Jump(label))
        return self

    def branch_if(
        self, cond: Condition, a: Operand, b: Operand, label: str
    ) -> "ThreadBuilder":
        """Branch to ``label`` when ``cond(a, b)``."""
        self._instructions.append(BranchIf(cond, a, b, label))
        return self

    def delay(self, cycles: int) -> "ThreadBuilder":
        """Local work consuming ``cycles`` simulated cycles."""
        self._instructions.append(Delay(cycles))
        return self

    def fence(self) -> "ThreadBuilder":
        """Full fence: wait for all prior accesses to globally perform."""
        self._instructions.append(Fence())
        return self

    # -- memory instructions ---------------------------------------------------

    def load(self, dst: str, location: Location) -> "ThreadBuilder":
        """Data read into register ``dst``."""
        self._instructions.append(Load(dst, location))
        return self

    def store(self, location: Location, src: Operand) -> "ThreadBuilder":
        """Data write of ``src`` to ``location``."""
        self._instructions.append(Store(location, src))
        return self

    def sync_load(self, dst: str, location: Location) -> "ThreadBuilder":
        """Read-only synchronization operation (``Test``)."""
        self._instructions.append(SyncLoad(dst, location))
        return self

    def sync_store(self, location: Location, src: Operand) -> "ThreadBuilder":
        """Write-only synchronization operation."""
        self._instructions.append(SyncStore(location, src))
        return self

    def unset(self, location: Location) -> "ThreadBuilder":
        """The paper's ``Unset`` (write-only sync of 0)."""
        self._instructions.append(Unset(location))
        return self

    def test_and_set(
        self, dst: str, location: Location, set_value: Value = 1
    ) -> "ThreadBuilder":
        """Atomic ``TestAndSet`` returning the old value in ``dst``."""
        self._instructions.append(TestAndSet(dst, location, set_value))
        return self

    # -- common idioms -----------------------------------------------------

    def acquire(self, location: Location, scratch: str = "_tas") -> "ThreadBuilder":
        """Spin-lock acquire with a plain TestAndSet loop."""
        name = f"_acq{len(self._instructions)}"
        return (
            self.label(name)
            .test_and_set(scratch, location)
            .branch_if(Condition.NE, scratch, 0, name)
        )

    def acquire_ttas(self, location: Location, scratch: str = "_tas") -> "ThreadBuilder":
        """Test-and-TestAndSet acquire: spin with a read-only sync first.

        This is the Section-6 idiom whose repeated ``Test`` operations the
        DRF0 implementation serializes (motivating the DRF1 refinement).
        """
        outer = f"_ttas{len(self._instructions)}"
        inner = f"_spin{len(self._instructions)}"
        return (
            self.label(outer)
            .label(inner)
            .sync_load(scratch, location)
            .branch_if(Condition.NE, scratch, 0, inner)
            .test_and_set(scratch, location)
            .branch_if(Condition.NE, scratch, 0, outer)
        )

    def release(self, location: Location) -> "ThreadBuilder":
        """Spin-lock release (``Unset``)."""
        return self.unset(location)


def build_program(
    threads: Sequence[ThreadBuilder],
    initial_memory: Mapping[Location, Value] | None = None,
    name: str = "program",
) -> Program:
    """Assemble thread builders into a :class:`Program`."""
    return Program.make(
        [t.build() for t in threads], initial_memory=initial_memory, name=name
    )
