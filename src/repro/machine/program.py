"""Programs: per-thread instruction sequences plus shared-memory layout.

A :class:`Program` is the unit every executor consumes.  It holds one
:class:`ThreadCode` per processor, the set of shared locations with initial
values, and a human-readable name (used by the litmus harness and benchmark
reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.core.types import INITIAL_VALUE, Location, Value
from repro.machine.isa import (
    BranchIf,
    Halt,
    Instruction,
    Jump,
    Load,
    MemoryInstruction,
    Store,
    SyncLoad,
    SyncStore,
    TestAndSet,
    Unset,
)


class ProgramError(ValueError):
    """Raised for malformed programs (unknown labels, bad operands...)."""


@dataclass(frozen=True)
class ThreadCode:
    """One thread's instruction sequence with resolved branch targets.

    Attributes:
        instructions: The instruction tuple; an implicit ``Halt`` follows the
            last instruction.
        labels: Mapping from label name to instruction index.
    """

    instructions: Tuple[Instruction, ...]
    labels: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for instr in self.instructions:
            if isinstance(instr, (Jump, BranchIf)) and instr.label not in self.labels:
                raise ProgramError(f"undefined label {instr.label!r}")
        for label, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise ProgramError(f"label {label!r} points outside code")

    def target(self, label: str) -> int:
        """Instruction index a branch to ``label`` lands on."""
        return self.labels[label]

    def __len__(self) -> int:
        return len(self.instructions)

    def memory_instructions(self) -> List[MemoryInstruction]:
        """All memory instructions in this thread, in static code order."""
        return [i for i in self.instructions if isinstance(i, MemoryInstruction)]


@dataclass(frozen=True)
class Program:
    """A multiprocessor program.

    Attributes:
        threads: One :class:`ThreadCode` per processor; index == ProcId.
        initial_memory: Initial values for shared locations; every location a
            thread mentions must appear here (it defaults to
            :data:`repro.core.types.INITIAL_VALUE` via :meth:`make`).
        name: Identifier used in reports.
    """

    threads: Tuple[ThreadCode, ...]
    initial_memory: Mapping[Location, Value]
    name: str = "program"

    @staticmethod
    def make(
        threads: Sequence[Sequence[Instruction] | ThreadCode],
        initial_memory: Mapping[Location, Value] | None = None,
        name: str = "program",
        labels: Sequence[Mapping[str, int]] | None = None,
    ) -> "Program":
        """Build a program, inferring the shared-location set.

        Locations touched by any memory instruction but absent from
        ``initial_memory`` are added with the initial value 0, matching the
        paper's hypothetical initializing write to every location.
        """
        codes: List[ThreadCode] = []
        for index, thread in enumerate(threads):
            if isinstance(thread, ThreadCode):
                codes.append(thread)
            else:
                thread_labels = dict(labels[index]) if labels else {}
                codes.append(ThreadCode(tuple(thread), thread_labels))
        memory: Dict[Location, Value] = dict(initial_memory or {})
        for code in codes:
            for instr in code.memory_instructions():
                memory.setdefault(instr.location, INITIAL_VALUE)
        return Program(tuple(codes), memory, name)

    @property
    def num_procs(self) -> int:
        """Number of processors (threads) in the program."""
        return len(self.threads)

    @property
    def locations(self) -> Tuple[Location, ...]:
        """Shared locations in deterministic (sorted) order."""
        return tuple(sorted(self.initial_memory))

    def sync_locations(self) -> Tuple[Location, ...]:
        """Locations accessed by at least one synchronization instruction."""
        found = set()
        for code in self.threads:
            for instr in code.memory_instructions():
                if isinstance(instr, (SyncLoad, SyncStore, Unset, TestAndSet)):
                    found.add(instr.location)
        return tuple(sorted(found))

    def is_straight_line(self) -> bool:
        """True when no thread contains a branch (needed by the axiomatic layer)."""
        return not any(
            isinstance(instr, (Jump, BranchIf))
            for code in self.threads
            for instr in code.instructions
        )

    def static_op_count(self) -> int:
        """Total number of static memory instructions across all threads."""
        return sum(len(code.memory_instructions()) for code in self.threads)


def registers_used(instructions: Iterable[Instruction]) -> Tuple[str, ...]:
    """All register names mentioned by a sequence of instructions."""
    names = set()
    for instr in instructions:
        for attr in ("dst", "src", "a", "b"):
            value = getattr(instr, attr, None)
            if isinstance(value, str):
                names.add(value)
    return tuple(sorted(names))
