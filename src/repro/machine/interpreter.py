"""Thread semantics shared by the idealized architecture and the simulator.

The interpreter advances a :class:`ThreadState` through local (register and
control-flow) instructions until the thread either halts or reaches a memory
instruction, which is surfaced to the caller as a :class:`MemRequest`.  The
*executor* (SC enumerator or hardware simulator) decides when and how that
request is satisfied, then calls :func:`complete` with the value returned by
the read component (if any).

``Delay`` instructions surface as :class:`DelayRequest` so the hardware
simulator can charge cycles; the idealized architecture skips them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.core.types import OpKind, Value
from repro.machine.isa import (
    Add,
    BranchIf,
    Delay,
    Div,
    Fence,
    Halt,
    Jump,
    Load,
    MemoryInstruction,
    Mov,
    Mul,
    Operand,
    Store,
    Sub,
    SyncLoad,
    SyncStore,
    TestAndSet,
    Unset,
    written_value,
)
from repro.machine.program import ThreadCode


class InterpreterError(RuntimeError):
    """Raised on runaway local execution or malformed operands."""


#: Upper bound on consecutive local instructions between memory operations;
#: a thread exceeding it is assumed to be in a local infinite loop.
MAX_LOCAL_STEPS = 100_000


class ThreadState:
    """Mutable per-thread architectural state: program counter + registers.

    Registers spring into existence holding 0 on first use, so litmus
    programs need no register declarations.
    """

    __slots__ = ("pc", "regs")

    def __init__(self, pc: int = 0, regs: Optional[Dict[str, Value]] = None) -> None:
        self.pc = pc
        self.regs: Dict[str, Value] = dict(regs) if regs else {}

    def copy(self) -> "ThreadState":
        """Independent copy (used by the legacy snapshot-based DFS)."""
        return ThreadState(self.pc, self.regs)

    def snapshot(self) -> Tuple[int, Dict[str, Value]]:
        """Cheap pre-step checkpoint for the do/undo transition engine.

        Unlike :meth:`copy` this allocates no new ``ThreadState``; the
        returned pair is meant to be stored in an undo frame and handed
        back to :meth:`restore`, which may then *adopt* the saved dict.
        """
        return (self.pc, dict(self.regs))

    def restore(self, snapshot: Tuple[int, Dict[str, Value]]) -> None:
        """Rewind to a :meth:`snapshot`.

        Adopts the snapshot's register dict (the undo frame held the only
        other reference, so no defensive copy is needed).
        """
        self.pc, self.regs = snapshot

    def key(self) -> Tuple[int, Tuple[Tuple[str, Value], ...]]:
        """Hashable snapshot for state deduplication."""
        return (self.pc, tuple(sorted(self.regs.items())))

    def read_reg(self, name: str) -> Value:
        """Current value of a register (0 if never written)."""
        return self.regs.get(name, 0)

    def operand(self, value: Operand) -> Value:
        """Evaluate an operand: immediate ints pass through, strings are registers."""
        if isinstance(value, int):
            return value
        return self.read_reg(value)

    def halted(self, code: ThreadCode) -> bool:
        """True once the program counter has run off the end of the code."""
        return self.pc >= len(code)


@dataclass(frozen=True)
class MemRequest:
    """A memory instruction the thread is blocked on.

    Attributes:
        instr: The static memory instruction.
        kind: Its :class:`~repro.core.types.OpKind`.
        location: Location accessed.
        write_value: Value the write component will store (``None`` for pure
            reads); evaluated from registers at request time.
    """

    instr: MemoryInstruction
    kind: OpKind
    location: str
    write_value: Optional[Value]


@dataclass(frozen=True)
class DelayRequest:
    """The thread is at a ``Delay`` instruction for ``cycles`` cycles."""

    cycles: int


@dataclass(frozen=True)
class FenceRequest:
    """The thread is at a ``Fence``: wait for all prior accesses to be
    globally performed (skipped on the idealized architecture)."""


#: What a thread can be blocked on; ``None`` means the thread has halted.
Pending = Union[MemRequest, DelayRequest, FenceRequest, None]


def run_to_memory_op(
    code: ThreadCode, state: ThreadState, skip_delays: bool = False
) -> Tuple[Pending, int]:
    """Advance through local instructions until a boundary event.

    Mutates ``state`` in place.  Returns ``(pending, local_steps)`` where
    ``pending`` is the memory/delay request the thread stopped at (``None``
    if it halted) and ``local_steps`` counts the local instructions executed
    (the simulator charges one cycle each).

    With ``skip_delays`` set, ``Delay`` instructions are treated as local
    no-ops -- the idealized-architecture behaviour.
    """
    steps = 0
    while True:
        if state.pc >= len(code):
            return None, steps
        instr = code.instructions[state.pc]
        if isinstance(instr, MemoryInstruction):
            return _make_request(instr, state), steps
        if isinstance(instr, Delay):
            if skip_delays:
                state.pc += 1
                continue
            return DelayRequest(instr.cycles), steps
        if isinstance(instr, Fence):
            if skip_delays:  # idealized architecture: fences are no-ops
                state.pc += 1
                continue
            return FenceRequest(), steps
        if isinstance(instr, Halt):
            state.pc = len(code)
            return None, steps
        _step_local(code, state, instr)
        steps += 1
        if steps > MAX_LOCAL_STEPS:
            raise InterpreterError(
                "thread executed %d local steps without reaching memory; "
                "likely a local infinite loop" % steps
            )


def _make_request(instr: MemoryInstruction, state: ThreadState) -> MemRequest:
    """Build the :class:`MemRequest` for the memory instruction at the pc."""
    write_value: Optional[Value] = None
    if isinstance(instr, (Store, SyncStore)):
        write_value = written_value(instr, state.operand(instr.src))
    elif isinstance(instr, (Unset, TestAndSet)):
        write_value = written_value(instr, 0)
    return MemRequest(instr, instr.kind, instr.location, write_value)


def _step_local(code: ThreadCode, state: ThreadState, instr) -> None:
    """Execute one local instruction, updating pc and registers."""
    if isinstance(instr, Mov):
        state.regs[instr.dst] = state.operand(instr.src)
    elif isinstance(instr, Add):
        state.regs[instr.dst] = state.operand(instr.a) + state.operand(instr.b)
    elif isinstance(instr, Sub):
        state.regs[instr.dst] = state.operand(instr.a) - state.operand(instr.b)
    elif isinstance(instr, Mul):
        state.regs[instr.dst] = state.operand(instr.a) * state.operand(instr.b)
    elif isinstance(instr, Div):
        divisor = state.operand(instr.b)
        state.regs[instr.dst] = (
            state.operand(instr.a) // divisor if divisor else 0
        )
    elif isinstance(instr, Jump):
        state.pc = code.target(instr.label)
        return
    elif isinstance(instr, BranchIf):
        if instr.cond.evaluate(state.operand(instr.a), state.operand(instr.b)):
            state.pc = code.target(instr.label)
            return
    else:  # pragma: no cover - ISA is closed
        raise InterpreterError(f"unknown instruction {instr!r}")
    state.pc += 1


def complete(
    code: ThreadCode,
    state: ThreadState,
    request: MemRequest,
    read_value: Optional[Value],
) -> None:
    """Finish the memory instruction the thread was blocked on.

    Writes the read component's value into the destination register (if the
    instruction has one) and advances the program counter past the
    instruction.  ``read_value`` must be provided exactly when the operation
    has a read component.
    """
    instr = request.instr
    if request.kind.has_read:
        if read_value is None:
            raise InterpreterError(f"{instr!r} needs a read value")
        dst = getattr(instr, "dst", None)
        if dst is not None:
            state.regs[dst] = read_value
    elif read_value is not None:
        raise InterpreterError(f"{instr!r} has no read component")
    state.pc += 1


def consume_delay(state: ThreadState) -> None:
    """Advance past a ``Delay``/``Fence`` instruction once it is satisfied."""
    state.pc += 1
