"""Reproduction of *Weak Ordering -- A New Definition* (Adve & Hill, ISCA 1990).

The library is organized around the paper's central move: re-defining weak
ordering as a **contract** between software and hardware.

* :mod:`repro.machine` -- the register-machine frontend every executor shares.
* :mod:`repro.core` -- the formal side: the idealized sequentially consistent
  architecture, happens-before, the DRF0/DRF1 synchronization models, and
  the Definition-2 "appears sequentially consistent" checker.
* :mod:`repro.axiomatic` -- herd-style candidate-execution enumeration with
  axiomatic memory models (SC, TSO-like, coherence-only).
* :mod:`repro.sim` -- a discrete-event, directory-based cache-coherent
  multiprocessor simulator (the hardware side of the contract).
* :mod:`repro.hw` -- memory-system policies: sequential consistency, the old
  Definition 1 (Dubois/Scheurich/Briggs), and the paper's Section-5.3
  implementation (counters + reserve bits), with the DRF1 read-only-sync
  optimization.
* :mod:`repro.litmus` -- the paper's figures and classic litmus tests.
* :mod:`repro.workloads` -- synthetic workloads for the quantitative study.
* :mod:`repro.analysis` -- Shasha-Snir delay-set analysis (related work).
* :mod:`repro.verify` -- contract sweeps and Section-5.1 condition monitors.

Quickstart::

    from repro import build_program, ThreadBuilder, sc_results, obeys_drf0

    p0 = ThreadBuilder().store("x", 1).unset("flag")
    p1 = ThreadBuilder().sync_load("r0", "flag").load("r1", "x")
    program = build_program([p0, p1], initial_memory={"flag": 1})
    print(obeys_drf0(program))
    print(sc_results(program))
"""

from repro.core import (
    DRF0_MODEL,
    DRF1_MODEL,
    Condition,
    ContractReport,
    Execution,
    ExplorationConfig,
    OpKind,
    Operation,
    Race,
    Result,
    appears_sc,
    check_program,
    check_weak_ordering,
    conflicts,
    explore,
    happens_before,
    is_sc_result,
    obeys_drf0,
    races_in_execution,
    sc_results,
)
from repro.machine import Program, ThreadBuilder, build_program

__version__ = "1.0.0"

__all__ = [
    "Condition",
    "ContractReport",
    "DRF0_MODEL",
    "DRF1_MODEL",
    "Execution",
    "ExplorationConfig",
    "OpKind",
    "Operation",
    "Program",
    "Race",
    "Result",
    "ThreadBuilder",
    "appears_sc",
    "build_program",
    "check_program",
    "check_weak_ordering",
    "conflicts",
    "explore",
    "happens_before",
    "is_sc_result",
    "obeys_drf0",
    "races_in_execution",
    "sc_results",
    "__version__",
]
