"""Eraser-style lockset analysis over idealized executions.

Section 4 of the paper notes that "current work is being done on
determining when programs are data-race-free, and in locating the races
when they are not".  Happens-before detection (:mod:`repro.core.drf0`) is
one lineage of that work; the other classic approach is the *lockset*
discipline (Savage et al.'s Eraser): every shared location should be
consistently protected by some lock.

Lock inference on this ISA:

* an **acquire** is a read-write synchronization (TestAndSet) that returns
  the free value (0) -- a successful lock grab;
* a **release** is a write-only synchronization (Unset / sync store of 0)
  to a held location.

Each location runs Eraser's state machine (virgin -> exclusive ->
shared / shared-modified); candidate locksets are intersected on every
access in the shared states, and an empty lockset in shared-modified
raises a warning.

Lockset analysis is a *discipline* checker: it can warn on programs that
are DRF0 (e.g. carefully flag-synchronized hand-offs that never use
locks), and it can stay silent on racy single-execution traces that
happen not to exercise the race.  The tests document both divergences;
the value is that a lock-disciplined program gets a modular, per-location
answer without enumerating executions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.core.execution import Execution
from repro.core.ops import Operation
from repro.core.types import Location, OpKind, ProcId


class LocationState(enum.Enum):
    """Eraser's per-location state machine."""

    VIRGIN = "virgin"                  # never accessed
    EXCLUSIVE = "exclusive"            # one thread only so far
    SHARED = "shared"                  # read by several threads
    SHARED_MODIFIED = "shared-modified"  # written while shared


@dataclass
class LocksetWarning:
    """A location whose candidate lockset became empty while shared."""

    location: Location
    op: Operation
    held: FrozenSet[Location]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.location}: unprotected access {self.op} "
            f"(held locks: {sorted(self.held) or 'none'})"
        )


@dataclass
class LocksetReport:
    """Outcome of the lockset analysis on one execution."""

    execution: Execution
    warnings: List[LocksetWarning] = field(default_factory=list)
    locksets: Dict[Location, FrozenSet[Location]] = field(default_factory=dict)
    states: Dict[Location, LocationState] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when no location lost all its candidate locks."""
        return not self.warnings

    def warned_locations(self) -> Set[Location]:
        """Locations with at least one warning."""
        return {w.location for w in self.warnings}


def analyze_execution(execution: Execution) -> LocksetReport:
    """Run the lockset discipline over one idealized execution."""
    held: Dict[ProcId, Set[Location]] = {}
    candidates: Dict[Location, Set[Location]] = {}
    states: Dict[Location, LocationState] = {}
    first_thread: Dict[Location, ProcId] = {}
    report = LocksetReport(execution)

    all_locks: Set[Location] = {
        op.location for op in execution.ops if op.kind is OpKind.SYNC_RMW
    }

    for op in execution.ops:
        locks = held.setdefault(op.proc, set())
        if op.kind is OpKind.SYNC_RMW and op.value_read == 0:
            locks.add(op.location)
            continue
        if op.kind is OpKind.SYNC_WRITE and op.location in locks:
            locks.discard(op.location)
            continue
        if op.is_sync:
            continue  # other sync traffic is not a data access
        _track_data_access(
            op, locks, candidates, states, first_thread, all_locks, report
        )

    report.locksets = {
        loc: frozenset(c) for loc, c in candidates.items()
    }
    report.states = dict(states)
    return report


def _track_data_access(
    op: Operation,
    locks: Set[Location],
    candidates: Dict[Location, Set[Location]],
    states: Dict[Location, LocationState],
    first_thread: Dict[Location, ProcId],
    all_locks: Set[Location],
    report: LocksetReport,
) -> None:
    loc = op.location
    state = states.get(loc, LocationState.VIRGIN)

    if state is LocationState.VIRGIN:
        states[loc] = LocationState.EXCLUSIVE
        first_thread[loc] = op.proc
        candidates[loc] = set(all_locks)
        return
    if state is LocationState.EXCLUSIVE:
        if op.proc == first_thread[loc]:
            return  # still exclusive: no discipline required yet
        states[loc] = (
            LocationState.SHARED_MODIFIED if op.has_write else LocationState.SHARED
        )
        candidates[loc] &= locks
    else:
        if op.has_write:
            states[loc] = LocationState.SHARED_MODIFIED
        candidates[loc] &= locks

    if states[loc] is LocationState.SHARED_MODIFIED and not candidates[loc]:
        report.warnings.append(
            LocksetWarning(loc, op, frozenset(locks))
        )


def analyze_program(program, seeds=range(10)) -> LocksetReport:
    """Lockset analysis over several random idealized executions.

    Returns the first report with warnings, or the last clean one.
    """
    from repro.core.sc import random_sc_execution

    report: Optional[LocksetReport] = None
    for seed in seeds:
        report = analyze_execution(random_sc_execution(program, seed))
        if not report.clean:
            return report
    return report
