"""Race-freedom analyses: Shasha-Snir delay sets and Eraser-style locksets."""

from repro.analysis.delay_sets import (
    DelayAnalysis,
    DelayPair,
    analyze,
    delay_pairs_for,
)
from repro.analysis.lockset import (
    LocationState,
    LocksetReport,
    LocksetWarning,
    analyze_execution,
    analyze_program,
)

__all__ = [
    "DelayAnalysis",
    "DelayPair",
    "LocationState",
    "LocksetReport",
    "LocksetWarning",
    "analyze",
    "analyze_execution",
    "analyze_program",
    "delay_pairs_for",
]
