"""Shasha-Snir delay-set analysis ([ShS88], discussed in Section 2.1).

The paper contrasts its hardware/software contract with Shasha and Snir's
*static* approach: find a minimal set of program-order pairs ("delay
pairs") such that enforcing just those orders guarantees sequential
consistency.  The construction: build the graph of program order ``P``
(within threads) and conflict edges ``C`` (between threads, both
directions); a **critical cycle** is a simple mixed cycle that uses at
most two accesses per thread and at most three per location.  The delay
set is the set of ``P`` pairs appearing on critical cycles.

The paper's caveat -- "the algorithm depends on detecting conflicting data
accesses at compile time and its success depends on data dependence
analysis techniques, which may be quite pessimistic" -- is visible here
too: the analysis sees static accesses only, so every same-location pair
counts as a potential conflict.

Implemented over the axiomatic event extraction (straight-line programs),
with networkx's simple-cycle enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Set, Tuple

import networkx as nx

from repro.axiomatic.events import Event, extract_events
from repro.machine.program import Program

#: A delay pair: (earlier event uid, later event uid) in one thread's
#: program order whose ordering must be enforced in hardware.
DelayPair = Tuple[int, int]


@dataclass
class DelayAnalysis:
    """Result of the delay-set analysis on one program."""

    program: Program
    events: List[Event]
    critical_cycles: List[Tuple[int, ...]]
    delay_pairs: FrozenSet[DelayPair]

    @property
    def needs_no_delays(self) -> bool:
        """True when plain per-access hardware order already suffices."""
        return not self.delay_pairs

    def describe(self) -> List[str]:
        """Human-readable delay pairs."""
        out = []
        for a, b in sorted(self.delay_pairs):
            ea, eb = self.events[a], self.events[b]
            out.append(
                f"P{ea.proc}: {ea.kind.value}({ea.location}) must complete "
                f"before {eb.kind.value}({eb.location})"
            )
        return out


def _conflicts(a: Event, b: Event) -> bool:
    return (
        a.location == b.location
        and a.proc != b.proc
        and (a.is_write or b.is_write)
    )


def analyze(program: Program, max_cycle_length: int = 8) -> DelayAnalysis:
    """Run the delay-set analysis on a straight-line program."""
    events = extract_events(program)
    graph = nx.DiGraph()
    for event in events:
        graph.add_node(event.uid)

    po_pairs: Set[DelayPair] = set()
    by_proc: dict = {}
    for event in events:
        by_proc.setdefault(event.proc, []).append(event)
    for proc_events in by_proc.values():
        proc_events.sort(key=lambda e: e.po_index)
        for i, a in enumerate(proc_events):
            for b in proc_events[i + 1 :]:
                po_pairs.add((a.uid, b.uid))
                graph.add_edge(a.uid, b.uid, kind="P")

    for i, a in enumerate(events):
        for b in events[i + 1 :]:
            if _conflicts(a, b):
                graph.add_edge(a.uid, b.uid, kind="C")
                graph.add_edge(b.uid, a.uid, kind="C")

    critical: List[Tuple[int, ...]] = []
    delay_pairs: Set[DelayPair] = set()
    for cycle in nx.simple_cycles(graph, length_bound=max_cycle_length):
        if len(cycle) < 2:
            continue
        if not _is_critical(cycle, events):
            continue
        cycle_t = tuple(cycle)
        critical.append(cycle_t)
        for a, b in zip(cycle, cycle[1:] + [cycle[0]]):
            if (a, b) in po_pairs:
                delay_pairs.add((a, b))
    return DelayAnalysis(
        program=program,
        events=events,
        critical_cycles=critical,
        delay_pairs=frozenset(delay_pairs),
    )


def _is_critical(cycle: List[int], events: List[Event]) -> bool:
    """Shasha-Snir minimality: <=2 accesses per thread (program-order
    adjacent in the cycle), <=3 accesses per location."""
    per_proc: dict = {}
    per_loc: dict = {}
    for uid in cycle:
        event = events[uid]
        per_proc.setdefault(event.proc, []).append(uid)
        per_loc.setdefault(event.location, []).append(uid)
    if any(len(uids) > 2 for uids in per_proc.values()):
        return False
    if any(len(uids) > 3 for uids in per_loc.values()):
        return False
    # The two same-thread accesses must be consecutive along the cycle
    # (otherwise the cycle shortcuts through the thread and is not minimal).
    position = {uid: i for i, uid in enumerate(cycle)}
    n = len(cycle)
    for uids in per_proc.values():
        if len(uids) == 2:
            i, j = sorted(position[u] for u in uids)
            if not (j - i == 1 or (i == 0 and j == n - 1)):
                return False
    return True


def delay_pairs_for(program: Program) -> FrozenSet[DelayPair]:
    """Just the delay set of a program."""
    return analyze(program).delay_pairs
