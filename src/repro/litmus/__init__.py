"""Litmus tests: the paper's figures and the classic suite."""

from repro.litmus.catalog import LitmusTest, all_tests, by_name
from repro.litmus.figures import (
    figure2a_execution,
    figure2b_execution,
    figure3_program,
)
from repro.litmus.harness import (
    LitmusHardwareReport,
    hardware_outcome_table,
    run_litmus_on_hardware,
    verify_catalog_expectations,
)

__all__ = [
    "LitmusHardwareReport",
    "LitmusTest",
    "all_tests",
    "by_name",
    "figure2a_execution",
    "figure2b_execution",
    "figure3_program",
    "hardware_outcome_table",
    "run_litmus_on_hardware",
    "verify_catalog_expectations",
]
