"""The paper's figures as executable artifacts.

* :func:`figure2a_execution` / :func:`figure2b_execution` -- the DRF0
  example and counter-example of Figure 2.  The published figure is a
  timing diagram; we reconstruct executions with exactly the properties its
  caption states: in (a) every pair of conflicting accesses is ordered by
  happens-before; in (b) "the accesses of P0 conflict with the write of P1
  but are not ordered with respect to it by happens-before.  Similarly, the
  writes by P2 and P4 conflict, but are unordered."
* :func:`figure3_program` -- the Section-6 analysis scenario: P0 writes x
  (slowly -- the line is shared so invalidations are needed), does other
  work, Unsets s; P1 TestAndSets s, does other work, reads x.  Under
  Definition 1, P0 stalls at the Unset until the write of x is globally
  performed; under the paper's implementation P0 never stalls and only P1's
  TestAndSet waits.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.execution import Execution, final_memory_from_dict
from repro.core.ops import Operation
from repro.core.types import Condition, OpKind
from repro.machine.dsl import ThreadBuilder, build_program
from repro.machine.program import Program

R, W = OpKind.DATA_READ, OpKind.DATA_WRITE
SR, SW, SRW = OpKind.SYNC_READ, OpKind.SYNC_WRITE, OpKind.SYNC_RMW


def _execution(specs, num_procs: int, final_memory=None) -> Execution:
    """Build an execution from (proc, kind, loc, read, written) tuples."""
    program = Program.make(
        [[] for _ in range(num_procs)],
        initial_memory=final_memory or {},
        name="figure",
    )
    po_counts: dict = {}
    ops = []
    for uid, (proc, kind, loc, read, written) in enumerate(specs):
        po = po_counts.get(proc, 0)
        po_counts[proc] = po + 1
        ops.append(Operation(uid, proc, po, kind, loc, read, written))
    return Execution(
        program, tuple(ops), final_memory_from_dict(final_memory or {})
    )


def figure2a_execution() -> Execution:
    """Figure 2(a): an idealized execution that obeys DRF0.

    Six processors; every conflicting pair is connected through chains of
    program order and same-location synchronization:

    * the x accesses of P0, P1 and P2 are chained through sync location a
      and then b;
    * the y accesses of P1, P2 and P3 are chained through b;
    * the z accesses of P4 and P5 are chained through c.
    """
    return _execution(
        [
            (0, W, "x", None, 1),        # P0 writes x
            (0, SW, "a", None, 0),       # P0 releases a
            (1, SRW, "a", 0, 1),         # P1 acquires a
            (1, R, "x", 1, None),        # ...so P1's read of x is ordered
            (1, W, "y", None, 2),        # P1 writes y
            (1, SW, "b", None, 0),       # P1 releases b
            (2, SRW, "b", 0, 1),         # P2 acquires b
            (2, R, "y", 2, None),        # ordered read of y
            (2, W, "x", None, 3),        # ordered second write of x
            (3, SRW, "b", 1, 1),         # P3 synchronizes on b after P2
            (3, R, "y", 2, None),        # ordered read of y
            (4, W, "z", None, 4),        # P4 writes z
            (4, SW, "c", None, 0),       # P4 releases c
            (5, SRW, "c", 0, 1),         # P5 acquires c
            (5, R, "z", 4, None),        # ordered read of z
        ],
        num_procs=6,
        final_memory={"x": 3, "y": 2, "z": 4, "a": 1, "b": 1, "c": 1},
    )


def figure2b_execution() -> Execution:
    """Figure 2(b): an idealized execution that violates DRF0.

    Matches the caption's two violations: P0's accesses of x conflict with
    P1's write of x with no intervening synchronization, and P2's and P4's
    writes of y conflict and are unordered (P4 never synchronizes, so P2's
    release of a cannot order them).
    """
    return _execution(
        [
            (0, R, "x", 0, None),        # P0 reads x ...
            (1, W, "x", None, 1),        # ... racing P1's write of x
            (0, W, "x", None, 2),        # and P0's own write races it too
            (2, W, "y", None, 3),        # P2 writes y
            (2, SW, "a", None, 0),       # P2 releases a
            (3, SRW, "a", 0, 1),         # P3 acquires a
            (3, R, "y", 3, None),        # P3's read of y is ordered...
            (4, W, "y", None, 4),        # ...but P4's write of y is not
        ],
        num_procs=5,
        final_memory={"x": 2, "y": 4, "a": 1},
    )


def figure3_program(
    num_extra_sharers: int = 0,
    release_work: int = 0,
    post_release_work: int = 40,
) -> Program:
    """The Figure-3 scenario as a DRF0 program for the simulator.

    P1 (and optionally extra processors) first warms its cache with x so
    P0's later write of x needs invalidations -- that is the "write of x
    takes a long time to be globally performed" premise.  The warm-up read
    is ordered before the write through sync location g, keeping the
    program data-race-free.  Then:

    * P0: W(x); <release_work>; Unset(s); <post_release_work>
    * P1: TestAndSet(s) until it wins; R(x)

    Args:
        num_extra_sharers: Additional processors that also cache x (more
            invalidation acks, slower global perform).
        release_work: Local cycles P0 spends between W(x) and Unset(s).
        post_release_work: Local cycles P0 spends after the Unset -- the
            work Definition 1 delays but the paper's implementation does not.
    """
    p0 = (
        ThreadBuilder()
        .label("ready")
        .test_and_set("rg", "g")
        .branch_if(Condition.NE, "rg", 0, "ready")
        .store("x", 1)
    )
    if release_work:
        p0.delay(release_work)
    p0.unset("s")
    if post_release_work:
        p0.delay(post_release_work)

    p1 = (
        ThreadBuilder()
        .load("warm", "x")          # warm the cache: x becomes shared
        .unset("g")                 # signal P0 it may start
        .label("acq")
        .test_and_set("rs", "s")
        .branch_if(Condition.NE, "rs", 0, "acq")
        .load("r1", "x")
    )

    threads = [p0, p1]
    sharers = max(0, num_extra_sharers)
    for i in range(sharers):
        # Extra sharers warm x, then signal through their own sync location.
        threads.append(ThreadBuilder().load("warm", "x").unset(f"g{i}"))
    if sharers:
        # P1 collects every sharer's signal before releasing g to P0, so all
        # warm-up reads are ordered before P0's write (the program stays
        # data-race-free and x has many shared copies to invalidate).
        p1_new = ThreadBuilder().load("warm", "x")
        for i in range(sharers):
            p1_new.label(f"w{i}").test_and_set("rw", f"g{i}").branch_if(
                Condition.NE, "rw", 0, f"w{i}"
            )
        p1_new.unset("g")
        p1_new.label("acq").test_and_set("rs", "s").branch_if(
            Condition.NE, "rs", 0, "acq"
        ).load("r1", "x")
        threads[1] = p1_new

    initial = {"g": 1, "s": 1}
    for i in range(sharers):
        initial[f"g{i}"] = 1
    return build_program(threads, initial_memory=initial, name="figure3")
