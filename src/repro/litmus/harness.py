"""Litmus harness: run the catalog across models and hardware.

Three evaluation backends share the catalog:

* the idealized architecture (exact SC result enumeration),
* the axiomatic models (:mod:`repro.axiomatic`), for straight-line tests,
* the hardware simulator, sweeping nondeterminism seeds per configuration
  and policy.

:func:`run_litmus_on_hardware` reports whether the interesting outcome was
ever observed, plus the Definition-2 verdict (every observed result checked
against the guided SC-membership oracle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.contract import appears_sc
from repro.core.drf0 import check_program
from repro.core.execution import Result
from repro.core.sc import ExplorationConfig, sc_results
from repro.hw.base import MemoryPolicy
from repro.litmus.catalog import LitmusTest
from repro.sim.system import SystemConfig, run_seed_sweep


@dataclass
class LitmusHardwareReport:
    """Outcome of one litmus test on one (config, policy) hardware pair."""

    test: LitmusTest
    policy_name: str
    config: SystemConfig
    seeds_run: int
    outcome_observed: bool
    results: Set[Result] = field(default_factory=set)
    appears_sc: bool = True
    non_sc_results: List[Result] = field(default_factory=list)

    @property
    def contract_respected(self) -> bool:
        """Definition 2: only binding when the program obeys DRF0."""
        if not self.test.drf0:
            return True
        return self.appears_sc


def run_litmus_on_hardware(
    test: LitmusTest,
    policy_factory,
    config: SystemConfig,
    seeds: Sequence[int] = range(20),
    check_contract: bool = True,
) -> LitmusHardwareReport:
    """Run one litmus test over many seeds under one policy.

    ``seeds`` may be a one-shot iterable (e.g. a generator): it is
    materialized once at entry so ``seeds_run`` reports the true count.
    The sweep is batched through :func:`~repro.sim.system.run_seed_sweep`:
    one policy instance (policies are stateless), one up-front
    (policy, config) validation.
    """
    seeds = list(seeds)
    policy = policy_factory()
    results: Set[Result] = {
        run.result
        for run in run_seed_sweep(test.program, policy, config, seeds)
    }
    observed = test.outcome_observed(results)
    report = LitmusHardwareReport(
        test=test,
        policy_name=policy.name,
        config=config,
        seeds_run=len(seeds),
        outcome_observed=observed,
        results=results,
    )
    if check_contract:
        contract = appears_sc(test.program, results)
        report.appears_sc = contract.appears_sc
        report.non_sc_results = contract.violations
    return report


def verify_catalog_expectations(
    tests: Iterable[LitmusTest],
    exploration: Optional[ExplorationConfig] = None,
) -> List[str]:
    """Check each test's declared sc_allows / drf0 flags against the oracles.

    Returns a list of human-readable discrepancies (empty = catalog sound).
    Used by the test suite to keep the catalog honest.
    """
    problems: List[str] = []
    for test in tests:
        results = sc_results(test.program, exploration)
        sc_observed = test.outcome_observed(results)
        if sc_observed != test.sc_allows:
            problems.append(
                f"{test.name}: sc_allows={test.sc_allows} but enumeration "
                f"says {sc_observed}"
            )
        verdict = check_program(test.program)
        if verdict.obeys != test.drf0:
            problems.append(
                f"{test.name}: drf0={test.drf0} but checker says {verdict.obeys}"
            )
    return problems


def hardware_outcome_table(
    tests: Iterable[LitmusTest],
    policy_factories: Dict[str, object],
    config: SystemConfig,
    seeds: Sequence[int] = range(20),
) -> List[Dict[str, object]]:
    """Rows of {test, policy, observed, contract} for reporting."""
    rows: List[Dict[str, object]] = []
    for test in tests:
        for name, factory in policy_factories.items():
            report = run_litmus_on_hardware(test, factory, config, seeds)
            rows.append(
                {
                    "test": test.name,
                    "drf0": test.drf0,
                    "policy": name,
                    "outcome_observed": report.outcome_observed,
                    "appears_sc": report.appears_sc,
                    "contract_respected": report.contract_respected,
                }
            )
    return rows
