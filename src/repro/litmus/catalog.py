"""Litmus-test catalog: the paper's figures plus the classic suite.

Each :class:`LitmusTest` bundles a program, a human-readable description,
the *interesting* outcome (as a predicate over results), and the expected
verdicts: whether the outcome is sequentially consistent and whether the
program obeys DRF0.  The harness (:mod:`repro.litmus.harness`) runs the
catalog against the idealized architecture, the axiomatic models, and the
hardware implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.execution import Result
from repro.core.types import Condition
from repro.machine.dsl import ThreadBuilder, build_program
from repro.machine.program import Program


@dataclass(frozen=True)
class LitmusTest:
    """One litmus test with its interesting outcome."""

    name: str
    description: str
    program: Program
    #: Predicate picking out the interesting ("exists") outcome.
    outcome: Callable[[Result], bool]
    #: Whether sequential consistency allows the interesting outcome.
    sc_allows: bool
    #: Whether the program obeys DRF0 (Definition 3).
    drf0: bool

    def outcome_observed(self, results) -> bool:
        """True if any of ``results`` satisfies the interesting outcome."""
        return any(self.outcome(r) for r in results)


def store_buffer() -> LitmusTest:
    """Figure 1: W(x) R(y) || W(y) R(x); can both reads return 0?"""
    p1 = ThreadBuilder().store("x", 1).load("r1", "y")
    p2 = ThreadBuilder().store("y", 1).load("r2", "x")
    return LitmusTest(
        name="SB",
        description="Figure 1 store-buffer (Dekker core): both processors "
        "read 0 and kill each other",
        program=build_program([p1, p2], name="SB"),
        outcome=lambda r: r.reads[0][0] == 0 and r.reads[1][0] == 0,
        sc_allows=False,
        drf0=False,
    )


def message_passing() -> LitmusTest:
    """MP with data accesses only: stale data after seeing the flag."""
    p0 = ThreadBuilder().store("x", 1).store("flag", 1)
    p1 = ThreadBuilder().load("r0", "flag").load("r1", "x")
    return LitmusTest(
        name="MP",
        description="message passing via data flag: consumer sees flag=1 "
        "but stale x=0",
        program=build_program([p0, p1], name="MP"),
        outcome=lambda r: r.reads[1] == (1, 0),
        sc_allows=False,
        drf0=False,
    )


def message_passing_sync() -> LitmusTest:
    """MP with a write-only sync release and spinning read-only sync acquire."""
    p0 = ThreadBuilder().store("x", 1).unset("flag")
    p1 = (
        ThreadBuilder()
        .label("wait")
        .sync_load("r0", "flag")
        .branch_if(Condition.NE, "r0", 0, "wait")
        .load("r1", "x")
    )
    return LitmusTest(
        name="MP+sync",
        description="message passing through Unset/Test synchronization: "
        "stale x after the flag flips would violate the contract",
        program=build_program(
            [p0, p1], initial_memory={"flag": 1}, name="MP+sync"
        ),
        outcome=lambda r: len(r.reads[1]) >= 2 and r.reads[1][-1] == 0,
        sc_allows=False,
        drf0=True,
    )


def load_buffer() -> LitmusTest:
    """LB: R(x) W(y) || R(y) W(x); both reads returning 1 needs
    out-of-thin-air-ish reordering."""
    p0 = ThreadBuilder().load("r0", "x").store("y", 1)
    p1 = ThreadBuilder().load("r1", "y").store("x", 1)
    return LitmusTest(
        name="LB",
        description="load buffering: both loads observe the other thread's "
        "later store",
        program=build_program([p0, p1], name="LB"),
        outcome=lambda r: r.reads[0][0] == 1 and r.reads[1][0] == 1,
        sc_allows=False,
        drf0=False,
    )


def coherence_corr() -> LitmusTest:
    """CoRR: two reads of one location must not observe new-then-old."""
    p0 = ThreadBuilder().store("x", 1)
    p1 = ThreadBuilder().load("r0", "x").load("r1", "x")
    return LitmusTest(
        name="CoRR",
        description="read-read coherence: a processor observes x=1 then x=0",
        program=build_program([p0, p1], name="CoRR"),
        outcome=lambda r: r.reads[1] == (1, 0),
        sc_allows=False,
        drf0=False,
    )


def coherence_coww() -> LitmusTest:
    """CoWW-style final state: writes to one location serialize."""
    p0 = ThreadBuilder().store("x", 1).store("x", 2)
    p1 = ThreadBuilder().load("r0", "x").load("r1", "x")
    return LitmusTest(
        name="CoRR2",
        description="per-location serialization: observing 2 then 1",
        program=build_program([p0, p1], name="CoRR2"),
        outcome=lambda r: r.reads[1] == (2, 1),
        sc_allows=False,
        drf0=False,
    )


def iriw() -> LitmusTest:
    """IRIW: two readers disagree on the order of independent writes."""
    w0 = ThreadBuilder().store("x", 1)
    w1 = ThreadBuilder().store("y", 1)
    r0 = ThreadBuilder().load("a", "x").load("b", "y")
    r1 = ThreadBuilder().load("c", "y").load("d", "x")
    return LitmusTest(
        name="IRIW",
        description="independent reads of independent writes: the readers "
        "observe the two writes in opposite orders",
        program=build_program([w0, w1, r0, r1], name="IRIW"),
        outcome=lambda r: r.reads[2] == (1, 0) and r.reads[3] == (1, 0),
        sc_allows=False,
        drf0=False,
    )


def dekker_sync() -> LitmusTest:
    """SB with synchronization accesses: DRF0-legal mutual exclusion core."""
    p0 = ThreadBuilder().sync_store("x", 1).test_and_set("r0", "y", 1)
    p1 = ThreadBuilder().sync_store("y", 1).test_and_set("r1", "x", 1)
    return LitmusTest(
        name="SB+sync",
        description="store-buffer with all accesses synchronizing: the "
        "forbidden outcome stays forbidden on weakly ordered hardware",
        program=build_program([p0, p1], name="SB+sync"),
        outcome=lambda r: r.reads[0][0] == 0 and r.reads[1][0] == 0,
        sc_allows=False,
        drf0=True,
    )


def tas_mutex() -> LitmusTest:
    """Two TestAndSets: exactly one winner (atomicity probe)."""
    p0 = ThreadBuilder().test_and_set("r0", "lock")
    p1 = ThreadBuilder().test_and_set("r1", "lock")
    return LitmusTest(
        name="TAS",
        description="competing TestAndSets: both winning (both read 0) "
        "would break read-modify-write atomicity",
        program=build_program([p0, p1], name="TAS"),
        outcome=lambda r: r.reads[0][0] == 0 and r.reads[1][0] == 0,
        sc_allows=False,
        drf0=True,
    )


def sb_one_sided_sync() -> LitmusTest:
    """SB where only one processor synchronizes: still racy, still weak."""
    p0 = ThreadBuilder().sync_store("x", 1).sync_load("r0", "y")
    p1 = ThreadBuilder().store("y", 1).load("r1", "x")
    return LitmusTest(
        name="SB+half-sync",
        description="one processor synchronizes, the other races: DRF0 is "
        "violated and the outcome may appear",
        program=build_program([p0, p1], name="SB+half-sync"),
        outcome=lambda r: r.reads[0][0] == 0 and r.reads[1][0] == 0,
        sc_allows=False,
        drf0=False,
    )


def independent_writes() -> LitmusTest:
    """Threads touching disjoint data: trivially DRF0, single SC result."""
    p0 = ThreadBuilder().store("x", 1).load("a", "x")
    p1 = ThreadBuilder().store("y", 2).load("b", "y")
    return LitmusTest(
        name="disjoint",
        description="disjoint locations: any non-program-order result is a "
        "simulator bug",
        program=build_program([p0, p1], name="disjoint"),
        outcome=lambda r: r.reads[0] != (1,) or r.reads[1] != (2,),
        sc_allows=False,
        drf0=True,
    )


def write_to_read_causality() -> LitmusTest:
    """WRC: causality through a third processor."""
    w = ThreadBuilder().store("x", 1)
    relay = ThreadBuilder().load("a", "x").store("y", "a")
    reader = ThreadBuilder().load("b", "y").load("c", "x")
    return LitmusTest(
        name="WRC",
        description="write-to-read causality: the reader sees y=1 (relayed "
        "from x=1) but stale x=0",
        program=build_program([w, relay, reader], name="WRC"),
        outcome=lambda r: r.reads[2] == (1, 0),
        sc_allows=False,
        drf0=False,
    )


def two_plus_two_w() -> LitmusTest:
    """2+2W: write-order cycle across two locations."""
    p0 = ThreadBuilder().store("x", 1).store("y", 2)
    p1 = ThreadBuilder().store("y", 1).store("x", 2)
    return LitmusTest(
        name="2+2W",
        description="2+2W: both locations end with the *first* writes "
        "(x=1, y=1), a coherence-order cycle under SC",
        program=build_program([p0, p1], name="2+2W"),
        outcome=lambda r: r.memory_value("x") == 1 and r.memory_value("y") == 1,
        sc_allows=False,
        drf0=False,
    )


def s_test() -> LitmusTest:
    """S: coherence-order cycle through a read (the classic 'S' shape)."""
    p0 = ThreadBuilder().store("x", 2).store("y", 1)
    p1 = ThreadBuilder().load("a", "y").store("x", 1)
    return LitmusTest(
        name="S",
        description="S: P1 observes y=1 (so its x=1 follows P0's x=2) yet "
        "x finally holds 2 -- a coherence/po cycle, forbidden under SC",
        program=build_program([p0, p1], name="S"),
        outcome=lambda r: r.reads[1][0] == 1 and r.memory_value("x") == 2,
        sc_allows=False,
        drf0=False,
    )


def r_test() -> LitmusTest:
    """R: a store-buffer variant mixing a write race with a read."""
    p0 = ThreadBuilder().store("x", 1).store("y", 1)
    p1 = ThreadBuilder().store("y", 2).load("a", "x")
    return LitmusTest(
        name="R",
        description="R: y ends at 2 (P1's write last) yet P1 read x=0 "
        "before P0's x=1 -- forbidden under SC",
        program=build_program([p0, p1], name="R"),
        outcome=lambda r: r.memory_value("y") == 2 and r.reads[1][0] == 0,
        sc_allows=False,
        drf0=False,
    )


def mp_data_dependency() -> LitmusTest:
    """MP with a data dependency: store relays the loaded value."""
    p0 = ThreadBuilder().store("x", 7).store("flag", 1)
    p1 = ThreadBuilder().load("f", "flag").load("v", "x").store("out", "v")
    return LitmusTest(
        name="MP+dep",
        description="MP where the consumer republishes the data it read: "
        "flag observed set but out ends 0",
        program=build_program([p0, p1], name="MP+dep"),
        outcome=lambda r: r.reads[1][0] == 1 and r.memory_value("out") == 0,
        sc_allows=False,
        drf0=False,
    )


def store_buffer_fenced() -> LitmusTest:
    """SB with RP3-style full fences between the write and the read.

    Note the interesting status: the program does *not* obey DRF0 (fences
    are not synchronization operations, so the conflicting accesses stay
    hb-unordered and Definition 2 promises nothing) -- yet any hardware
    that honours fences never shows the outcome.  The contract is
    sufficient for sequential consistency, not necessary.
    """
    p1 = ThreadBuilder().store("x", 1).fence().load("r1", "y")
    p2 = ThreadBuilder().store("y", 1).fence().load("r2", "x")
    return LitmusTest(
        name="SB+fence",
        description="store buffer with full fences (the RP3 option): the "
        "violation disappears on any fence-honouring hardware",
        program=build_program([p1, p2], name="SB+fence"),
        outcome=lambda r: r.reads[0][0] == 0 and r.reads[1][0] == 0,
        sc_allows=False,
        drf0=False,
    )


def all_tests() -> List[LitmusTest]:
    """The full catalog in a stable order."""
    return [
        store_buffer(),
        message_passing(),
        message_passing_sync(),
        load_buffer(),
        coherence_corr(),
        coherence_coww(),
        iriw(),
        dekker_sync(),
        tas_mutex(),
        sb_one_sided_sync(),
        independent_writes(),
        write_to_read_causality(),
        two_plus_two_w(),
        s_test(),
        r_test(),
        mp_data_dependency(),
        store_buffer_fenced(),
    ]


def by_name(name: str) -> LitmusTest:
    """Look one test up by name."""
    for test in all_tests():
        if test.name == name:
            return test
    raise KeyError(name)
