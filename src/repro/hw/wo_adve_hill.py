"""The paper's Section-5.3 implementation of weak ordering w.r.t. DRF0.

The key inversion of Definition 1: the processor that issues a
synchronization operation does **not** stall for its previous accesses to
be globally performed.  Instead, the *next* processor to synchronize on the
same location stalls, via the cache-resident mechanism:

* a per-processor counter of outstanding accesses (owned by the cache
  controller in :mod:`repro.sim.cache`, faithful to the paper's increment /
  decrement rules);
* a reserve bit on the cache line a synchronization operation commits to
  while the counter is positive; reserve bits clear when the counter reads
  zero, and a remote request forwarded to a reserved line stalls until then
  (condition 5 of Section 5.1).

Processor-side, only condition 4 remains: no new access is generated until
all the processor's previous synchronization operations have **committed**
(not globally performed!) -- i.e. until the sync line has been procured in
exclusive state and the operation performed on it.

With ``drf1_optimized`` (Section 6), read-only synchronization operations
(``Test``) are issued down the ordinary cached-read path: they can hit on a
shared copy, are not serialized by ownership transfers, and never set
reserve bits.  This removes the spin-serialization penalty of
Test-and-TestAndSet under the base implementation, at the price of the
weaker DRF1 software model.
"""

from __future__ import annotations

from typing import List

from repro.core.types import OpKind
from repro.hw.base import BlockLevel, GateCondition, MemoryPolicy
from repro.sim.access import AccessRecord


class AdveHillPolicy(MemoryPolicy):
    """The new implementation: counters + reserve bits, commit-level gates."""

    name = "weak-ordering-adve-hill"
    requires_caches = True
    use_reserve_bits = True

    def __init__(self, drf1_optimized: bool = False) -> None:
        self.drf1_optimized = drf1_optimized
        if drf1_optimized:
            self.name = "weak-ordering-adve-hill-drf1"

    def generation_gate(self, proc, access: AccessRecord) -> List[GateCondition]:
        """Condition 4: previous sync operations must have committed."""
        return [
            GateCondition(sync, BlockLevel.COMMIT)
            for sync in proc.pending_syncs(BlockLevel.COMMIT)
        ]

    def block_level(self, access: AccessRecord) -> BlockLevel:
        """No extra blocking; reads block implicitly, writes overlap."""
        return BlockLevel.NONE
