"""Memory-system policy interface.

A *policy* is the processor-side ordering discipline: it decides when an
access may be **generated** (handed to the memory system) and how long the
issuing thread must block on it.  The cache substrate is shared; the three
implementations the paper compares differ only in policy (plus the cache
controller's reserve-bit machinery, which a policy switches on):

* :class:`~repro.hw.sc_impl.SCPolicy` -- the [ScD87] sufficient condition
  for sequential consistency;
* :class:`~repro.hw.wo_definition1.Definition1Policy` -- Dubois/Scheurich/
  Briggs weak ordering (the paper's Definition 1);
* :class:`~repro.hw.wo_adve_hill.AdveHillPolicy` -- the paper's Section-5.3
  implementation of weak ordering w.r.t. DRF0 (Definition 2);
* :class:`~repro.hw.relaxed.RelaxedPolicy` -- no ordering at all, used to
  demonstrate the Figure-1 violations.

Two universal rules are enforced by the processor itself, not by policies:
intra-processor dependencies are preserved (condition 1 of Section 5.1 --
the front end is in-order and an access's operands are ready when it is
generated), and an access with a read component always blocks the issuing
thread until its value returns (the value feeds the program).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List

# BlockLevel and GateCondition live beside AccessRecord (they describe the
# access lifecycle); re-exported here because they are part of the policy API.
from repro.sim.access import AccessRecord, BlockLevel, GateCondition

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.processor import Processor


class MemoryPolicy(abc.ABC):
    """Ordering discipline consulted by the processor front end."""

    #: Identifier used in reports and benchmark tables.
    name: str = "abstract"
    #: True if the policy only makes sense on the cache-coherent substrate.
    requires_caches: bool = False
    #: Switch on the Section-5.3 reserve-bit machinery in the caches.
    use_reserve_bits: bool = False
    #: Route read-only synchronization through the plain read path
    #: (the Section-6 / DRF1 optimization).
    drf1_optimized: bool = False
    #: Interpose a read-bypassing write buffer in front of the cache
    #: (only the relaxed strawman does this; see sim/write_buffer.py).
    buffers_cache_writes: bool = False

    @abc.abstractmethod
    def generation_gate(
        self, proc: "Processor", access: AccessRecord
    ) -> List[GateCondition]:
        """Prerequisites before ``access`` may be generated.

        ``proc`` exposes the issuing processor's bookkeeping
        (``not_globally_performed()``, ``uncommitted_syncs()``,
        ``last_generated``).
        """

    def block_level(self, access: AccessRecord) -> BlockLevel:
        """Extra blocking after generation (beyond the implicit read block)."""
        return BlockLevel.NONE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemoryPolicy {self.name}>"
