"""Memory-system policies: SC, Definition 1, and the paper's implementation."""

from repro.hw.base import BlockLevel, GateCondition, MemoryPolicy
from repro.hw.relaxed import RelaxedPolicy
from repro.hw.release_consistency import ReleaseConsistencyPolicy
from repro.hw.sc_impl import SCPolicy
from repro.hw.wo_adve_hill import AdveHillPolicy
from repro.hw.wo_definition1 import Definition1Policy

#: Factories for the policies compared throughout the benchmarks.
POLICY_FACTORIES = {
    "sc": SCPolicy,
    "definition1": Definition1Policy,
    "adve-hill": AdveHillPolicy,
    "adve-hill-drf1": lambda: AdveHillPolicy(drf1_optimized=True),
    "release-consistency": ReleaseConsistencyPolicy,
    "relaxed": RelaxedPolicy,
}

__all__ = [
    "AdveHillPolicy",
    "BlockLevel",
    "Definition1Policy",
    "GateCondition",
    "MemoryPolicy",
    "POLICY_FACTORIES",
    "RelaxedPolicy",
    "ReleaseConsistencyPolicy",
    "SCPolicy",
]
