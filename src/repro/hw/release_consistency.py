"""Release consistency (RCsc-flavoured), as a comparison policy.

Section 7 calls for "alternative implementations of weak ordering with
respect to data-race-free models"; the design that followed this paper in
the literature (Gharachorloo et al., also ISCA 1990) splits
synchronization into *acquires* (read components) and *releases* (write
components) and relaxes exactly the orders DRF software cannot observe:

* an **acquire** must complete before any later access is generated (it
  guards the critical region's entry), but it need **not** wait for the
  processor's earlier data accesses;
* a **release** must wait until all earlier accesses are globally
  performed (it publishes them), but later *data* accesses need not wait
  for the release;
* synchronization accesses themselves stay sequentially consistent with
  respect to each other (the "sc" in RCsc): a sync access waits for
  earlier sync accesses to be globally performed.

Compared to Definition 1, the win is the acquire side: Definition 1 stalls
a synchronization access until *all* previous accesses are globally
performed, even a lock acquire whose earlier accesses are irrelevant.
Compared to the paper's Section-5.3 implementation, RCsc still stalls the
*releasing* processor (Figure 3's "Def. 1 stalls P0" applies to its
releases too); the Adve-Hill implementation moves even that wait to the
next synchronizer.

The policy runs on the plain cache substrate (no reserve bits); its
Definition-2 conformance for DRF0 programs is checked empirically in the
test suite alongside the other implementations.
"""

from __future__ import annotations

from typing import List

from repro.hw.base import BlockLevel, GateCondition, MemoryPolicy
from repro.sim.access import AccessRecord


class ReleaseConsistencyPolicy(MemoryPolicy):
    """RCsc: acquires gate later accesses, releases gate on earlier ones."""

    name = "release-consistency"

    def generation_gate(self, proc, access: AccessRecord) -> List[GateCondition]:
        gates: List[GateCondition] = []
        if access.is_sync:
            if access.has_write:
                # Release: everything before it must be globally performed.
                gates.extend(
                    GateCondition(prev, BlockLevel.GP)
                    for prev in proc.not_globally_performed()
                )
            else:
                # Acquire-only: sync-sync SC order, not data publication.
                gates.extend(
                    GateCondition(prev, BlockLevel.GP)
                    for prev in proc.accesses
                    if prev.is_sync and not prev.globally_performed
                )
        else:
            # Data access: earlier acquires must have completed (their read
            # guards this access); earlier releases impose nothing on it.
            gates.extend(
                GateCondition(prev, BlockLevel.COMMIT)
                for prev in proc.accesses
                if prev.is_sync and prev.has_read and not prev.committed
            )
        return gates

    def block_level(self, access: AccessRecord) -> BlockLevel:
        """Reads block implicitly; nothing else blocks the thread."""
        return BlockLevel.NONE
