"""A completely unordered policy, for demonstrating the Figure-1 violations.

No generation gates, no blocking beyond the unavoidable read-value wait.
Writes drain through write buffers (cacheless systems) or overlap with
later accesses (cache systems) with nothing enforcing order.  Individual
read-modify-write synchronization operations are still atomic -- the
substrate guarantees that -- but nothing orders *across* accesses, so this
hardware is not weakly ordered with respect to anything useful.
"""

from __future__ import annotations

from typing import List

from repro.hw.base import BlockLevel, GateCondition, MemoryPolicy
from repro.sim.access import AccessRecord


class RelaxedPolicy(MemoryPolicy):
    """Maximum overlap, no ordering: the Figure-1 strawman."""

    name = "relaxed-unordered"
    buffers_cache_writes = True

    def generation_gate(self, proc, access: AccessRecord) -> List[GateCondition]:
        """Never gate generation."""
        return []

    def block_level(self, access: AccessRecord) -> BlockLevel:
        """Never block beyond the implicit read-value wait."""
        return BlockLevel.NONE
