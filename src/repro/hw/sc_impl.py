"""Sequentially consistent implementation ([ScD87] sufficient condition).

"The condition is satisfied if all processors issue their accesses in
program order, and no access is issued by a processor until its previous
accesses have been globally performed."  The front end is in-order already;
this policy adds the globally-performed gate between consecutive accesses.

This is the baseline the paper argues against on performance: every write
serializes the processor against the full interconnect round trip.
"""

from __future__ import annotations

from typing import List

from repro.hw.base import BlockLevel, GateCondition, MemoryPolicy
from repro.sim.access import AccessRecord


class SCPolicy(MemoryPolicy):
    """Stall every access until the previous one is globally performed."""

    name = "sequential-consistency"

    def generation_gate(self, proc, access: AccessRecord) -> List[GateCondition]:
        """Gate on the immediately previous access being globally performed.

        Global performance is transitively ordered here (the previous access
        gated on its own predecessor), so one condition suffices.
        """
        previous = proc.last_generated
        if previous is not None and not previous.globally_performed:
            return [GateCondition(previous, BlockLevel.GP)]
        return []

    def block_level(self, access: AccessRecord) -> BlockLevel:
        """Block the thread itself too; keeps the pipeline strictly serial."""
        return BlockLevel.GP
