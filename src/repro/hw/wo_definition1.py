"""Weak ordering per Definition 1 (Dubois, Scheurich and Briggs).

Definition 1's three conditions, as implemented here:

1. *Accesses to global synchronizing variables are strongly ordered* -- a
   synchronization access gates on **all** previous accesses (data and
   sync) being globally performed, which in particular serializes
   synchronization accesses against each other; the substrate's directory
   additionally serializes same-location synchronization system-wide.
2. *No access to a synchronizing variable is issued by a processor before
   all previous global data accesses have been globally performed* -- the
   same gate.
3. *No access to global data is issued by a processor before a previous
   access to a synchronizing variable has been globally performed* -- every
   data access gates on the processor's previous synchronization accesses
   being globally performed.

Between synchronization points, data writes are fire-and-forget and overlap
freely -- that is weak ordering's performance advantage over SC.  The cost
the paper attacks: the issuing processor stalls *at* each synchronization
operation until everything before it has been observed by all processors
(Figure 3's "Def. 1 stalls P0").
"""

from __future__ import annotations

from typing import List

from repro.hw.base import BlockLevel, GateCondition, MemoryPolicy
from repro.sim.access import AccessRecord


class Definition1Policy(MemoryPolicy):
    """The old definition: stall the issuing processor at sync operations."""

    name = "weak-ordering-definition1"

    def generation_gate(self, proc, access: AccessRecord) -> List[GateCondition]:
        if access.is_sync:
            # Conditions 1 & 2: everything previous must be globally
            # performed before a synchronization access is issued.
            return [
                GateCondition(prev, BlockLevel.GP)
                for prev in proc.not_globally_performed()
            ]
        # Condition 3: previous synchronization accesses must be globally
        # performed before a data access is issued.
        return [
            GateCondition(sync, BlockLevel.GP)
            for sync in proc.pending_syncs(BlockLevel.GP)
        ]

    def block_level(self, access: AccessRecord) -> BlockLevel:
        """No extra blocking: the gates carry all of Definition 1's order."""
        return BlockLevel.NONE
