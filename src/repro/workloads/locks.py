"""Lock-based workloads: the Section-6 spinning analysis and beyond.

Two acquire idioms matter to the paper:

* plain ``TestAndSet`` spinning -- every spin iteration is a read-write
  synchronization operation, so under the base DRF0 implementation every
  iteration acquires the line exclusively;
* ``Test-and-TestAndSet`` ([RuS84], cited in Section 6) -- spin with a
  read-only ``Test`` and attempt the ``TestAndSet`` only when the lock
  looks free.  The base implementation *serializes these Tests as writes*
  (the performance problem Section 6 identifies); the DRF1 optimization
  lets them spin on a shared cached copy.
"""

from __future__ import annotations

from typing import Optional

from repro.core.types import Condition
from repro.machine.dsl import ThreadBuilder, build_program
from repro.machine.program import Program


def lock_workload(
    num_procs: int = 4,
    increments_per_proc: int = 1,
    ttas: bool = False,
    critical_work: int = 0,
    private_work: int = 0,
    name: Optional[str] = None,
) -> Program:
    """Each processor repeatedly acquires a lock and bumps a shared counter.

    Args:
        num_procs: Contending processors.
        increments_per_proc: Critical-section entries per processor.
        ttas: Use Test-and-TestAndSet acquire (Section 6's idiom).
        critical_work: Local-work cycles inside the critical section
            (longer hold time means more spinning by the others).
        private_work: Local-work cycles outside the critical section.

    The final value of ``count`` must equal
    ``num_procs * increments_per_proc`` under any correct memory system.
    """
    threads = []
    for proc in range(num_procs):
        t = ThreadBuilder()
        for round_index in range(increments_per_proc):
            if ttas:
                t.acquire_ttas("lock", scratch=f"tas{round_index}")
            else:
                t.acquire("lock", scratch=f"tas{round_index}")
            if critical_work:
                t.delay(critical_work)
            t.load("tmp", "count").add("tmp", "tmp", 1).store("count", "tmp")
            t.release("lock")
            if private_work:
                t.delay(private_work)
        threads.append(t)
    label = name or (
        f"lock-{'ttas' if ttas else 'tas'}-p{num_procs}x{increments_per_proc}"
    )
    return build_program(threads, name=label)


def expected_count(num_procs: int, increments_per_proc: int) -> int:
    """The only correct final counter value for :func:`lock_workload`."""
    return num_procs * increments_per_proc


def contended_release_workload(
    num_spinners: int = 3, hold_cycles: int = 120
) -> Program:
    """One holder keeps the lock while others spin: the Section-6 stressor.

    Processor 0 acquires the lock (it starts free), performs
    ``hold_cycles`` of work, and releases.  The other processors spin for
    the lock, increment the counter, and release.  While P0 holds the lock,
    the spinners' repeated synchronization reads either ping-pong the lock
    line (base implementation: Tests are writes) or idle in local caches
    (DRF1 optimization) -- the difference is P0's release latency and total
    traffic.
    """
    holder = (
        ThreadBuilder()
        .acquire("lock")
        .delay(hold_cycles)
        .load("tmp", "count")
        .add("tmp", "tmp", 1)
        .store("count", "tmp")
        .release("lock")
    )
    threads = [holder]
    for _ in range(num_spinners):
        t = (
            ThreadBuilder()
            .acquire_ttas("lock")
            .load("tmp", "count")
            .add("tmp", "tmp", 1)
            .store("count", "tmp")
            .release("lock")
        )
        threads.append(t)
    return build_program(
        threads, name=f"contended-release-s{num_spinners}h{hold_cycles}"
    )
