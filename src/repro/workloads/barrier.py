"""Barrier workloads: lock-protected count plus a sense flag.

A centralized sense-reversing barrier built from the library's primitives:
the arrival count is a plain data location protected by a TestAndSet lock;
the *sense* is flipped by the last arriver with a write-only
synchronization operation, and everyone else spins on it with read-only
synchronization.  The whole construction is DRF0-clean -- a higher-level
synchronization operation built from the hardware primitives, exactly as
Section 4 envisions ("a programmer is free to build and use higher level,
more complex synchronization operations").

The data-parallel phase workload uses the barrier the way the paper's
intro motivates: frequent data accesses between infrequent
synchronization.
"""

from __future__ import annotations

from typing import List

from repro.core.types import Condition
from repro.machine.dsl import ThreadBuilder
from repro.machine.dsl import build_program
from repro.machine.program import Program


def _barrier(
    t: ThreadBuilder,
    phase: int,
    num_procs: int,
    count_loc: str = None,
    sense_loc: str = None,
) -> ThreadBuilder:
    """Emit one barrier episode into thread builder ``t``."""
    count = count_loc or f"bcount{phase}"
    sense = sense_loc or f"bsense{phase}"
    lock = f"block{phase}"
    t.acquire(lock, scratch=f"bt{phase}")
    t.load(f"bc{phase}", count)
    t.add(f"bc{phase}", f"bc{phase}", 1)
    t.store(count, f"bc{phase}")
    t.release(lock)
    # Last arriver releases the sense; others spin on it.
    t.branch_if(Condition.NE, f"bc{phase}", num_procs, f"bspin{phase}")
    t.unset(sense)
    t.jump(f"bdone{phase}")
    t.label(f"bspin{phase}")
    t.label(f"bwait{phase}")
    t.sync_load(f"bs{phase}", sense)
    t.branch_if(Condition.NE, f"bs{phase}", 0, f"bwait{phase}")
    t.label(f"bdone{phase}")
    return t


def barrier_workload(num_procs: int = 4, phases: int = 2) -> Program:
    """``phases`` consecutive barriers with nothing between them.

    Pure synchronization cost: each phase uses a fresh count/sense pair
    (centralized barriers are single-use without sense reversal, and fresh
    locations keep every phase DRF0-clean).
    """
    threads = [ThreadBuilder() for _ in range(num_procs)]
    initial = {}
    for phase in range(phases):
        initial[f"bsense{phase}"] = 1
        for t in threads:
            _barrier(t, phase, num_procs)
    return build_program(
        threads, initial_memory=initial, name=f"barrier-p{num_procs}x{phases}"
    )


def phase_parallel_workload(
    num_procs: int = 4, chunk: int = 4, phases: int = 2
) -> Program:
    """Data-parallel phases separated by barriers.

    In each phase, processor ``p`` writes its own chunk of locations
    (``a{phase}_{p}_{i}``), crosses a barrier, then reads its right
    neighbour's chunk from the phase -- the classic bulk-synchronous
    pattern.  Data accesses dominate; synchronization is rare.
    """
    threads = [ThreadBuilder() for _ in range(num_procs)]
    initial = {}
    for phase in range(phases):
        initial[f"bsense{phase}"] = 1
        for p, t in enumerate(threads):
            for i in range(chunk):
                t.store(f"a{phase}_{p}_{i}", phase * 100 + p * 10 + i)
        for t in threads:
            _barrier(t, phase, num_procs)
        for p, t in enumerate(threads):
            neighbour = (p + 1) % num_procs
            for i in range(chunk):
                t.load(f"n{phase}_{i}", f"a{phase}_{neighbour}_{i}")
    return build_program(
        threads,
        initial_memory=initial,
        name=f"phases-p{num_procs}c{chunk}x{phases}",
    )


def expected_neighbour_values(
    num_procs: int, chunk: int, phase: int, proc: int
) -> List[int]:
    """Values processor ``proc`` must read from its neighbour in ``phase``."""
    neighbour = (proc + 1) % num_procs
    return [phase * 100 + neighbour * 10 + i for i in range(chunk)]
