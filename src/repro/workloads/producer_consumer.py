"""Producer/consumer flag-passing workloads.

The producer writes a batch of data locations and releases a flag with a
write-only synchronization; the consumer spins on the flag with read-only
synchronization and then reads the batch.  This is the paper's motivating
pattern (synchronization orders the *infrequent* interactions so the
*frequent* data accesses can be fast):

* under SC every data write costs a full globally-performed round trip;
* under Definition 1 the writes overlap each other but the producer stalls
  at the flag release until all of them are globally performed;
* under the paper's implementation the producer releases immediately and
  keeps working -- only the consumer's first synchronization on the flag
  waits (Figure 3's asymmetry, at workload scale).
"""

from __future__ import annotations

from typing import List

from repro.core.types import Condition
from repro.machine.dsl import ThreadBuilder, build_program
from repro.machine.program import Program


def data_locations(batch_size: int, round_index: int = 0) -> List[str]:
    """The batch locations for one round (disjoint across rounds, so
    consecutive rounds never race with a still-reading consumer)."""
    return [f"d{round_index}_{i}" for i in range(batch_size)]


def batch_value(batch_size: int, round_index: int, i: int) -> int:
    """The value the producer writes to slot ``i`` of ``round_index``."""
    return round_index * batch_size + i + 1


def producer_consumer_workload(
    batch_size: int = 8,
    post_release_work: int = 0,
    rounds: int = 1,
) -> Program:
    """One producer, one consumer, ``rounds`` batches through flag hand-offs.

    Each round uses its own flag (initialized to 1, released by Unset) and
    its own batch of locations, so the whole program is DRF0-clean with no
    back-channel.  With ``post_release_work`` the producer has useful local
    work after each release -- exactly what Definition 1 delays and the
    paper's implementation does not.
    """
    producer = ThreadBuilder()
    consumer = ThreadBuilder()
    initial = {}
    for r in range(rounds):
        flag = f"flag{r}"
        initial[flag] = 1
        for i, loc in enumerate(data_locations(batch_size, r)):
            producer.store(loc, batch_value(batch_size, r, i))
        producer.unset(flag)
        if post_release_work:
            producer.delay(post_release_work)

        consumer.label(f"wait{r}").sync_load("rf", flag).branch_if(
            Condition.NE, "rf", 0, f"wait{r}"
        )
        for i, loc in enumerate(data_locations(batch_size, r)):
            consumer.load(f"v{r}_{i}", loc)
    return build_program(
        [producer, consumer],
        initial_memory=initial,
        name=f"prodcons-b{batch_size}r{rounds}",
    )


def expected_final_data(batch_size: int, rounds: int) -> dict:
    """Final memory contents of every data location."""
    return {
        loc: batch_value(batch_size, r, i)
        for r in range(rounds)
        for i, loc in enumerate(data_locations(batch_size, r))
    }
