"""Synthetic workloads for the quantitative comparison (Section 7's future work)."""

from repro.workloads.barrier import (
    barrier_workload,
    expected_neighbour_values,
    phase_parallel_workload,
)
from repro.workloads.locks import (
    contended_release_workload,
    expected_count,
    lock_workload,
)
from repro.workloads.producer_consumer import (
    batch_value,
    data_locations,
    expected_final_data,
    producer_consumer_workload,
)
from repro.workloads.work_queue import (
    consumed_total,
    expected_total,
    work_queue_workload,
)

__all__ = [
    "consumed_total",
    "expected_total",
    "work_queue_workload",
    "barrier_workload",
    "batch_value",
    "contended_release_workload",
    "data_locations",
    "expected_count",
    "expected_final_data",
    "expected_neighbour_values",
    "lock_workload",
    "phase_parallel_workload",
    "producer_consumer_workload",
]
