"""A lock-protected work queue: the paper's "monitor" paradigm.

Section 7 suggests synchronization models "optimized for particular
software paradigms, such as sharing only through monitors".  This workload
is the monitor archetype: one producer pushes items into a shared queue
and consumers pop them, with *all* shared state (head, tail, the slots)
touched only inside one lock -- plus a write-only-sync ``done`` flag the
producer raises after its last push.

Everything is DRF0 by construction (monitor discipline implies
happens-before ordering through the lock's TestAndSet/Unset pairs), so by
Definition 2 every implementation must deliver exactly-once consumption:
the consumers' private tallies must sum to the sum of all items.
"""

from __future__ import annotations

from typing import List

from repro.core.types import Condition
from repro.machine.dsl import ThreadBuilder, build_program
from repro.machine.program import Program


def item_value(index: int) -> int:
    """The value pushed as item ``index`` (distinct, nonzero)."""
    return index + 1


def expected_total(num_items: int) -> int:
    """Sum every consumer tally must collectively reach."""
    return sum(item_value(i) for i in range(num_items))


def work_queue_workload(
    num_consumers: int = 2, num_items: int = 4
) -> Program:
    """One producer, ``num_consumers`` consumers, a ``num_items`` queue.

    Locations: ``slot{i}`` (queue storage), ``head``/``tail`` (cursors,
    lock-protected), ``qlock`` (TestAndSet lock), ``done`` (write-only
    sync flag), ``tally{c}`` (per-consumer private sum).
    """
    producer = ThreadBuilder()
    for index in range(num_items):
        producer.acquire("qlock", scratch="pt")
        producer.load("t", "tail")
        # slots are addressed by the tail cursor; with a single producer the
        # cursor simply walks 0..num_items-1, so the slot name is static.
        producer.store(f"slot{index}", item_value(index))
        producer.add("t", "t", 1)
        producer.store("tail", "t")
        producer.release("qlock")
    producer.unset("done")

    consumers: List[ThreadBuilder] = []
    for consumer_index in range(num_consumers):
        t = ThreadBuilder()
        t.mov("sum", 0)
        t.label("loop")
        t.acquire("qlock", scratch="ct")
        t.load("h", "head")
        t.load("t", "tail")
        t.branch_if(Condition.GE, "h", "t", "empty")
        # pop: read slot[h] via a computed dispatch over the static slots
        for index in range(num_items):
            t.branch_if(Condition.NE, "h", index, f"not{index}")
            t.load("item", f"slot{index}")
            t.jump(f"got")
            t.label(f"not{index}")
        t.mov("item", 0)  # unreachable: h < tail <= num_items
        t.label("got")
        t.add("h", "h", 1)
        t.store("head", "h")
        t.release("qlock")
        t.add("sum", "sum", "item")
        t.store(f"tally{consumer_index}", "sum")
        t.jump("loop")
        t.label("empty")
        t.release("qlock")
        # queue empty: if the producer is done, exit; otherwise retry
        t.sync_load("d", "done")
        t.branch_if(Condition.NE, "d", 0, "loop")
        # one final sweep: items may have been pushed before `done` flipped
        t.label("drain")
        t.acquire("qlock", scratch="ct2")
        t.load("h", "head")
        t.load("t", "tail")
        t.branch_if(Condition.GE, "h", "t", "finished")
        for index in range(num_items):
            t.branch_if(Condition.NE, "h", index, f"dnot{index}")
            t.load("item", f"slot{index}")
            t.jump("dgot")
            t.label(f"dnot{index}")
        t.mov("item", 0)
        t.label("dgot")
        t.add("h", "h", 1)
        t.store("head", "h")
        t.release("qlock")
        t.add("sum", "sum", "item")
        t.store(f"tally{consumer_index}", "sum")
        t.jump("drain")
        t.label("finished")
        t.release("qlock")
        consumers.append(t)

    return build_program(
        [producer, *consumers],
        initial_memory={"qlock": 0, "done": 1},
        name=f"workqueue-c{num_consumers}i{num_items}",
    )


def consumed_total(result, num_consumers: int) -> int:
    """Sum of the consumers' final tallies in a run result."""
    return sum(
        result.memory_value(f"tally{c}") for c in range(num_consumers)
    )
