"""Snooping-bus cache coherence: the paper's bus-based lineage.

Section 2.1: "For single bus cache-based systems, a number of
cache-coherence protocols have been proposed in the literature [ArB86].
Most ensure sequential consistency.  In particular, Rudolph and Segall
have developed two protocols, which they formally prove guarantee
sequential consistency [RuS84]."

This module implements that classic substrate: a write-invalidate MSI
protocol over an **atomic bus**.  One bus transaction is in flight at a
time; when it is granted, every other cache snoops it in the same cycle
(invalidating or downgrading its copy, supplying data if it holds the line
modified), memory is updated on write-backs, and the requester receives
the line.  The atomicity has a sharp consequence the directory substrate
lacks:

* a write is **globally performed the moment its transaction is granted**
  (every stale copy died during the snoop), so commit == globally
  performed for bus transactions;
* per-processor bus requests are served FIFO, so by the time a
  synchronization operation's transaction is granted, all the issuing
  processor's earlier misses have been granted too -- Section 5.1's
  condition 5 holds *structurally*, with no counters or reserve bits.

What remains weak is everything that avoids the bus: cache **hits** can
complete while earlier misses are still queued, and the relaxed policy's
write buffer still lets reads overtake writes -- exactly the residual
hazards Figure 1 lists for bus-based cache systems.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.core.types import Location, OpKind, Value
from repro.sim.access import AccessRecord
from repro.sim.cache import CacheLine, LineState
from repro.sim.events import SimulationError, Simulator


@dataclass
class _BusRequest:
    """One queued bus transaction."""

    cache: "SnoopyCache"
    access: AccessRecord
    exclusive: bool  # BusRdX vs BusRd


class SnoopBus:
    """Atomic split-nothing bus: one transaction per ``latency`` cycles."""

    def __init__(self, sim: Simulator, initial_memory: Dict[Location, Value],
                 latency: int = 2) -> None:
        self.sim = sim
        self.latency = latency
        self.memory: Dict[Location, Value] = dict(initial_memory)
        self.caches: List["SnoopyCache"] = []
        self._queue: Deque[_BusRequest] = deque()
        self._busy = False
        self.transactions = 0
        self.messages_sent = 0  # transaction count, for MachineRun parity
        self.invalidations_sent = 0

    @property
    def requests_served(self) -> int:
        """Directory-interface parity for run packaging."""
        return self.transactions

    def attach(self, cache: "SnoopyCache") -> None:
        """Register a snooping cache."""
        self.caches.append(cache)

    def request(self, cache: "SnoopyCache", access: AccessRecord,
                exclusive: bool) -> None:
        """Queue a transaction; FIFO arbitration."""
        self._queue.append(_BusRequest(cache, access, exclusive))
        self._pump()

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        request = self._queue.popleft()
        self.sim.after(self.latency, lambda: self._grant(request))

    def _grant(self, request: _BusRequest) -> None:
        """The atomic step: snoop everyone, move data, complete the access."""
        self.transactions += 1
        self.messages_sent += 1
        loc = request.access.location
        value = self.memory[loc]
        for cache in self.caches:
            if cache is request.cache:
                continue
            had_copy = (
                cache.lines.get(loc) is not None
                and cache.lines[loc].state is not LineState.INVALID
            )
            supplied = cache.snoop(loc, request.exclusive)
            if request.exclusive and had_copy:
                self.invalidations_sent += 1
            if supplied is not None:
                value = supplied
                self.memory[loc] = supplied  # write-back on the same grant
        request.cache.complete_transaction(request, value)
        self._busy = False
        self._pump()

    def final_value(self, location: Location, caches) -> Value:
        """Final memory value, honouring a modified cached copy."""
        for cache in caches:
            line = cache.lines.get(location)
            if line is not None and line.state is LineState.MODIFIED:
                return line.value
        return self.memory[location]


class SnoopyCache:
    """One processor's cache on the snooping bus.

    Presents the same port interface as
    :class:`~repro.sim.cache.CacheController` (``submit(access)``) so
    processors and policies are substrate-agnostic.
    """

    def __init__(self, sim: Simulator, bus: SnoopBus, node_id: str,
                 hit_latency: int = 1, drf1_optimized: bool = False) -> None:
        self.sim = sim
        self.bus = bus
        self.node_id = node_id
        self.hit_latency = hit_latency
        self.drf1_optimized = drf1_optimized
        self.lines: Dict[Location, CacheLine] = {}
        self._pending: Dict[Location, Deque[AccessRecord]] = {}
        self._in_flight: Dict[Location, AccessRecord] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.forwards_stalled = 0  # port-interface parity; unused here
        bus.attach(self)

    # -- port interface -------------------------------------------------------

    def line(self, location: Location) -> CacheLine:
        return self.lines.setdefault(location, CacheLine())

    def submit(self, access: AccessRecord) -> None:
        loc = access.location
        if loc in self._in_flight:
            self._pending.setdefault(loc, deque()).append(access)
            return
        self._dispatch(access)

    def _treated_as_read(self, access: AccessRecord) -> bool:
        if access.kind is OpKind.DATA_READ:
            return True
        return access.kind is OpKind.SYNC_READ and self.drf1_optimized

    def _dispatch(self, access: AccessRecord) -> None:
        line = self.line(access.location)
        if self._treated_as_read(access):
            if line.state is not LineState.INVALID:
                self.hits += 1
                self.sim.after(
                    self.hit_latency, lambda: self._commit_hit(access)
                )
                return
            self._miss(access, exclusive=False)
            return
        if line.state is LineState.MODIFIED:
            self.hits += 1
            self.sim.after(self.hit_latency, lambda: self._commit_hit(access))
            return
        self._miss(access, exclusive=True)

    def _miss(self, access: AccessRecord, exclusive: bool) -> None:
        self.misses += 1
        access.missed = True
        self._in_flight[access.location] = access
        self.bus.request(self, access, exclusive)

    def _commit_hit(self, access: AccessRecord) -> None:
        line = self.line(access.location)
        needs_exclusive = not self._treated_as_read(access)
        if line.state is LineState.INVALID or (
            needs_exclusive and line.state is not LineState.MODIFIED
        ):
            self.submit(access)  # snooped away during the hit latency
            return
        self._perform(access, line)

    def _perform(self, access: AccessRecord, line: CacheLine) -> None:
        value_read: Optional[Value] = line.value if access.has_read else None
        if access.has_write:
            line.value = access.write_value
        access.mark_committed(self.sim.now, value_read)
        access.mark_globally_performed(self.sim.now)

    # -- bus-facing interface ------------------------------------------------

    def snoop(self, location: Location, exclusive: bool) -> Optional[Value]:
        """Another cache's transaction: downgrade/invalidate; supply if M."""
        line = self.lines.get(location)
        if line is None or line.state is LineState.INVALID:
            return None
        supplied = line.value if line.state is LineState.MODIFIED else None
        line.state = LineState.INVALID if exclusive else LineState.SHARED
        return supplied

    def complete_transaction(self, request: _BusRequest, value: Value) -> None:
        """Our transaction was granted atomically: install and perform."""
        access = request.access
        loc = access.location
        del self._in_flight[loc]
        line = self.line(loc)
        line.state = (
            LineState.MODIFIED if request.exclusive else LineState.SHARED
        )
        line.value = value
        self._perform(access, line)
        # Drain queued same-line accesses until one re-enters the bus
        # (consecutive hits must all be dispatched, or they wait forever).
        while True:
            queue = self._pending.get(loc)
            if not queue:
                return
            nxt = queue.popleft()
            if not queue:
                del self._pending[loc]
            self._dispatch(nxt)
            if loc in self._in_flight:
                return
