"""Per-processor cache controller for the directory-based system.

This implements the cache side of the implementation model of Section 5.2:

* MSI states, write-back, invalidation-based;
* all synchronization operations are treated as writes by the coherence
  protocol (they need the line exclusive and are performed on the local
  copy), unless the DRF1 optimization routes read-only synchronization
  through the ordinary read path (Section 6);
* a write commits only when it modifies the copy of the line in the local
  cache; it is globally performed when the directory has collected all
  invalidation acks (or immediately, when the line came from the exclusive
  owner or was uncached -- the paper's counter-decrement rules);
* the paper's **counter** of outstanding accesses: incremented on every
  cache miss, decremented when a read's line arrives, when a write to a
  previously-exclusive (or uncached) line arrives, or when the directory's
  all-acks-collected ack arrives;
* the paper's **reserve bit**: set on the line a synchronization operation
  commits to while the counter is positive; all reserve bits clear when the
  counter reads zero; a request forwarded to a reserved line stalls until
  then (this both enforces condition 5 for remote synchronization requests
  and guarantees a reserved line is never flushed out of the cache);
* the optional bounded-miss window: while any line is reserved, at most
  ``reserved_miss_limit`` misses may be outstanding, bounding how long a
  stalled synchronization request can wait (Section 5.3's fix for the
  growing-counter problem).

Transient races with the unordered network are handled explicitly:

* an ``INVAL`` that overtakes the ``DATA`` reply of an outstanding read
  acknowledges immediately; the late data commits the read (its value was
  bound before the invalidating write serialized) but is not installed;
* a forwarded request that overtakes our own ``DATA_EX`` waits until the
  line arrives, then is serviced (subject to the reserve bit).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.core.types import Location, OpKind, Value
from repro.sim.access import AccessRecord
from repro.sim.events import SimulationError, Simulator
from repro.sim.faults import NULL_INJECTOR
from repro.sim.messages import Message, MsgKind
from repro.sim.network import Interconnect


class LineState(enum.Enum):
    """MSI cache-line states ('modified' doubles as 'exclusive/dirty')."""

    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"


@dataclass
class CacheLine:
    """One cache line: state, data, and the paper's reserve bit."""

    state: LineState = LineState.INVALID
    value: Value = 0
    reserved: bool = False


@dataclass
class _Transaction:
    """An outstanding miss: one per line per cache (queued behind otherwise)."""

    access: AccessRecord
    wants_exclusive: bool
    invalidated_before_data: bool = False
    waiting_write_ack: bool = False
    data_arrived: bool = False
    #: The directory's WRITE_ACK overtook our DATA_EX on the unordered
    #: network; apply it as soon as the data arrives.
    early_write_ack: bool = False


class CacheController:
    """Cache + coherence engine for one processor."""

    def __init__(
        self,
        sim: Simulator,
        network: Interconnect,
        node_id: str,
        directory_id: str,
        hit_latency: int = 1,
        use_reserve_bits: bool = False,
        drf1_optimized: bool = False,
        reserved_miss_limit: Optional[int] = None,
        sync_nack: bool = True,
        nack_retry_delay: int = 8,
        capacity: Optional[int] = None,
        injector=NULL_INJECTOR,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.directory_id = directory_id
        self.hit_latency = hit_latency
        self.use_reserve_bits = use_reserve_bits
        self.drf1_optimized = drf1_optimized
        self.reserved_miss_limit = reserved_miss_limit
        self.sync_nack = sync_nack
        self.nack_retry_delay = nack_retry_delay
        self.capacity = capacity
        self.injector = injector

        self.lines: Dict[Location, CacheLine] = {}
        self._lru_clock = 0
        self._last_use: Dict[Location, int] = {}
        self._evicting: Dict[Location, Optional[AccessRecord]] = {}
        self._capacity_stalled: Deque[AccessRecord] = deque()
        self.evictions = 0
        #: The paper's per-processor counter of outstanding accesses.
        self.counter = 0
        self._transactions: Dict[Location, _Transaction] = {}
        self._queued_accesses: Dict[Location, Deque[AccessRecord]] = {}
        self._stalled_forwards: List[Message] = []
        self._pending_forwards: Dict[Location, List[Message]] = {}
        self._deferred_misses: Deque[AccessRecord] = deque()
        self._misses_while_reserved = 0
        self.reserved_lines: Set[Location] = set()
        # Stats
        self.hits = 0
        self.misses = 0
        self.forwards_stalled = 0

        network.attach(node_id, self._on_message)

    # ------------------------------------------------------------------
    # Processor-facing API
    # ------------------------------------------------------------------

    def submit(self, access: AccessRecord) -> None:
        """Accept one generated access from the processor."""
        loc = access.location
        if loc in self._transactions:
            self._queued_accesses.setdefault(loc, deque()).append(access)
            return
        self._dispatch(access)

    def line(self, location: Location) -> CacheLine:
        """The (possibly invalid) line for ``location``."""
        return self.lines.setdefault(location, CacheLine())

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _treated_as_read(self, access: AccessRecord) -> bool:
        """Reads take the GETS path; sync ops take the write path unless the
        DRF1 optimization routes read-only sync through the read path."""
        if access.kind is OpKind.DATA_READ:
            return True
        if access.kind is OpKind.SYNC_READ and self.drf1_optimized:
            return True
        return False

    def _dispatch(self, access: AccessRecord) -> None:
        loc = access.location
        if loc in self._evicting:
            # The line is mid write-back; local accesses wait for WB_OK and
            # then re-fetch (the paper's synchronous-flush stall).
            self._queued_accesses.setdefault(loc, deque()).append(access)
            return
        line = self.line(loc)
        self._touch(loc)
        if self._treated_as_read(access):
            if line.state in (LineState.SHARED, LineState.MODIFIED):
                self.hits += 1
                self.sim.after(self.hit_latency, lambda: self._commit_read_hit(access))
                return
            self._start_miss(access, wants_exclusive=False)
            return
        # Write path (data writes and all synchronization operations).
        if line.state is LineState.MODIFIED:
            self.hits += 1
            self.sim.after(self.hit_latency, lambda: self._commit_write_hit(access))
            return
        self._start_miss(access, wants_exclusive=True)

    def _start_miss(self, access: AccessRecord, wants_exclusive: bool) -> None:
        if self.capacity is not None and not self._ensure_slot(access):
            return  # parked in _capacity_stalled until a slot frees up
        if self.reserved_miss_limit is not None and self.reserved_lines:
            # Section 5.3: "allowing only a limited number of cache misses
            # to be sent to memory while any line is reserved" -- a *total*
            # bound, so the counter is guaranteed to read zero after a
            # bounded number of increments.  Excess misses wait for the
            # reserve bits to clear.
            if self._misses_while_reserved >= self.reserved_miss_limit:
                self._deferred_misses.append(access)
                return
            self._misses_while_reserved += 1
        loc = access.location
        self.misses += 1
        self.counter += 1
        access.missed = True
        self._transactions[loc] = _Transaction(access, wants_exclusive)
        self.network.send(
            Message(
                MsgKind.GETX if wants_exclusive else MsgKind.GETS,
                src=self.node_id,
                dst=self.directory_id,
                location=loc,
                is_sync=access.is_sync,
                access_uid=access.uid,
            )
        )

    # ------------------------------------------------------------------
    # Capacity / eviction
    # ------------------------------------------------------------------

    def _occupied_slots(self) -> int:
        """Valid lines plus lines an open transaction is about to install."""
        valid = sum(
            1 for line in self.lines.values() if line.state is not LineState.INVALID
        )
        fetching = sum(
            1
            for loc in self._transactions
            if self.line(loc).state is LineState.INVALID
        )
        return valid + fetching

    def _ensure_slot(self, access: AccessRecord) -> bool:
        """Make room for ``access``'s line; False = parked until room frees.

        The paper's corner case lives here: "a line with its reserve bit
        set is never flushed out of a processor cache.  A processor that
        requires such a flush is made to stall until its counter reads
        zero."  Reserved lines (and lines with open transactions) are never
        victims; when no victim exists the miss stalls and is retried when
        the reserve bits clear or a slot frees up.
        """
        if self.line(access.location).state is not LineState.INVALID:
            return True  # upgrades reuse the line's existing slot
        if self._occupied_slots() < self.capacity:
            return True
        victim = self._pick_victim()
        if victim is None:
            self._capacity_stalled.append(access)
            return False
        line = self.lines[victim]
        if line.state is LineState.SHARED:
            # Clean copy: drop silently (the directory's stale sharer record
            # only costs a harmless future INVAL/ack pair).
            line.state = LineState.INVALID
            self.evictions += 1
            return True
        # Dirty copy: write back synchronously; park the access meanwhile.
        self.evictions += 1
        self._evicting[victim] = access
        self.network.send(
            Message(
                MsgKind.WB_EVICT,
                src=self.node_id,
                dst=self.directory_id,
                location=victim,
                value=line.value,
            )
        )
        self._capacity_stalled.append(access)
        return False

    def _evictable_lines(self) -> List[Location]:
        """Valid lines that are safe to evict (unreserved, no open
        transaction, not already mid write-back)."""
        return [
            loc
            for loc, line in self.lines.items()
            if line.state is not LineState.INVALID
            and not line.reserved
            and loc not in self._transactions
            and loc not in self._evicting
        ]

    def _pick_victim(self) -> Optional[Location]:
        """Least-recently-used valid line that is safe to evict."""
        candidates = self._evictable_lines()
        if not candidates:
            return None
        return min(candidates, key=lambda loc: self._last_use.get(loc, 0))

    def _force_evict_one(self) -> None:
        """Fault injection: evict a random safe line through the normal
        eviction machinery (silent drop for clean copies, synchronous
        write-back for dirty ones), stressing the directory's stale-sharer
        and write-back races without breaking any protocol invariant."""
        candidates = sorted(self._evictable_lines())
        if not candidates:
            return
        victim = self.injector.choose(candidates)
        line = self.lines[victim]
        self.injector.count_forced_eviction()
        self.evictions += 1
        if line.state is LineState.SHARED:
            line.state = LineState.INVALID
            return
        self._evicting[victim] = None
        self.network.send(
            Message(
                MsgKind.WB_EVICT,
                src=self.node_id,
                dst=self.directory_id,
                location=victim,
                value=line.value,
            )
        )

    def _touch(self, location: Location) -> None:
        self._lru_clock += 1
        self._last_use[location] = self._lru_clock

    def _on_wb_ok(self, message: Message) -> None:
        """Directory acknowledged our eviction; drop the line (unless it was
        transferred away or re-requested in the meantime)."""
        loc = message.location
        self._evicting.pop(loc, None)
        line = self.line(loc)
        if (
            loc not in self._transactions
            and line.state is not LineState.INVALID
            and not line.reserved
        ):
            line.state = LineState.INVALID
        # Local accesses that arrived during the write-back re-dispatch now
        # (they will miss and re-fetch the line).
        self._drain_queue(loc)
        self._retry_capacity_stalled()

    def _retry_capacity_stalled(self) -> None:
        if not self._capacity_stalled:
            return
        parked, self._capacity_stalled = self._capacity_stalled, deque()
        for access in parked:
            self.submit(access)

    # ------------------------------------------------------------------
    # Hits
    # ------------------------------------------------------------------

    def _commit_read_hit(self, access: AccessRecord) -> None:
        line = self.line(access.location)
        if line.state is LineState.INVALID:
            # The line was invalidated (or transferred away) during the hit
            # latency; the hit has become a miss -- re-issue it.
            self.submit(access)
            return
        access.mark_committed(self.sim.now, line.value)
        access.mark_globally_performed(self.sim.now)

    def _commit_write_hit(self, access: AccessRecord) -> None:
        """Apply a write/sync on a line held MODIFIED: commit == perform."""
        line = self.line(access.location)
        if line.state is not LineState.MODIFIED or access.location in self._evicting:
            # Ownership was forwarded away (or downgraded by a read forward,
            # or the line went into eviction) during the hit latency; retry
            # through the miss path.
            self.submit(access)
            return
        self._apply_and_commit(access)
        access.mark_globally_performed(self.sim.now)

    def _apply_and_commit(self, access: AccessRecord) -> None:
        """Perform the operation on the local (exclusive) copy and commit.

        This is the Section-5.2 commit point: the value modifies the copy of
        the line in the issuing processor's cache.  Afterwards, if this is a
        synchronization operation and the counter is positive, the line's
        reserve bit is set (Section 5.3).
        """
        line = self.line(access.location)
        if line.state is not LineState.MODIFIED:
            raise SimulationError(
                f"{self.node_id}: write applied to non-exclusive line "
                f"{access.location} ({line.state})"
            )
        value_read: Optional[Value] = line.value if access.has_read else None
        if access.has_write:
            line.value = access.write_value
        # The reserve decision samples the counter *at commit*, before the
        # commit callbacks run: a callback may release a gated later access
        # whose miss increments the counter, and that later access must not
        # retroactively reserve this line (it was generated after the sync).
        if access.is_sync and self.use_reserve_bits and self.counter > 0:
            line.reserved = True
            self.reserved_lines.add(access.location)
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    "cache", "reserve", self.node_id, self.sim.now,
                    args={"loc": access.location, "counter": self.counter},
                )
        access.mark_committed(self.sim.now, value_read)

    # ------------------------------------------------------------------
    # Network handler
    # ------------------------------------------------------------------

    def _on_message(self, message: Message) -> None:
        kind = message.kind
        if kind is MsgKind.DATA:
            self._on_data_shared(message)
        elif kind is MsgKind.DATA_EX:
            self._on_data_exclusive(message)
        elif kind is MsgKind.WRITE_ACK:
            self._on_write_ack(message)
        elif kind is MsgKind.INVAL:
            self._on_inval(message)
        elif kind in (MsgKind.GETS_FWD, MsgKind.GETX_FWD):
            self._on_forward(message)
        elif kind is MsgKind.NACK:
            self._on_nack(message)
        elif kind is MsgKind.WB_OK:
            self._on_wb_ok(message)
        else:  # pragma: no cover - protocol is closed
            raise SimulationError(f"{self.node_id} got unexpected {kind}")
        if self.injector.enabled and self.injector.should_force_evict():
            self._force_evict_one()

    def _on_nack(self, message: Message) -> None:
        """Our request bounced off a reserved line: retry after a delay.

        The nacked access stops counting as outstanding until the retry --
        that is what lets this processor's own counter read zero while it
        waits, breaking cross-reservation cycles.
        """
        loc = message.location
        txn = self._transactions.pop(loc, None)
        if txn is None:
            raise SimulationError(f"{self.node_id}: stray NACK for {loc}")
        self._decrement_counter()
        access = txn.access
        access.nacks += 1
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                "cache", "nack", self.node_id, self.sim.now,
                args={"loc": loc, "retries": access.nacks},
            )
        self.sim.after(self.nack_retry_delay, lambda: self._retry(access))

    def _retry(self, access: AccessRecord) -> None:
        if access.location in self._transactions:
            self._queued_accesses.setdefault(
                access.location, deque()
            ).append(access)
        else:
            self._dispatch(access)

    # -- replies to our own misses -----------------------------------------

    def _on_data_shared(self, message: Message) -> None:
        loc = message.location
        txn = self._transactions.get(loc)
        if txn is None or txn.wants_exclusive:
            raise SimulationError(f"{self.node_id}: stray DATA for {loc}")
        txn.data_arrived = True
        access = txn.access
        if not txn.invalidated_before_data:
            line = self.line(loc)
            line.state = LineState.SHARED
            line.value = message.value
        # The counter decrements on receipt of a line for a read request
        # (before the commit events fire: a commit callback may generate the
        # processor's next access, which must observe the drained counter).
        self._decrement_counter()
        access.mark_committed(self.sim.now, message.value)
        access.mark_globally_performed(self.sim.now)
        self._close_transaction(loc)

    def _on_data_exclusive(self, message: Message) -> None:
        loc = message.location
        txn = self._transactions.get(loc)
        if txn is None or not txn.wants_exclusive:
            raise SimulationError(f"{self.node_id}: stray DATA_EX for {loc}")
        txn.data_arrived = True
        line = self.line(loc)
        line.state = LineState.MODIFIED
        line.value = message.value
        if message.acks_pending == 0:
            # Line was uncached or came from the exclusive owner: the write
            # is globally performed on receipt (paper's decrement rule).
            # Decrement *before* performing the operation on the procured
            # line, so reserve-bit decisions and commit-gated accesses see
            # the drained counter -- receipt precedes the perform.
            self._decrement_counter()
            self._apply_and_commit(txn.access)
            txn.access.mark_globally_performed(self.sim.now)
            self._close_transaction(loc)
        elif txn.early_write_ack:
            # The all-acks ack already arrived (it overtook this data):
            # the write both commits and is globally performed now.
            self._decrement_counter()
            self._apply_and_commit(txn.access)
            txn.access.mark_globally_performed(self.sim.now)
            self._close_transaction(loc)
        else:
            self._apply_and_commit(txn.access)
            txn.waiting_write_ack = True
            self._service_pending_forwards(loc)

    def _on_write_ack(self, message: Message) -> None:
        """All invalidation acks collected: the write is globally performed."""
        loc = message.location
        txn = self._transactions.get(loc)
        if txn is None:
            raise SimulationError(f"{self.node_id}: stray WRITE_ACK for {loc}")
        if not txn.data_arrived:
            # WRITE_ACK overtook our DATA_EX; remember it for data arrival.
            txn.early_write_ack = True
            return
        if not txn.waiting_write_ack:
            raise SimulationError(f"{self.node_id}: stray WRITE_ACK for {loc}")
        self._decrement_counter()
        txn.access.mark_globally_performed(self.sim.now)
        self._close_transaction(loc)

    # -- requests from the directory ------------------------------------------

    def _on_inval(self, message: Message) -> None:
        """Invalidate our shared copy; always serviced immediately (this is
        what makes the counter always drain, guaranteeing deadlock freedom).
        """
        loc = message.location
        line = self.line(loc)
        if line.state is LineState.MODIFIED:
            raise SimulationError(f"{self.node_id}: INVAL for MODIFIED line {loc}")
        line.state = LineState.INVALID
        txn = self._transactions.get(loc)
        if txn is not None and not txn.data_arrived:
            # The INVAL overtook the DATA for our outstanding read.
            txn.invalidated_before_data = True
        self.network.send(
            Message(
                MsgKind.INVAL_ACK,
                src=self.node_id,
                dst=message.src,
                location=loc,
                requester=message.requester,
            )
        )
        self._retry_capacity_stalled()  # the invalidation freed a slot

    def _on_forward(self, message: Message) -> None:
        """A remote request routed to us as owner of the line."""
        loc = message.location
        line = self.line(loc)
        if line.state is not LineState.MODIFIED:
            txn = self._transactions.get(loc)
            if txn is not None and not txn.data_arrived:
                # Forward overtook our own DATA_EX; wait for the line.
                self._pending_forwards.setdefault(loc, []).append(message)
                return
            raise SimulationError(
                f"{self.node_id}: forward for line {loc} we do not own"
            )
        if line.reserved:
            # Section 5.3, condition 5: requests to a reserved line cannot
            # be serviced until the counter reads zero.  Two variants, both
            # from the paper: queue the request locally ("stalled until the
            # counter reads zero"), or negative-ack it so the requester
            # retries.  Queueing can deadlock when two processors reserve
            # lines and then synchronize on each other's reserved location
            # (each counter is kept positive by the sync stalled at the
            # other); the NACK variant breaks the cycle because a nacked
            # request stops being outstanding until its retry, letting the
            # counters read zero.  NACK is therefore the default.
            self.forwards_stalled += 1
            if self.sync_nack:
                self.network.send(
                    Message(
                        MsgKind.NACK,
                        src=self.node_id,
                        dst=message.requester,
                        location=loc,
                        is_sync=message.is_sync,
                    )
                )
                self.network.send(
                    Message(
                        MsgKind.NACK_DONE,
                        src=self.node_id,
                        dst=self.directory_id,
                        location=loc,
                        requester=message.requester,
                    )
                )
            else:
                self._stalled_forwards.append(message)
            return
        self._service_forward(message)

    def _service_forward(self, message: Message) -> None:
        loc = message.location
        line = self.line(loc)
        assert line.state is LineState.MODIFIED
        if message.kind is MsgKind.GETS_FWD:
            line.state = LineState.SHARED
            self.network.send(
                Message(
                    MsgKind.DATA,
                    src=self.node_id,
                    dst=message.requester,
                    location=loc,
                    value=line.value,
                )
            )
            self.network.send(
                Message(
                    MsgKind.WB_DATA,
                    src=self.node_id,
                    dst=self.directory_id,
                    location=loc,
                    value=line.value,
                    requester=message.requester,
                )
            )
        else:  # GETX_FWD
            value = line.value
            line.state = LineState.INVALID
            line.reserved = False
            self.network.send(
                Message(
                    MsgKind.DATA_EX,
                    src=self.node_id,
                    dst=message.requester,
                    location=loc,
                    value=value,
                    acks_pending=0,
                )
            )
            self.network.send(
                Message(
                    MsgKind.TRANSFER,
                    src=self.node_id,
                    dst=self.directory_id,
                    location=loc,
                    requester=message.requester,
                )
            )

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _decrement_counter(self) -> None:
        if self.injector.enabled:
            delay = self.injector.counter_decrement_delay()
            if delay:
                # Fault: the decrement takes effect late.  Reserve bits stay
                # set longer and counter-gated accesses wait longer, but the
                # injector bounds the delay below the NACK retry delay so the
                # counter still reads zero inside every NACK/retry window.
                self.sim.after(delay, self._do_decrement)
                return
        self._do_decrement()

    def _do_decrement(self) -> None:
        self.counter -= 1
        if self.counter < 0:
            raise SimulationError(f"{self.node_id}: counter went negative")
        if self.counter == 0:
            self._maybe_clear_reserve_bits()
        self._release_deferred_misses()

    def _maybe_clear_reserve_bits(self) -> None:
        if self.injector.enabled:
            delay = self.injector.reserve_clear_delay()
            if delay:
                # Fault: the all-bits-clear happens late.  Guarded on entry:
                # a miss issued meanwhile re-raises the counter, and the
                # paper only clears reserve bits while the counter reads 0.
                self.sim.after(delay, self._delayed_clear_reserve_bits)
                return
        self._clear_reserve_bits()

    def _delayed_clear_reserve_bits(self) -> None:
        if self.counter == 0:
            self._clear_reserve_bits()
            # The decrement that scheduled this clear already tried to
            # release deferred misses and found the reserve window full;
            # now that the bits are clear they must be re-released.
            self._release_deferred_misses()

    def _clear_reserve_bits(self) -> None:
        """All reserve bits are reset when the counter reads zero (paper)."""
        for loc in self.reserved_lines:
            self.lines[loc].reserved = False
        self.reserved_lines.clear()
        self._misses_while_reserved = 0
        if self._stalled_forwards:
            stalled, self._stalled_forwards = self._stalled_forwards, []
            for message in stalled:
                self._on_forward(message)
        self._retry_capacity_stalled()

    def _release_deferred_misses(self) -> None:
        while self._deferred_misses:
            if (
                self.reserved_miss_limit is not None
                and self.reserved_lines
                and self._misses_while_reserved >= self.reserved_miss_limit
            ):
                return
            access = self._deferred_misses.popleft()
            # The line may have arrived meanwhile; re-dispatch from scratch.
            if access.location in self._transactions:
                self._queued_accesses.setdefault(
                    access.location, deque()
                ).append(access)
            else:
                self._dispatch(access)

    def _close_transaction(self, loc: Location) -> None:
        self._transactions.pop(loc, None)
        self._service_pending_forwards(loc)
        self._drain_queue(loc)
        self._retry_capacity_stalled()  # the closed line is now evictable

    def _drain_queue(self, loc: Location) -> None:
        """Dispatch queued same-line accesses until one opens a transaction.

        Consecutive queued accesses can all be hits once the line arrived;
        each must be dispatched (stopping only at a new miss or an eviction
        in progress), or the remainder would wait forever.
        """
        while True:
            queued = self._queued_accesses.get(loc)
            if not queued:
                return
            access = queued.popleft()
            if not queued:
                del self._queued_accesses[loc]
            self._dispatch(access)
            if loc in self._transactions or loc in self._evicting:
                return

    def _service_pending_forwards(self, loc: Location) -> None:
        """Service forwards that overtook our data, now that the line is here."""
        pending = self._pending_forwards.pop(loc, None)
        if not pending:
            return
        for message in pending:
            self._on_forward(message)
