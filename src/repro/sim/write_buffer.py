"""A processor-side write buffer in front of the cache controller.

Figure 1 notes that a bus-based cache-coherent system violates sequential
consistency "if the accesses of a processor are issued out-of-order, or if
reads are allowed to pass writes in write buffers": the FIFO bus otherwise
serializes the miss requests in issue order.  This component provides that
read-passes-write behaviour for the cache substrate: data writes are
delayed in a FIFO buffer before reaching the cache, while reads bypass the
buffer (with store-to-load forwarding for the processor's own buffered
writes, preserving uniprocessor semantics).

Only the :class:`~repro.hw.relaxed.RelaxedPolicy` strawman uses this
(``buffers_cache_writes``); the weakly ordered implementations get their
overlap from non-blocking writes at the cache, which keeps the paper's
counter/reserve-bit bookkeeping exact.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.core.types import Location, OpKind, Value
from repro.sim.access import AccessRecord
from repro.sim.cache import CacheController
from repro.sim.events import Simulator


class BufferedCachePort:
    """FIFO write buffer that reads may bypass, draining into a cache."""

    def __init__(
        self, sim: Simulator, cache: CacheController, drain_delay: int = 3
    ) -> None:
        self.sim = sim
        self.cache = cache
        self.drain_delay = drain_delay
        self._buffer: Deque[AccessRecord] = deque()
        self._draining = False

    def submit(self, access: AccessRecord) -> None:
        """Accept a generated access; buffer data writes, bypass the rest."""
        if access.kind is OpKind.DATA_WRITE:
            access.buffered = True
            self._buffer.append(access)
            self._schedule_drain()
            return
        if access.has_read and not access.has_write:
            forwarded = self._forwarded_value(access.location)
            if forwarded is not None:
                access.mark_committed(self.sim.now, forwarded)
                access.mark_globally_performed(self.sim.now)
                return
        self.cache.submit(access)

    def _forwarded_value(self, location: Location) -> Optional[Value]:
        for access in reversed(self._buffer):
            if access.location == location:
                return access.write_value
        return None

    def _schedule_drain(self) -> None:
        if self._draining or not self._buffer:
            return
        self._draining = True
        self.sim.after(self.drain_delay, self._drain_one)

    def _drain_one(self) -> None:
        self._draining = False
        if not self._buffer:
            return
        self.cache.submit(self._buffer.popleft())
        self._schedule_drain()
