"""Discrete-event simulation kernel.

A minimal calendar queue: callbacks scheduled at absolute or relative
simulated times, executed in (time, insertion) order.  All hardware
components share one :class:`Simulator` instance; all nondeterminism in a
run comes from seeded RNGs owned by components (the kernel itself is
deterministic), so a run is reproducible from its configuration and seed.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.obs.tracer import NULL_TRACER, Tracer


class SimulationError(RuntimeError):
    """Raised for kernel-level failures (negative delays, runaway runs)."""


class Simulator:
    """Event queue with a monotonically advancing clock.

    The simulator also carries the run's :class:`~repro.obs.tracer.Tracer`
    so every hardware component reaches it through its ``sim`` reference;
    the default is the zero-cost null tracer, and instrumentation sites
    gate on ``tracer.enabled`` before building any event.
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._events_executed = 0
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER

    @property
    def now(self) -> int:
        """Current simulated time in cycles."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for runaway detection/stats)."""
        return self._events_executed

    def at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self._now})")
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.at(self._now + delay, callback)

    def pending(self) -> int:
        """Number of queued events."""
        return len(self._queue)

    def run(
        self,
        until: Optional[int] = None,
        max_events: int = 50_000_000,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Drain the event queue.

        Stops when the queue empties, the clock passes ``until``, the
        ``stop_when`` predicate holds between events, or ``max_events``
        fire (raising, to catch runaway simulations).
        """
        while self._queue:
            if stop_when is not None and stop_when():
                return
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                return
            heapq.heappop(self._queue)
            self._now = time
            callback()
            self._events_executed += 1
            if self._events_executed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; simulation is likely stuck"
                )
