"""Process migration: re-scheduling a thread onto another processor.

Section 5.1: "Re-scheduling of a process on another processor is possible
if it can be ensured that before a context switch, all previous reads of
the process have returned their values and all previous writes have been
globally performed."  Footnote 3 gives the Section-5.3 realization: "a
processor is also required to stall on a context switch until its counter
reads zero."

:func:`run_with_migration` runs a program on a system with one spare
processor; after a chosen thread completes its N-th memory access, its
architectural state is handed to the spare, subject to the paper's
context-switch condition (every access generated so far committed, and
every write globally performed -- which is exactly "counter reads zero"
plus returned reads in the cache implementation).  The thread then resumes
on the spare processor with a cold cache.

The migrated thread keeps its original processor *identity* (its accesses
keep their program-order stream and the result is reported under the
original index); only the hardware resources change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.execution import Result
from repro.machine.program import Program
from repro.sim.access import AccessRecord
from repro.sim.processor import Processor
from repro.sim.system import (
    MachineRun,
    SimulationDeadlock,
    SystemConfig,
    _package_run,
    build_interconnect,
)


@dataclass(frozen=True)
class MigrationPlan:
    """Move ``thread`` to the spare processor after ``after_accesses``."""

    thread: int
    after_accesses: int


class _MigratingProcessor(Processor):
    """A processor that hands its thread over after N completed accesses."""

    def __init__(self, *args, plan: Optional[MigrationPlan] = None,
                 on_migrate=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._plan = plan
        self._on_migrate = on_migrate
        self._migrated = False
        self._completed_accesses = 0

    def _finish_instruction(self, access: AccessRecord) -> None:
        request = self._current_request
        self._current_request = None
        value = access.value_read if access.has_read else None
        from repro.machine.interpreter import complete

        complete(self.code, self.state, request, value)
        self._completed_accesses += 1
        if (
            self._plan is not None
            and not self._migrated
            and self._completed_accesses >= self._plan.after_accesses
        ):
            self._migrated = True
            self._await_context_switch()
            return
        self._resume()

    def _await_context_switch(self) -> None:
        """The paper's condition: previous reads returned, writes globally
        performed (the counter reads zero), before the switch."""
        pending = [
            a
            for a in self.accesses
            if (a.has_write and not a.globally_performed)
            or (a.has_read and not a.committed)
        ]
        remaining = {"count": len(pending)}

        def one_done(_a: AccessRecord) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                self._on_migrate(self)

        if not pending:
            self._on_migrate(self)
            return
        for access in pending:
            if access.has_write:
                access.on_globally_performed(one_done)
            else:
                access.on_commit(one_done)


class _ResumedProcessor(Processor):
    """The spare processor continuing a migrated thread's state."""

    def adopt(self, donor: Processor) -> None:
        """Take over the donor's architectural and bookkeeping state."""
        self.state = donor.state
        self.accesses = donor.accesses
        self.last_generated = donor.last_generated
        self._po_index = donor._po_index
        self.stats.gate_stall_cycles = donor.stats.gate_stall_cycles
        self.stats.block_stall_cycles = donor.stats.block_stall_cycles
        self.stats.local_instructions = donor.stats.local_instructions
        self.stats.accesses_generated = donor.stats.accesses_generated
        self.sim.after(0, self._resume)


def run_with_migration(
    program: Program,
    policy,
    plan: MigrationPlan,
    config: Optional[SystemConfig] = None,
) -> MachineRun:
    """Run ``program`` with one thread migrating to a spare processor."""
    from repro.sim.cache import CacheController
    from repro.sim.directory import Directory
    from repro.sim.events import Simulator
    from repro.sim.memory import CachelessPort, MemoryModule

    config = config or SystemConfig()
    if not (0 <= plan.thread < program.num_procs):
        raise ValueError(f"no thread {plan.thread} in {program.name!r}")
    if policy.requires_caches and not config.caches:
        raise ValueError(f"policy {policy.name!r} needs caches")
    if config.coherence == "snoop":
        raise ValueError(
            "migration is implemented for the directory and cacheless "
            "substrates; the snooping bus does not need it for the paper's "
            "claims"
        )

    sim = Simulator()
    network = build_interconnect(sim, config)
    spare_index = program.num_procs  # one extra hardware context

    directory = None
    memory_module = None
    caches: List = []
    ports: List = []
    if config.caches:
        directory = Directory(
            sim, network, "dir", dict(program.initial_memory),
            latency=config.mem_latency,
        )
        for proc in range(program.num_procs + 1):
            cache = CacheController(
                sim,
                network,
                node_id=f"proc{proc}",
                directory_id="dir",
                hit_latency=config.hit_latency,
                use_reserve_bits=policy.use_reserve_bits,
                drf1_optimized=policy.drf1_optimized,
                sync_nack=config.remote_sync_nack,
                nack_retry_delay=config.nack_retry_delay,
                capacity=config.cache_capacity,
            )
            caches.append(cache)
            ports.append(cache)
    else:
        memory_module = MemoryModule(
            sim, network, "mem", dict(program.initial_memory),
            latency=config.mem_latency,
        )
        for proc in range(program.num_procs + 1):
            ports.append(
                CachelessPort(
                    sim, network, f"proc{proc}", "mem",
                    write_buffer=config.write_buffer,
                    drain_delay=config.wb_drain_delay,
                )
            )

    uid_counter = {"next": 0}

    def allocate_uid() -> int:
        uid = uid_counter["next"]
        uid_counter["next"] += 1
        return uid

    halted = {"count": 0}

    def on_halt(_p) -> None:
        halted["count"] += 1

    processors: List[Processor] = []
    spare = _ResumedProcessor(
        sim, plan.thread, program.threads[plan.thread], policy,
        ports[spare_index], allocate_uid, on_halt,
        local_cycle=config.local_cycle,
    )

    def on_migrate(donor: Processor) -> None:
        spare.adopt(donor)

    for proc in range(program.num_procs):
        if proc == plan.thread:
            processor = _MigratingProcessor(
                sim, proc, program.threads[proc], policy, ports[proc],
                allocate_uid, on_halt, local_cycle=config.local_cycle,
                plan=plan, on_migrate=on_migrate,
            )
        else:
            processor = Processor(
                sim, proc, program.threads[proc], policy, ports[proc],
                allocate_uid, on_halt, local_cycle=config.local_cycle,
            )
        processors.append(processor)
        processor.start()

    sim.run(max_events=config.max_events)
    if halted["count"] != program.num_procs:
        raise SimulationDeadlock(
            f"not all threads halted in migrated run of {program.name!r}"
        )

    # Report under the original thread identities: the migrated thread's
    # accesses live partly on the donor, partly on the spare, but both
    # share one accesses list (adopted), so the donor list is complete.
    reporters = list(processors)
    if not processors[plan.thread].halted:
        # The donor never halts itself; the spare carries the halt.
        reporters[plan.thread] = spare
    return _package_run(
        program, policy, config, sim, network, reporters,
        directory, memory_module, caches,
    )
