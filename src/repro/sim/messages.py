"""Coherence and memory messages exchanged over the interconnect.

The message vocabulary covers both system families:

* cacheless systems: ``MEM_READ`` / ``MEM_WRITE`` / ``MEM_RMW`` requests to a
  memory module and their ``MEM_DATA`` / ``MEM_WRITE_ACK`` replies;
* cache-coherent systems: the directory protocol of Section 5.2 --
  ``GETS``/``GETX`` requests, ``DATA``/``DATA_EX`` replies (data is
  forwarded to the requester in parallel with invalidations),
  ``INVAL``/``INVAL_ACK``, the directory's all-acks-collected ``WRITE_ACK``,
  owner forwarding (``GETS_FWD``/``GETX_FWD``) with ``WB_DATA``/``TRANSFER``
  notifications back to the directory.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.core.types import Location, Value

_message_ids = itertools.count()


class MsgKind(enum.Enum):
    """Every message type in the system."""

    # Cacheless memory-module traffic
    MEM_READ = "mem_read"
    MEM_WRITE = "mem_write"
    MEM_RMW = "mem_rmw"
    MEM_DATA = "mem_data"
    MEM_WRITE_ACK = "mem_write_ack"

    # Directory protocol: processor -> directory
    GETS = "gets"
    GETX = "getx"

    # Directory -> requester.  An exclusive reply always carries the data,
    # even for nominal upgrades: capacity eviction drops shared copies
    # silently, so the directory's sharer set over-approximates and a
    # data-less upgrade grant would be unsound.
    DATA = "data"            # shared copy
    DATA_EX = "data_ex"      # exclusive copy (possibly with invals pending)
    WRITE_ACK = "write_ack"  # all invalidation acks collected

    # Directory -> sharer caches
    INVAL = "inval"

    # Sharer caches -> directory
    INVAL_ACK = "inval_ack"

    # Directory -> owner cache (request forwarding)
    GETS_FWD = "gets_fwd"
    GETX_FWD = "getx_fwd"

    # Owner cache -> directory (after servicing a forward)
    WB_DATA = "wb_data"      # downgrade M->S, carries data back to memory
    TRANSFER = "transfer"    # ownership moved directly to the requester

    # Reserve-bit negative acknowledgement (Section 5.3's retry option):
    # owner refuses a forward for a reserved line; the requester retries.
    NACK = "nack"            # owner -> requester: try again later
    NACK_DONE = "nack_done"  # owner -> directory: close the transaction

    # Capacity eviction (write-back of a dirty victim, synchronous so the
    # directory never forwards to a cache that silently dropped the line).
    WB_EVICT = "wb_evict"    # cache -> directory: evicting a MODIFIED line
    WB_OK = "wb_ok"          # directory -> cache: eviction acknowledged


@dataclass
class Message:
    """One interconnect message.

    Attributes:
        kind: Message type.
        src: Sending node id.
        dst: Destination node id.
        location: Memory location (cache line) concerned.
        value: Data payload where applicable.
        requester: Original requesting node for forwarded requests.
        acks_pending: For ``DATA_EX``: invalidation acks the
            directory will collect before sending ``WRITE_ACK``.
        is_sync: Whether the originating access is a synchronization
            operation (carried so an owning cache can apply the paper's
            reserve-bit stall to remote synchronization requests).
        access_uid: Uid of the originating access, for tracing.
        msg_id: Unique id, for deterministic tie-breaking and debugging.
    """

    kind: MsgKind
    src: str
    dst: str
    location: Location
    value: Optional[Value] = None
    requester: Optional[str] = None
    acks_pending: int = 0
    is_sync: bool = False
    access_uid: Optional[int] = None
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" val={self.value}" if self.value is not None else ""
        return f"{self.kind.value}({self.src}->{self.dst}, {self.location}{extra})"
