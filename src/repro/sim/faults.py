"""Deterministic fault injection for the simulated memory system.

The paper's correctness argument (Appendix A, the conditions of Section
5.1) assumes a well-behaved substrate: every message is eventually
delivered, every counter eventually drains, every reserved line is
eventually unreserved.  This module stresses those assumptions *without*
giving up reproducibility: a :class:`FaultPlan` is a pure description of
which faults to inject, a :class:`FaultInjector` turns it into seeded
decisions, and every decision is drawn from one ``random.Random`` in
simulator event order -- so a run under a fault plan is exactly as
deterministic as a fault-free run.

Fault families
--------------

Interconnect (``network.py``):

* **delay jitter** -- extra per-message delivery delay;
* **bounded reordering** -- a random subset of messages is held for a
  bounded extra window, reordering them against later traffic (on the
  bus this deliberately breaks the FIFO guarantee -- the directory
  protocol must already tolerate arbitrary order);
* **duplication** -- a message is delivered twice; the interconnect's
  idempotent-delivery filter (keyed by ``msg_id``) suppresses the copy,
  modelling an at-least-once transport behind exactly-once endpoints;
* **transient NACK-with-retry** -- the transport refuses a message a
  bounded number of times; each refusal costs a retry delay (modelled as
  retransmission by the interconnect, so the protocol state machines are
  untouched);
* **drops** -- a message is *never* delivered.  This is the one
  delivery-violating fault: plans with ``drop_prob > 0`` are expected to
  be flagged by the liveness watchdog, not survived.

Cache (``cache.py``):

* **forced evictions** -- a random valid, unreserved, transaction-free
  line is evicted (SHARED copies drop silently, MODIFIED copies write
  back synchronously), exercising the directory's stale-state races;
* **delayed counter decrement** -- the paper's per-processor counter of
  outstanding accesses decrements late, keeping reserve bits set longer;
* **delayed reserve-bit clearing** -- the all-bits-clear at counter zero
  happens late (guarded: it only fires if the counter still reads zero).

Directory (``directory.py``) and memory module: **service jitter** --
extra cycles before a request is processed.

Processor (``processor.py``): **issue jitter** -- extra cycles before an
access reaches its generation gate.

Liveness constraint
-------------------

Delivery-preserving plans must keep ``counter_decrement_delay +
reserve_clear_delay`` strictly below the cache's NACK retry delay
(default 8): the Section-5.3 deadlock-freedom argument needs the counter
to *read zero* in the window between a NACK's decrement and the retry's
re-increment.  :meth:`FaultPlan.validate` enforces this.

Zero-cost null path
-------------------

Every hooked component holds an injector and asks ``injector.enabled``
(one attribute load) before doing anything; the shared
:data:`NULL_INJECTOR` answers ``False`` forever, so fault-free runs pay
one branch per hook site and allocate nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple


class FaultConfigError(ValueError):
    """An invalid or liveness-unsafe fault plan."""


#: The cache's default NACK retry delay; delivery-preserving plans must
#: keep their counter/reserve delays below this (see module docstring).
_NACK_RETRY_DELAY = 8


@dataclass(frozen=True)
class FaultPlan:
    """A pure, picklable, hashable description of the faults to inject.

    Attributes:
        name: Registry/reporting name.
        seed: Base seed for the injector's RNG (combined with the run's
            nondeterminism seed, so the same plan perturbs different
            seeds differently but each run stays reproducible).
        delay_jitter: Max extra delivery delay per message (uniform).
        reorder_prob / reorder_window: Probability that a message is held
            for an extra uniform ``[1, reorder_window]`` cycles.
        duplicate_prob: Probability a message is delivered twice (the
            duplicate is suppressed by the endpoint filter).
        transport_nack_prob / transport_retry_delay /
        transport_max_retries: Transient transport refusals; each costs
            ``transport_retry_delay`` cycles, at most
            ``transport_max_retries`` per message (bounded, so delivery
            is preserved).
        drop_prob: Probability a message is silently dropped --
            **delivery violating**; ``drop_limit`` caps the total drops.
        drop_kinds: If set, only messages whose ``kind.value`` is listed
            are drop candidates (lets a plan black-hole e.g. only acks).
        dir_service_jitter: Max extra cycles before the directory (or
            memory module) services a request.
        evict_prob: Per-handled-message probability of force-evicting a
            random evictable cache line.
        counter_decrement_delay: Max extra cycles before a counter
            decrement takes effect.
        reserve_clear_delay: Max extra cycles before reserve bits clear
            once the counter reads zero.
        issue_jitter: Max extra cycles before an access reaches its
            generation gate.
    """

    name: str = "baseline"
    seed: int = 0
    delay_jitter: int = 0
    reorder_prob: float = 0.0
    reorder_window: int = 0
    duplicate_prob: float = 0.0
    transport_nack_prob: float = 0.0
    transport_retry_delay: int = 6
    transport_max_retries: int = 2
    drop_prob: float = 0.0
    drop_limit: Optional[int] = None
    drop_kinds: Optional[Tuple[str, ...]] = None
    dir_service_jitter: int = 0
    evict_prob: float = 0.0
    counter_decrement_delay: int = 0
    reserve_clear_delay: int = 0
    issue_jitter: int = 0

    @property
    def delivery_preserving(self) -> bool:
        """True when every accepted message is eventually delivered."""
        return self.drop_prob == 0.0

    @property
    def injects_anything(self) -> bool:
        """False for the do-nothing (baseline) plan."""
        return any(
            (
                self.delay_jitter,
                self.reorder_prob,
                self.duplicate_prob,
                self.transport_nack_prob,
                self.drop_prob,
                self.dir_service_jitter,
                self.evict_prob,
                self.counter_decrement_delay,
                self.reserve_clear_delay,
                self.issue_jitter,
            )
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """Copy of this plan with a different base seed."""
        return replace(self, seed=seed)

    def validate(self) -> "FaultPlan":
        """Raise :class:`FaultConfigError` on nonsensical or unsafe knobs."""
        for field_name in (
            "delay_jitter", "reorder_window", "transport_retry_delay",
            "transport_max_retries", "dir_service_jitter",
            "counter_decrement_delay", "reserve_clear_delay", "issue_jitter",
        ):
            if getattr(self, field_name) < 0:
                raise FaultConfigError(f"{self.name}: {field_name} must be >= 0")
        for field_name in (
            "reorder_prob", "duplicate_prob", "transport_nack_prob", "drop_prob",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise FaultConfigError(
                    f"{self.name}: {field_name} must be a probability"
                )
        if self.reorder_prob and self.reorder_window < 1:
            raise FaultConfigError(
                f"{self.name}: reorder_prob needs reorder_window >= 1"
            )
        if (
            self.delivery_preserving
            and self.counter_decrement_delay + self.reserve_clear_delay
            >= _NACK_RETRY_DELAY
        ):
            raise FaultConfigError(
                f"{self.name}: counter_decrement_delay + reserve_clear_delay "
                f"must stay below the NACK retry delay ({_NACK_RETRY_DELAY}) "
                "or cross-reservation NACK loops can livelock"
            )
        return self


class NullInjector:
    """The do-nothing injector; hooks ask ``enabled`` and skip everything."""

    enabled: bool = False

    def snapshot(self) -> Dict[str, int]:
        """No faults, no stats."""
        return {}


#: Shared do-nothing injector; components default to it so fault
#: injection is opt-in per run and costs one ``enabled`` check when off.
NULL_INJECTOR = NullInjector()


class FaultInjector:
    """Seeded fault decisions for one hardware run.

    All decisions come from a single ``random.Random`` seeded from
    ``(plan.seed, run_seed)``; because the simulator executes events in a
    deterministic order, the decision sequence -- and therefore the whole
    faulted run -- is reproducible from the configuration alone.
    """

    enabled: bool = True

    def __init__(self, plan: FaultPlan, run_seed: int = 0) -> None:
        plan.validate()
        self.plan = plan
        self._rng = random.Random(
            ((plan.seed + 0x9E3779B1) * 0x85EBCA6B) ^ (run_seed * 0xC2B2AE35)
        )
        self.stats: Dict[str, int] = {}

    def _count(self, key: str, n: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + n

    def snapshot(self) -> Dict[str, int]:
        """Copy of the per-run fault counters (sorted keys for reports)."""
        return {key: self.stats[key] for key in sorted(self.stats)}

    # -- interconnect hooks ------------------------------------------------

    def delivery_times(self, message, arrival: int) -> List[int]:
        """Delivery time(s) for a message scheduled to arrive at ``arrival``.

        Empty list = dropped; more than one entry = duplicated (endpoint
        filter suppresses the extras).
        """
        plan = self.plan
        rng = self._rng
        if plan.drop_prob and rng.random() < plan.drop_prob:
            eligible = (
                plan.drop_kinds is None
                or message.kind.value in plan.drop_kinds
            )
            under_limit = (
                plan.drop_limit is None
                or self.stats.get("messages_dropped", 0) < plan.drop_limit
            )
            if eligible and under_limit:
                self._count("messages_dropped")
                return []
        when = arrival
        if plan.delay_jitter:
            extra = rng.randint(0, plan.delay_jitter)
            if extra:
                self._count("delay_jitter_cycles", extra)
                when += extra
        if plan.reorder_prob and rng.random() < plan.reorder_prob:
            self._count("messages_reordered")
            when += rng.randint(1, plan.reorder_window)
        if plan.transport_nack_prob:
            retries = 0
            while (
                retries < plan.transport_max_retries
                and rng.random() < plan.transport_nack_prob
            ):
                retries += 1
            if retries:
                self._count("transport_retries", retries)
                when += retries * plan.transport_retry_delay
        times = [when]
        if plan.duplicate_prob and rng.random() < plan.duplicate_prob:
            self._count("messages_duplicated")
            times.append(when + rng.randint(1, max(1, plan.delay_jitter or 4)))
        return times

    def count_duplicate_suppressed(self) -> None:
        """The endpoint filter swallowed a duplicate delivery."""
        self._count("duplicates_suppressed")

    # -- directory / memory-module hooks -----------------------------------

    def service_delay(self) -> int:
        """Extra cycles before a directory/memory request is serviced."""
        jitter = self.plan.dir_service_jitter
        if not jitter:
            return 0
        extra = self._rng.randint(0, jitter)
        if extra:
            self._count("service_jitter_cycles", extra)
        return extra

    # -- cache hooks -------------------------------------------------------

    def should_force_evict(self) -> bool:
        """Whether to force-evict a line after the current message."""
        return bool(
            self.plan.evict_prob and self._rng.random() < self.plan.evict_prob
        )

    def count_forced_eviction(self) -> None:
        self._count("forced_evictions")

    def choose(self, candidates: Sequence):
        """Deterministically pick one of ``candidates`` (pre-sorted)."""
        return candidates[self._rng.randrange(len(candidates))]

    def counter_decrement_delay(self) -> int:
        """Extra cycles before a counter decrement takes effect."""
        bound = self.plan.counter_decrement_delay
        if not bound:
            return 0
        extra = self._rng.randint(0, bound)
        if extra:
            self._count("counter_decrements_delayed")
        return extra

    def reserve_clear_delay(self) -> int:
        """Extra cycles before reserve bits clear at counter zero."""
        bound = self.plan.reserve_clear_delay
        if not bound:
            return 0
        extra = self._rng.randint(0, bound)
        if extra:
            self._count("reserve_clears_delayed")
        return extra

    # -- processor hooks ---------------------------------------------------

    def issue_delay(self) -> int:
        """Extra cycles before an access reaches its generation gate."""
        jitter = self.plan.issue_jitter
        if not jitter:
            return 0
        extra = self._rng.randint(0, jitter)
        if extra:
            self._count("issue_jitter_cycles", extra)
        return extra


def build_injector(
    plan: Optional[FaultPlan], run_seed: int = 0
):
    """The injector for ``plan`` (the shared null injector for ``None``)."""
    if plan is None or not plan.injects_anything:
        return NULL_INJECTOR
    return FaultInjector(plan, run_seed)


#: The delivery-preserving fault catalog: under every one of these, every
#: policy's Definition-2 verdict must match the fault-free sweep (the E12
#: invariance experiment; ``python -m repro chaos``).
DELIVERY_PRESERVING_PLANS: Dict[str, FaultPlan] = {
    plan.name: plan
    for plan in (
        FaultPlan(name="jitter-light", delay_jitter=3),
        FaultPlan(name="jitter-heavy", delay_jitter=12),
        FaultPlan(name="reorder", reorder_prob=0.3, reorder_window=9),
        FaultPlan(name="duplicate", duplicate_prob=0.25, delay_jitter=2),
        FaultPlan(
            name="transport-nack",
            transport_nack_prob=0.3,
            transport_retry_delay=6,
            transport_max_retries=2,
        ),
        FaultPlan(name="evict-storm", evict_prob=0.2),
        FaultPlan(name="slow-counter", counter_decrement_delay=2),
        FaultPlan(name="slow-reserve-clear", reserve_clear_delay=3),
        FaultPlan(name="dir-jitter", dir_service_jitter=5),
        FaultPlan(name="issue-jitter", issue_jitter=4),
        FaultPlan(
            name="kitchen-sink",
            delay_jitter=6,
            reorder_prob=0.2,
            reorder_window=6,
            duplicate_prob=0.1,
            transport_nack_prob=0.15,
            evict_prob=0.1,
            counter_decrement_delay=1,
            reserve_clear_delay=2,
            dir_service_jitter=3,
            issue_jitter=2,
        ),
    )
}

#: Delivery-violating plans: the watchdog (or the deadlock detector) must
#: terminate these with a per-processor stall-cause diagnosis -- never a
#: hang, never a traceback.
DELIVERY_VIOLATING_PLANS: Dict[str, FaultPlan] = {
    plan.name: plan
    for plan in (
        FaultPlan(name="drop-all", drop_prob=1.0),
        FaultPlan(
            name="blackhole-acks",
            drop_prob=0.5,
            drop_kinds=(
                "write_ack", "inval_ack", "wb_ok", "nack_done",
                "mem_write_ack", "mem_data", "data", "data_ex",
            ),
        ),
    )
}

#: Every named plan the CLI accepts for ``--faults``.
FAULT_PLANS: Dict[str, FaultPlan] = {
    **DELIVERY_PRESERVING_PLANS,
    **DELIVERY_VIOLATING_PLANS,
}

for _plan in FAULT_PLANS.values():
    _plan.validate()
