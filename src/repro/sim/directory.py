"""Directory controller + memory for the cache-coherent system.

A straightforward directory-based write-back protocol in the style the
paper assumes (Section 5.2, citing [ASH88]):

* the directory tracks, per line, either a set of sharers or a single
  exclusive owner;
* a write miss on a shared line sends invalidations to all sharers, and the
  requested line is **forwarded to the requester in parallel** with those
  invalidations (the paper's explicit protocol feature);
* each invalidated cache acks to the directory; when all acks are in, the
  directory sends its ack (``WRITE_ACK``) to the writing cache -- that is
  the write's globally-performed point;
* requests for a line owned exclusively are forwarded to the owner cache,
  which supplies data directly to the requester (and may stall the forward
  on a reserved line, per Section 5.3);
* transactions are serialized per line: a request arriving while the line
  has an open transaction queues at the directory.  This serialization is
  what gives the paper's conditions 2 and 3 (per-location total orders of
  writes and of synchronization operations, observed in commit order).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Set

from repro.core.types import Location, Value
from repro.sim.events import SimulationError, Simulator
from repro.sim.faults import NULL_INJECTOR
from repro.sim.messages import Message, MsgKind
from repro.sim.network import Interconnect


@dataclass
class DirectoryEntry:
    """Per-line directory state."""

    owner: Optional[str] = None
    sharers: Set[str] = field(default_factory=set)


@dataclass
class _DirTransaction:
    """An open per-line transaction at the directory."""

    request: Message
    acks_expected: int = 0
    waiting_owner: bool = False


class Directory:
    """The directory controller; also holds the memory image."""

    def __init__(
        self,
        sim: Simulator,
        network: Interconnect,
        node_id: str,
        initial_memory: Dict[Location, Value],
        latency: int = 4,
        injector=NULL_INJECTOR,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.latency = latency
        self.injector = injector
        self.memory: Dict[Location, Value] = dict(initial_memory)
        self.entries: Dict[Location, DirectoryEntry] = {}
        self._busy: Dict[Location, _DirTransaction] = {}
        self._waiting: Dict[Location, Deque[Message]] = {}
        # Stats
        self.requests_served = 0
        self.invalidations_sent = 0
        network.attach(node_id, self._on_message)

    def entry(self, location: Location) -> DirectoryEntry:
        """The directory entry for ``location``."""
        return self.entries.setdefault(location, DirectoryEntry())

    # ------------------------------------------------------------------

    def _on_message(self, message: Message) -> None:
        kind = message.kind
        if kind in (MsgKind.GETS, MsgKind.GETX, MsgKind.WB_EVICT):
            self._accept_request(message)
        elif kind is MsgKind.INVAL_ACK:
            self._on_inval_ack(message)
        elif kind is MsgKind.WB_DATA:
            self._on_wb_data(message)
        elif kind is MsgKind.TRANSFER:
            self._on_transfer(message)
        elif kind is MsgKind.NACK_DONE:
            self._on_nack_done(message)
        else:  # pragma: no cover - protocol is closed
            raise SimulationError(f"directory got unexpected {kind}")

    def _on_nack_done(self, message: Message) -> None:
        """Owner refused a forward (reserved line): close without changes."""
        loc = message.location
        txn = self._busy.get(loc)
        if txn is None or not txn.waiting_owner:
            raise SimulationError(f"stray NACK_DONE for {loc}")
        self._close(loc)

    # -- request admission (per-line serialization) --------------------------

    def _accept_request(self, message: Message) -> None:
        loc = message.location
        if loc in self._busy:
            self._waiting.setdefault(loc, deque()).append(message)
            return
        self._busy[loc] = _DirTransaction(message)
        self.sim.after(self._service_latency(), lambda: self._process(message))

    def _service_latency(self) -> int:
        """Service latency, plus any fault-injected jitter."""
        if self.injector.enabled:
            return self.latency + self.injector.service_delay()
        return self.latency

    def _process(self, message: Message) -> None:
        self.requests_served += 1
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                "dir", message.kind.value, "dir", self.sim.now,
                args={"src": message.src, "loc": message.location},
            )
        if message.kind is MsgKind.GETS:
            self._process_gets(message)
        elif message.kind is MsgKind.WB_EVICT:
            self._process_wb_evict(message)
        else:
            self._process_getx(message)

    def _process_wb_evict(self, message: Message) -> None:
        """A cache evicts a dirty line (synchronous write-back).

        If ownership moved while the write-back was queued (a forwarded
        request reached the evicting cache first), the write-back is stale:
        acknowledge it without touching state -- the evicter has already
        given the line away.
        """
        loc = message.location
        entry = self.entry(loc)
        if entry.owner == message.src:
            self.memory[loc] = message.value
            entry.owner = None
        self.network.send(
            Message(MsgKind.WB_OK, src=self.node_id, dst=message.src, location=loc)
        )
        self._close(loc)

    def _process_gets(self, message: Message) -> None:
        loc = message.location
        entry = self.entry(loc)
        requester = message.src
        if entry.owner is None:
            entry.sharers.add(requester)
            self.network.send(
                Message(
                    MsgKind.DATA,
                    src=self.node_id,
                    dst=requester,
                    location=loc,
                    value=self.memory[loc],
                    access_uid=message.access_uid,
                )
            )
            self._close(loc)
            return
        if entry.owner == requester:
            raise SimulationError(f"owner {requester} sent GETS for {loc}")
        # Forward to the exclusive owner; it supplies data to the requester
        # and writes the line back to us (M -> S downgrade).
        txn = self._busy[loc]
        txn.waiting_owner = True
        self.network.send(
            Message(
                MsgKind.GETS_FWD,
                src=self.node_id,
                dst=entry.owner,
                location=loc,
                requester=requester,
                is_sync=message.is_sync,
            )
        )

    def _process_getx(self, message: Message) -> None:
        loc = message.location
        entry = self.entry(loc)
        requester = message.src
        if entry.owner is not None:
            if entry.owner == requester:
                raise SimulationError(f"owner {requester} sent GETX for {loc}")
            txn = self._busy[loc]
            txn.waiting_owner = True
            self.network.send(
                Message(
                    MsgKind.GETX_FWD,
                    src=self.node_id,
                    dst=entry.owner,
                    location=loc,
                    requester=requester,
                    is_sync=message.is_sync,
                )
            )
            return
        others = entry.sharers - {requester}
        entry.owner = requester
        entry.sharers = set()
        # Data goes to the requester in parallel with the invalidations.
        # Even when the requester is (nominally) a sharer, the reply carries
        # the data: shared copies may have been dropped silently by capacity
        # eviction, so the directory's sharer set is an over-approximation
        # and a data-less upgrade grant would be unsound.  Memory is always
        # current for a shared line in this write-back protocol, so the
        # value sent equals any surviving shared copy.
        self.network.send(
            Message(
                MsgKind.DATA_EX,
                src=self.node_id,
                dst=requester,
                location=loc,
                value=self.memory[loc],
                acks_pending=len(others),
                access_uid=message.access_uid,
            )
        )
        if not others:
            self._close(loc)
            return
        txn = self._busy[loc]
        txn.acks_expected = len(others)
        for sharer in others:
            self.invalidations_sent += 1
            self.network.send(
                Message(
                    MsgKind.INVAL,
                    src=self.node_id,
                    dst=sharer,
                    location=loc,
                    requester=requester,
                )
            )

    # -- transaction completion ------------------------------------------------

    def _on_inval_ack(self, message: Message) -> None:
        loc = message.location
        txn = self._busy.get(loc)
        if txn is None or txn.acks_expected <= 0:
            raise SimulationError(f"stray INVAL_ACK for {loc}")
        txn.acks_expected -= 1
        if txn.acks_expected == 0:
            # All processors have observed the write: globally performed.
            self.network.send(
                Message(
                    MsgKind.WRITE_ACK,
                    src=self.node_id,
                    dst=txn.request.src,
                    location=loc,
                    access_uid=txn.request.access_uid,
                )
            )
            self._close(loc)

    def _on_wb_data(self, message: Message) -> None:
        """Owner serviced a GETS_FWD: line downgraded, data written back."""
        loc = message.location
        txn = self._busy.get(loc)
        if txn is None or not txn.waiting_owner:
            raise SimulationError(f"stray WB_DATA for {loc}")
        entry = self.entry(loc)
        self.memory[loc] = message.value
        old_owner = entry.owner
        entry.owner = None
        entry.sharers = {old_owner, message.requester}
        self._close(loc)

    def _on_transfer(self, message: Message) -> None:
        """Owner serviced a GETX_FWD: ownership moved to the requester."""
        loc = message.location
        txn = self._busy.get(loc)
        if txn is None or not txn.waiting_owner:
            raise SimulationError(f"stray TRANSFER for {loc}")
        entry = self.entry(loc)
        entry.owner = message.requester
        entry.sharers = set()
        self._close(loc)

    def _close(self, loc: Location) -> None:
        self._busy.pop(loc, None)
        waiting = self._waiting.get(loc)
        if waiting:
            message = waiting.popleft()
            if not waiting:
                del self._waiting[loc]
            self._busy[loc] = _DirTransaction(message)
            self.sim.after(self._service_latency(), lambda: self._process(message))

    # ------------------------------------------------------------------

    def final_value(self, location: Location, caches) -> Value:
        """Final memory value, honouring a modified copy in some cache."""
        entry = self.entry(location)
        if entry.owner is not None:
            for cache in caches:
                if cache.node_id == entry.owner:
                    return cache.line(location).value
        return self.memory[location]
