"""Interconnects: the shared bus and the general interconnection network.

These are the two interconnect families of the paper's Figure 1:

* :class:`Bus` -- a single shared medium.  Transfers are serialized and
  delivered in the order they were accepted, so the bus is a total-order,
  FIFO transport (which is why a cacheless bus system needs a write buffer
  or out-of-order issue to violate sequential consistency).
* :class:`GeneralNetwork` -- point-to-point links with per-message latency
  jitter and **no ordering guarantees**, even between the same endpoints
  (which is why program-order issue alone cannot save sequential
  consistency on such systems -- Lamport's observation, quoted in Figure 1).

Both are deterministic given the seed: the network draws jitter from its
own ``random.Random``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.sim.events import SimulationError, Simulator
from repro.sim.faults import NULL_INJECTOR
from repro.sim.messages import Message

#: Handler invoked when a message is delivered to a node.
Handler = Callable[[Message], None]


class Interconnect:
    """Common endpoint registry for both interconnect types."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._handlers: Dict[str, Handler] = {}
        self.messages_sent = 0
        #: Fault injector (see :mod:`repro.sim.faults`); the shared null
        #: injector keeps the fault-free path to one attribute check.
        self.injector = NULL_INJECTOR
        self._delivered_ids: Optional[set] = None

    def attach(self, node_id: str, handler: Handler) -> None:
        """Register ``node_id``; messages addressed to it invoke ``handler``."""
        if node_id in self._handlers:
            raise SimulationError(f"node {node_id!r} attached twice")
        self._handlers[node_id] = handler

    def send(self, message: Message) -> None:
        """Accept a message for delivery (subclasses schedule it)."""
        raise NotImplementedError

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.dst)
        if handler is None:
            raise SimulationError(f"message to unknown node {message.dst!r}")
        handler(message)

    def _schedule_delivery(self, message: Message, arrival: int) -> None:
        """Schedule delivery at ``arrival``, applying any fault plan.

        With faults active the injector may delay the message, refuse it a
        bounded number of times (modelled as retransmission latency), drop
        it outright, or deliver it more than once.  Duplicate deliveries
        pass through an idempotent-delivery filter keyed by ``msg_id`` --
        the endpoints see exactly-once semantics over an at-least-once
        transport, so the protocol state machines need no changes.
        """
        if not self.injector.enabled:
            self.sim.at(arrival, lambda: self._deliver(message))
            return
        times = self.injector.delivery_times(message, arrival)
        if not times:
            return  # dropped: delivery-violating plans answer to the watchdog
        if len(times) == 1:
            self.sim.at(times[0], lambda: self._deliver(message))
            return
        if self._delivered_ids is None:
            self._delivered_ids = set()
        for when in times:
            self.sim.at(when, lambda: self._deliver_once(message))

    def _deliver_once(self, message: Message) -> None:
        if message.msg_id in self._delivered_ids:
            self.injector.count_duplicate_suppressed()
            return
        self._delivered_ids.add(message.msg_id)
        self._deliver(message)


class Bus(Interconnect):
    """Shared bus: serialized transfers, global FIFO delivery order.

    Each transfer occupies the bus for ``latency`` cycles; a message
    accepted while the bus is busy waits its turn.  Delivery order equals
    acceptance order, system-wide.
    """

    def __init__(self, sim: Simulator, latency: int = 2) -> None:
        super().__init__(sim)
        if latency < 1:
            raise SimulationError("bus latency must be >= 1")
        self.latency = latency
        self._free_at = 0

    def send(self, message: Message) -> None:
        """Arbitrate for the bus and schedule in-order delivery."""
        start = max(self.sim.now, self._free_at)
        done = start + self.latency
        self._free_at = done
        self.messages_sent += 1
        if self.sim.tracer.enabled:
            self.sim.tracer.async_span(
                "net", message.kind.value, "net", self.sim.now, done,
                args={
                    "src": message.src,
                    "dst": message.dst,
                    "loc": message.location,
                },
            )
        self._schedule_delivery(message, done)


class GeneralNetwork(Interconnect):
    """Point-to-point network with jittered latency and no ordering.

    ``latency`` is the base propagation delay; each message adds uniform
    jitter in ``[0, jitter]``, so two messages between the same endpoints
    can arrive out of order -- unless ``fifo_per_pair`` is set, which
    enforces per-(src, dst) FIFO delivery while keeping the jitter (useful
    for ablations).
    """

    def __init__(
        self,
        sim: Simulator,
        latency: int = 3,
        jitter: int = 6,
        seed: int = 0,
        fifo_per_pair: bool = False,
    ) -> None:
        super().__init__(sim)
        if latency < 1:
            raise SimulationError("network latency must be >= 1")
        self.latency = latency
        self.jitter = max(0, jitter)
        self.fifo_per_pair = fifo_per_pair
        self._rng = random.Random(seed)
        self._last_arrival: Dict[tuple, int] = {}

    def send(self, message: Message) -> None:
        """Schedule delivery after base latency plus per-message jitter."""
        delay = self.latency + (self._rng.randint(0, self.jitter) if self.jitter else 0)
        arrival = self.sim.now + delay
        if self.fifo_per_pair:
            pair = (message.src, message.dst)
            arrival = max(arrival, self._last_arrival.get(pair, 0) + 1)
            self._last_arrival[pair] = arrival
        self.messages_sent += 1
        if self.sim.tracer.enabled:
            self.sim.tracer.async_span(
                "net", message.kind.value, "net", self.sim.now, arrival,
                args={
                    "src": message.src,
                    "dst": message.dst,
                    "loc": message.location,
                },
            )
        self._schedule_delivery(message, arrival)
