"""Dynamic accesses inside the simulator, with commit / globally-performed events.

Section 5.1 of the paper defines a *commit point* for every operation (a
read commits when its return value is dispatched back towards the
requesting processor; a write commits when its value could be dispatched
for some read) and reuses Dubois et al.'s *globally performed* (a write is
globally performed when its modification has propagated to all processors;
a read when its value is bound and the sourcing write is globally
performed).

:class:`AccessRecord` carries both timestamps plus subscription hooks so
processors and policies can wait for either event.  The simulator's
system-level trace of committed accesses doubles as the hardware execution
used by the verification harness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.ops import Operation
from repro.core.types import Location, OpKind, ProcId, Value


class AccessError(RuntimeError):
    """Raised on double commits / double global-performs and similar bugs."""


class BlockLevel(enum.Enum):
    """How long an issuing thread blocks on an access it generated."""

    NONE = 0      # proceed immediately (fire-and-forget write)
    COMMIT = 1    # wait for the commit point
    GP = 2        # wait until globally performed


class AccessRecord:
    """One dynamic memory access flowing through the simulated hardware."""

    def __init__(
        self,
        uid: int,
        proc: ProcId,
        po_index: int,
        kind: OpKind,
        location: Location,
        write_value: Optional[Value],
    ) -> None:
        self.uid = uid
        self.proc = proc
        self.po_index = po_index
        self.kind = kind
        self.location = location
        self.write_value = write_value
        self.value_read: Optional[Value] = None

        self.generate_time: Optional[int] = None
        self.commit_time: Optional[int] = None
        self.gp_time: Optional[int] = None

        #: Attribution breadcrumbs for the observability layer (set by the
        #: memory system as the access is serviced): whether the access
        #: left the processor's port (cache miss / memory round trip), how
        #: many times it was negative-acked off a reserved line, and
        #: whether it committed into a write buffer.
        self.missed: bool = False
        self.nacks: int = 0
        self.buffered: bool = False

        self._commit_callbacks: List[Callable[["AccessRecord"], None]] = []
        self._gp_callbacks: List[Callable[["AccessRecord"], None]] = []

    # -- classification shortcuts ------------------------------------------

    @property
    def is_sync(self) -> bool:
        """True for synchronization operations."""
        return self.kind.is_sync

    @property
    def has_read(self) -> bool:
        """True if the access has a read component."""
        return self.kind.has_read

    @property
    def has_write(self) -> bool:
        """True if the access has a write component."""
        return self.kind.has_write

    # -- lifecycle -----------------------------------------------------------

    @property
    def generated(self) -> bool:
        """True once the processor has handed the access to the memory system."""
        return self.generate_time is not None

    @property
    def committed(self) -> bool:
        """True once the access has committed (Section 5.1 commit point)."""
        return self.commit_time is not None

    @property
    def globally_performed(self) -> bool:
        """True once the access is globally performed."""
        return self.gp_time is not None

    def mark_generated(self, time: int) -> None:
        """Record the generation time (first hand-off to the memory system)."""
        if self.generated:
            raise AccessError(f"access {self.uid} generated twice")
        self.generate_time = time

    def mark_committed(self, time: int, value_read: Optional[Value] = None) -> None:
        """Commit the access, delivering the read component's value."""
        if self.committed:
            raise AccessError(f"access {self.uid} committed twice")
        if self.has_read and value_read is None:
            raise AccessError(f"read access {self.uid} committed without a value")
        self.commit_time = time
        self.value_read = value_read
        callbacks, self._commit_callbacks = self._commit_callbacks, []
        for callback in callbacks:
            callback(self)

    def mark_globally_performed(self, time: int) -> None:
        """Mark the access globally performed, firing subscribers."""
        if self.globally_performed:
            raise AccessError(f"access {self.uid} globally performed twice")
        self.gp_time = time
        callbacks, self._gp_callbacks = self._gp_callbacks, []
        for callback in callbacks:
            callback(self)

    # -- subscriptions ------------------------------------------------------

    def on_commit(self, callback: Callable[["AccessRecord"], None]) -> None:
        """Invoke ``callback`` at commit (immediately if already committed)."""
        if self.committed:
            callback(self)
        else:
            self._commit_callbacks.append(callback)

    def on_globally_performed(
        self, callback: Callable[["AccessRecord"], None]
    ) -> None:
        """Invoke ``callback`` at global perform (immediately if already done)."""
        if self.globally_performed:
            callback(self)
        else:
            self._gp_callbacks.append(callback)

    # -- conversion -----------------------------------------------------------

    def to_operation(self) -> Operation:
        """Freeze into a :class:`~repro.core.ops.Operation` (post-commit)."""
        if not self.committed:
            raise AccessError(f"access {self.uid} not committed yet")
        return Operation(
            uid=self.uid,
            proc=self.proc,
            po_index=self.po_index,
            kind=self.kind,
            location=self.location,
            value_read=self.value_read,
            value_written=self.write_value if self.has_write else None,
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"access#{self.uid}(P{self.proc} {self.kind.value} {self.location} "
            f"gen={self.generate_time} commit={self.commit_time} gp={self.gp_time})"
        )

@dataclass(frozen=True)
class GateCondition:
    """One prerequisite for generating an access: ``access`` reaches ``level``."""

    access: "AccessRecord"
    level: BlockLevel

    @property
    def satisfied(self) -> bool:
        """True when the prerequisite already holds."""
        if self.level is BlockLevel.COMMIT:
            return self.access.committed
        if self.level is BlockLevel.GP:
            return self.access.globally_performed
        return True

    def subscribe(self, callback) -> None:
        """Invoke ``callback`` once the prerequisite holds."""
        if self.level is BlockLevel.COMMIT:
            self.access.on_commit(lambda _a: callback())
        elif self.level is BlockLevel.GP:
            self.access.on_globally_performed(lambda _a: callback())
        else:  # pragma: no cover - NONE gates are never created
            callback()
