"""Discrete-event hardware simulator: the contract's hardware side."""

from repro.sim.access import AccessRecord
from repro.sim.cache import CacheController, CacheLine, LineState
from repro.sim.directory import Directory, DirectoryEntry
from repro.sim.events import SimulationError, Simulator
from repro.sim.faults import (
    DELIVERY_PRESERVING_PLANS,
    DELIVERY_VIOLATING_PLANS,
    FAULT_PLANS,
    FaultConfigError,
    FaultInjector,
    FaultPlan,
    NULL_INJECTOR,
    NullInjector,
    build_injector,
)
from repro.sim.memory import CachelessPort, MemoryModule
from repro.sim.messages import Message, MsgKind
from repro.sim.migration import MigrationPlan, run_with_migration
from repro.sim.network import Bus, GeneralNetwork, Interconnect
from repro.sim.processor import Processor, ProcessorStats
from repro.sim.system import (
    FIGURE1_CONFIGS,
    LivenessError,
    MachineRun,
    SimulationDeadlock,
    SystemConfig,
    WatchdogTimeout,
    run_on_hardware,
    run_seed_sweep,
)

__all__ = [
    "AccessRecord",
    "Bus",
    "CacheController",
    "CacheLine",
    "CachelessPort",
    "DELIVERY_PRESERVING_PLANS",
    "DELIVERY_VIOLATING_PLANS",
    "Directory",
    "DirectoryEntry",
    "FAULT_PLANS",
    "FIGURE1_CONFIGS",
    "FaultConfigError",
    "FaultInjector",
    "FaultPlan",
    "GeneralNetwork",
    "Interconnect",
    "LineState",
    "LivenessError",
    "MachineRun",
    "MemoryModule",
    "Message",
    "MigrationPlan",
    "MsgKind",
    "NULL_INJECTOR",
    "NullInjector",
    "run_with_migration",
    "Processor",
    "ProcessorStats",
    "SimulationDeadlock",
    "SimulationError",
    "Simulator",
    "SystemConfig",
    "WatchdogTimeout",
    "build_injector",
    "run_on_hardware",
    "run_seed_sweep",
]
