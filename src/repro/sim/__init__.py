"""Discrete-event hardware simulator: the contract's hardware side."""

from repro.sim.access import AccessRecord
from repro.sim.cache import CacheController, CacheLine, LineState
from repro.sim.directory import Directory, DirectoryEntry
from repro.sim.events import SimulationError, Simulator
from repro.sim.memory import CachelessPort, MemoryModule
from repro.sim.messages import Message, MsgKind
from repro.sim.migration import MigrationPlan, run_with_migration
from repro.sim.network import Bus, GeneralNetwork, Interconnect
from repro.sim.processor import Processor, ProcessorStats
from repro.sim.system import (
    FIGURE1_CONFIGS,
    MachineRun,
    SimulationDeadlock,
    SystemConfig,
    run_on_hardware,
    run_seed_sweep,
)

__all__ = [
    "AccessRecord",
    "Bus",
    "CacheController",
    "CacheLine",
    "CachelessPort",
    "Directory",
    "DirectoryEntry",
    "FIGURE1_CONFIGS",
    "GeneralNetwork",
    "Interconnect",
    "LineState",
    "MachineRun",
    "MemoryModule",
    "Message",
    "MigrationPlan",
    "MsgKind",
    "run_with_migration",
    "Processor",
    "ProcessorStats",
    "SimulationDeadlock",
    "SimulationError",
    "Simulator",
    "SystemConfig",
    "run_on_hardware",
    "run_seed_sweep",
]
