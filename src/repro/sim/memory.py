"""Cacheless memory system: a memory module plus per-processor ports.

This models the paper's cacheless configurations (Figure 1, top half): a
shared memory reached over the interconnect.  Synchronization read-modify-
writes execute atomically at the module.

The per-processor :class:`CachelessPort` includes an optional **write
buffer**: writes are queued and drained in FIFO order after a configurable
delay while reads bypass the buffer (with store-to-load forwarding for the
processor's own buffered writes, preserving uniprocessor semantics).  The
read-passes-write behaviour is exactly how a bus-based cacheless system
violates sequential consistency in Figure 1; policies that enforce stronger
orders (SC, Definition 1 at sync points) gate access generation so the
buffer never reorders anything observable.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.core.types import Location, OpKind, Value
from repro.sim.access import AccessRecord
from repro.sim.events import SimulationError, Simulator
from repro.sim.faults import NULL_INJECTOR
from repro.sim.messages import Message, MsgKind
from repro.sim.network import Interconnect


class MemoryModule:
    """The shared memory of a cacheless system.

    Services each request ``latency`` cycles after arrival (banked memory:
    requests to different locations do not queue behind each other; the
    interconnect provides all the ordering there is).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Interconnect,
        node_id: str,
        initial_memory: Dict[Location, Value],
        latency: int = 4,
        injector=NULL_INJECTOR,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.values: Dict[Location, Value] = dict(initial_memory)
        self.latency = latency
        self.injector = injector
        network.attach(node_id, self._on_message)

    def _on_message(self, message: Message) -> None:
        delay = self.latency
        if self.injector.enabled:
            delay += self.injector.service_delay()
        self.sim.after(delay, lambda: self._service(message))

    def _service(self, message: Message) -> None:
        """Apply the request atomically and reply."""
        loc = message.location
        if message.kind is MsgKind.MEM_READ:
            reply = Message(
                MsgKind.MEM_DATA,
                src=self.node_id,
                dst=message.src,
                location=loc,
                value=self.values[loc],
                access_uid=message.access_uid,
            )
        elif message.kind is MsgKind.MEM_WRITE:
            self.values[loc] = message.value
            reply = Message(
                MsgKind.MEM_WRITE_ACK,
                src=self.node_id,
                dst=message.src,
                location=loc,
                access_uid=message.access_uid,
            )
        elif message.kind is MsgKind.MEM_RMW:
            old = self.values[loc]
            self.values[loc] = message.value
            reply = Message(
                MsgKind.MEM_DATA,
                src=self.node_id,
                dst=message.src,
                location=loc,
                value=old,
                access_uid=message.access_uid,
            )
        else:  # pragma: no cover - protocol is closed
            raise SimulationError(f"memory module got {message.kind}")
        self.network.send(reply)


class CachelessPort:
    """Per-processor memory port for cacheless systems.

    Translates :class:`AccessRecord` objects into memory-module messages and
    marks commit / globally-performed on replies.  Owns the optional write
    buffer.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Interconnect,
        node_id: str,
        memory_id: str,
        write_buffer: bool = True,
        drain_delay: int = 3,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.memory_id = memory_id
        self.write_buffer_enabled = write_buffer
        self.drain_delay = drain_delay
        self._buffer: Deque[AccessRecord] = deque()
        self._draining = False
        self._inflight: Dict[int, AccessRecord] = {}
        network.attach(node_id, self._on_message)

    # -- processor-facing API ---------------------------------------------

    def submit(self, access: AccessRecord) -> None:
        """Hand one generated access to the memory system."""
        if access.kind is OpKind.DATA_WRITE and self.write_buffer_enabled:
            # Commit point: a buffered write's value can be dispatched to the
            # owner's own later reads (store-to-load forwarding).
            access.mark_committed(self.sim.now)
            access.buffered = True
            self._buffer.append(access)
            self._schedule_drain()
            return
        if access.has_read and not access.has_write:
            forwarded = self._forwarded_value(access.location)
            if forwarded is not None:
                # Read satisfied from the processor's own write buffer.
                access.mark_committed(self.sim.now, forwarded)
                access.mark_globally_performed(self.sim.now)
                return
            self._send_request(access, MsgKind.MEM_READ)
            return
        if access.has_read and access.has_write:
            self._send_request(access, MsgKind.MEM_RMW)
            return
        # Unbuffered write (write buffer disabled, or sync write).
        self._send_request(access, MsgKind.MEM_WRITE)

    # -- internals ---------------------------------------------------------

    def _forwarded_value(self, location: Location) -> Optional[Value]:
        """Newest buffered write to ``location``, if any (store forwarding)."""
        for access in reversed(self._buffer):
            if access.location == location:
                return access.write_value
        return None

    def _send_request(self, access: AccessRecord, kind: MsgKind) -> None:
        access.missed = True
        self._inflight[access.uid] = access
        self.network.send(
            Message(
                kind,
                src=self.node_id,
                dst=self.memory_id,
                location=access.location,
                value=access.write_value,
                is_sync=access.is_sync,
                access_uid=access.uid,
            )
        )

    def _schedule_drain(self) -> None:
        if self._draining or not self._buffer:
            return
        self._draining = True
        self.sim.after(self.drain_delay, self._drain_one)

    def _drain_one(self) -> None:
        self._draining = False
        if not self._buffer:
            return
        access = self._buffer.popleft()
        self._inflight[access.uid] = access
        self.network.send(
            Message(
                MsgKind.MEM_WRITE,
                src=self.node_id,
                dst=self.memory_id,
                location=access.location,
                value=access.write_value,
                is_sync=access.is_sync,
                access_uid=access.uid,
            )
        )
        self._schedule_drain()

    def _on_message(self, message: Message) -> None:
        access = self._inflight.pop(message.access_uid)
        if message.kind is MsgKind.MEM_DATA:
            access.mark_committed(self.sim.now, message.value)
            access.mark_globally_performed(self.sim.now)
        elif message.kind is MsgKind.MEM_WRITE_ACK:
            if not access.committed:
                access.mark_committed(self.sim.now)
            access.mark_globally_performed(self.sim.now)
        else:  # pragma: no cover - protocol is closed
            raise SimulationError(f"port got {message.kind}")
