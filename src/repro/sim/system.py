"""System assembly: the four Figure-1 configurations, run orchestration.

:func:`run_on_hardware` builds one of the paper's hardware configurations
(bus / general network, with / without caches), attaches a memory-system
policy, runs a program to completion, and packages the observable
:class:`~repro.core.execution.Result` together with timing statistics and
the hardware execution trace (accesses in commit order) for verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from typing import TYPE_CHECKING

from repro.core.execution import Execution, Result, final_memory_from_dict
from repro.core.ops import Operation
from repro.core.types import Location, Value
from repro.machine.program import Program

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle through repro.hw
    from repro.hw.base import MemoryPolicy
    from repro.obs.tracer import Tracer
from repro.sim.cache import CacheController
from repro.sim.directory import Directory
from repro.sim.events import SimulationError, Simulator
from repro.sim.faults import FaultPlan, NULL_INJECTOR, build_injector
from repro.sim.memory import CachelessPort, MemoryModule
from repro.sim.network import Bus, GeneralNetwork, Interconnect
from repro.sim.processor import Processor, ProcessorStats
from repro.sim.write_buffer import BufferedCachePort


class LivenessError(SimulationError):
    """The run failed to make progress (deadlock or livelock).

    ``stuck`` carries one human-readable diagnosis line per non-halted
    processor (from :meth:`~repro.sim.processor.Processor.stall_diagnosis`),
    naming the stall cause each is wedged on.
    """

    def __init__(self, message: str, stuck: Sequence[str] = ()) -> None:
        super().__init__(message)
        self.stuck = tuple(stuck)

    def __reduce__(self):  # keep picklability across worker processes
        return (type(self), (self.args[0], self.stuck))

    def diagnosis(self) -> str:
        """The message plus the per-processor stall diagnoses."""
        lines = [str(self.args[0])]
        lines.extend(f"  {line}" for line in self.stuck)
        return "\n".join(lines)


class SimulationDeadlock(LivenessError):
    """The event queue drained before every thread halted."""


class WatchdogTimeout(LivenessError):
    """The liveness watchdog saw no architectural progress for too long."""


@dataclass(frozen=True)
class SystemConfig:
    """Hardware configuration knobs.

    Attributes:
        topology: ``"bus"`` (total-order FIFO) or ``"network"`` (unordered,
            jittered point-to-point) -- the two interconnects of Figure 1.
        caches: Whether processors have coherent caches (directory protocol)
            or talk straight to a memory module.
        seed: Seed for the network's latency jitter (all nondeterminism).
        bus_latency: Cycles per bus transfer.
        net_latency / net_jitter: Base + uniform extra latency per message.
        fifo_per_pair: Restore per-link FIFO on the general network
            (ablation knob; off by default, as the paper assumes nothing).
        mem_latency: Memory-module / directory service latency.
        hit_latency: Cache hit latency.
        local_cycle: Cycles per local (non-memory) instruction.
        write_buffer: Enable the cacheless write buffer (reads bypass it).
        wb_drain_delay: Cycles before a buffered write drains to the bus.
        reserved_miss_limit: Section 5.3's bounded-miss window: while any
            line is reserved, at most this many misses may be outstanding.
        max_events: Runaway-simulation guard.
    """

    topology: str = "network"
    caches: bool = True
    #: Coherence substrate: ``"directory"`` (Section 5.2's protocol over the
    #: configured interconnect) or ``"snoop"`` (the [RuS84]/[ArB86] atomic
    #: snooping bus; implies a bus and caches; reserve bits are unnecessary
    #: there -- condition 5 holds structurally, see sim/snoop.py).
    coherence: str = "directory"
    seed: int = 0
    bus_latency: int = 2
    net_latency: int = 3
    net_jitter: int = 6
    fifo_per_pair: bool = False
    mem_latency: int = 4
    hit_latency: int = 1
    local_cycle: int = 1
    write_buffer: bool = True
    wb_drain_delay: int = 3
    #: Cache capacity in lines (None = unbounded).  With a capacity, dirty
    #: victims write back synchronously and reserved lines are never
    #: evicted (misses needing such an eviction stall -- Section 5.3).
    cache_capacity: Optional[int] = None
    reserved_miss_limit: Optional[int] = None
    #: Reserve-bit refusal variant: True = negative-ack and retry (deadlock
    #: free, the default); False = queue at the owner until its counter
    #: reads zero (the paper's primary description; can deadlock when two
    #: processors synchronize on each other's reserved lines).
    remote_sync_nack: bool = True
    nack_retry_delay: int = 8
    max_events: int = 50_000_000
    #: Fault plan to inject (see :mod:`repro.sim.faults`); None = fault free.
    #: Directory substrate only (the snooping bus is atomic by construction).
    fault_plan: Optional[FaultPlan] = None
    #: Liveness watchdog: abort with a per-processor stall diagnosis after
    #: this many cycles without architectural progress (None = disabled).
    watchdog_cycles: Optional[int] = None

    def with_seed(self, seed: int) -> "SystemConfig":
        """Copy of this config with a different nondeterminism seed.

        Seed sweeps call this once per run; a direct ``__dict__`` copy
        skips ``dataclasses.replace``'s re-run of the generated
        ``__init__`` (field-by-field keyword dispatch) on this wide
        config.
        """
        if seed == self.seed:
            return self
        clone = object.__new__(SystemConfig)
        clone.__dict__.update(self.__dict__)
        clone.__dict__["seed"] = seed
        return clone


#: The four hardware configurations of the paper's Figure 1.
FIGURE1_CONFIGS: Dict[str, SystemConfig] = {
    "bus-no-cache": SystemConfig(topology="bus", caches=False),
    "network-no-cache": SystemConfig(topology="network", caches=False),
    "bus-cache": SystemConfig(topology="bus", caches=True),
    "network-cache": SystemConfig(topology="network", caches=True),
}


@dataclass
class MachineRun:
    """Everything observable from one hardware run."""

    program: Program
    policy_name: str
    config: SystemConfig
    result: Result
    execution: Execution
    cycles: int
    proc_stats: List[ProcessorStats]
    messages_sent: int
    #: Raw per-processor access records (program order), with their
    #: generate/commit/globally-performed timestamps -- the evidence the
    #: Section-5.1 condition monitor inspects.
    raw_accesses: List[list] = field(default_factory=list)
    #: Per-processor cache statistics: {"hits", "misses", "evictions",
    #: "forwards_stalled"} (empty for cacheless systems).
    cache_stats: List[Dict[str, int]] = field(default_factory=list)
    #: Directory statistics: {"requests", "invalidations"} (cacheless: {}).
    directory_stats: Dict[str, int] = field(default_factory=dict)
    #: Fault-injection counters for the run ({} when fault free).
    fault_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def total_stall_cycles(self) -> int:
        """Sum of all processors' stall cycles."""
        return sum(s.total_stall_cycles for s in self.proc_stats)


def build_interconnect(sim: Simulator, config: SystemConfig) -> Interconnect:
    """Instantiate the configured interconnect."""
    if config.topology == "bus":
        return Bus(sim, latency=config.bus_latency)
    if config.topology == "network":
        return GeneralNetwork(
            sim,
            latency=config.net_latency,
            jitter=config.net_jitter,
            seed=config.seed,
            fifo_per_pair=config.fifo_per_pair,
        )
    raise ValueError(f"unknown topology {config.topology!r}")


def _validate_policy_config(policy: "MemoryPolicy", config: SystemConfig) -> None:
    """Reject (policy, config) pairings the substrates cannot express.

    Factored out so seed sweeps can fail fast once instead of per run.
    """
    if policy.requires_caches and not config.caches:
        raise ValueError(
            f"policy {policy.name!r} needs the cache-coherent substrate"
        )
    if (
        config.fault_plan is not None
        and config.fault_plan.injects_anything
        and config.coherence == "snoop"
    ):
        raise ValueError(
            "fault injection supports the directory substrate only "
            "(the snooping bus is atomic by construction)"
        )


def run_on_hardware(
    program: Program,
    policy: "MemoryPolicy",
    config: Optional[SystemConfig] = None,
    tracer: Optional["Tracer"] = None,
) -> MachineRun:
    """Run ``program`` on the configured hardware under ``policy``.

    ``tracer`` (a :class:`~repro.obs.tracer.Tracer`) receives cycle-level
    events from every component of the run; the default null tracer makes
    instrumentation free.
    """
    config = config or SystemConfig()
    _validate_policy_config(policy, config)
    injector = build_injector(config.fault_plan, config.seed)

    sim = Simulator(tracer)
    directory = None
    memory_module: Optional[MemoryModule] = None
    caches: List = []
    ports: List[object] = []

    if config.coherence == "snoop":
        if not config.caches:
            raise ValueError("the snooping substrate requires caches")
        from repro.sim.snoop import SnoopBus, SnoopyCache

        bus = SnoopBus(
            sim, dict(program.initial_memory), latency=config.bus_latency
        )
        network = bus          # provides messages_sent
        directory = bus        # provides final_value / stats parity
        for proc in range(program.num_procs):
            cache = SnoopyCache(
                sim,
                bus,
                node_id=f"proc{proc}",
                hit_latency=config.hit_latency,
                drf1_optimized=policy.drf1_optimized,
            )
            caches.append(cache)
            if policy.buffers_cache_writes and config.write_buffer:
                ports.append(
                    BufferedCachePort(sim, cache, drain_delay=config.wb_drain_delay)
                )
            else:
                ports.append(cache)
        return _run_processors(
            program, policy, config, sim, network, ports,
            directory, memory_module, caches,
        )

    network = build_interconnect(sim, config)
    network.injector = injector

    if config.caches:
        directory = Directory(
            sim, network, "dir", dict(program.initial_memory),
            latency=config.mem_latency, injector=injector,
        )
        for proc in range(program.num_procs):
            cache = CacheController(
                sim,
                network,
                node_id=f"proc{proc}",
                directory_id="dir",
                hit_latency=config.hit_latency,
                use_reserve_bits=policy.use_reserve_bits,
                drf1_optimized=policy.drf1_optimized,
                reserved_miss_limit=config.reserved_miss_limit,
                sync_nack=config.remote_sync_nack,
                nack_retry_delay=config.nack_retry_delay,
                capacity=config.cache_capacity,
                injector=injector,
            )
            caches.append(cache)
            if policy.buffers_cache_writes and config.write_buffer:
                ports.append(
                    BufferedCachePort(sim, cache, drain_delay=config.wb_drain_delay)
                )
            else:
                ports.append(cache)
    else:
        memory_module = MemoryModule(
            sim, network, "mem", dict(program.initial_memory),
            latency=config.mem_latency, injector=injector,
        )
        for proc in range(program.num_procs):
            ports.append(
                CachelessPort(
                    sim,
                    network,
                    node_id=f"proc{proc}",
                    memory_id="mem",
                    write_buffer=config.write_buffer,
                    drain_delay=config.wb_drain_delay,
                )
            )

    return _run_processors(
        program, policy, config, sim, network, ports,
        directory, memory_module, caches, injector=injector,
    )


def _run_processors(
    program: Program,
    policy: "MemoryPolicy",
    config: SystemConfig,
    sim: Simulator,
    network,
    ports: Sequence[object],
    directory,
    memory_module: Optional[MemoryModule],
    caches: Sequence[object],
    injector=NULL_INJECTOR,
) -> MachineRun:
    """Start one processor per thread, run to quiescence, package the run."""
    uid_counter = {"next": 0}

    def allocate_uid() -> int:
        uid = uid_counter["next"]
        uid_counter["next"] += 1
        return uid

    halted = {"count": 0}

    def on_halt(_proc: Processor) -> None:
        halted["count"] += 1

    processors: List[Processor] = []
    for proc in range(program.num_procs):
        processor = Processor(
            sim,
            proc,
            program.threads[proc],
            policy,
            ports[proc],
            allocate_uid,
            on_halt,
            local_cycle=config.local_cycle,
            injector=injector,
        )
        processors.append(processor)
        processor.start()

    def diagnoses() -> List[str]:
        return [d for p in processors if (d := p.stall_diagnosis()) is not None]

    if config.watchdog_cycles:
        _run_with_watchdog(
            sim, config, program, policy, processors, halted, diagnoses
        )
    else:
        sim.run(max_events=config.max_events)

    if halted["count"] != program.num_procs:
        stuck = [p.proc_id for p in processors if not p.halted]
        raise SimulationDeadlock(
            f"processors {stuck} never halted (program {program.name!r}, "
            f"policy {policy.name!r}, seed {config.seed})",
            stuck=diagnoses(),
        )

    run = _package_run(program, policy, config, sim, network, processors,
                       directory, memory_module, caches)
    if injector.enabled:
        run.fault_stats = injector.snapshot()
    return run


def _run_with_watchdog(
    sim: Simulator,
    config: SystemConfig,
    program: Program,
    policy: "MemoryPolicy",
    processors: Sequence[Processor],
    halted: Dict[str, int],
    diagnoses,
) -> None:
    """Drain the event queue under a liveness watchdog.

    Progress is architectural: a processor halting, an access being
    generated, committed, or globally performed.  Protocol chatter that
    moves none of those (e.g. an endless NACK/retry loop) does not count,
    so the watchdog catches livelock as well as slow-burn deadlock.  When
    no progress happens for ``watchdog_cycles`` simulated cycles the run
    aborts with a :class:`WatchdogTimeout` naming each processor's stall
    cause -- the chaos harness turns delivery-violating fault plans into
    this diagnosis instead of a hang.
    """
    budget = config.watchdog_cycles
    check_every = max(1, budget // 4)
    state = {"checked": -1, "sig": None, "progress_at": 0, "tripped": False}

    def signature() -> tuple:
        generated = committed = performed = 0
        for proc in processors:
            generated += proc.stats.accesses_generated
            for access in proc.accesses:
                if access.committed:
                    committed += 1
                if access.globally_performed:
                    performed += 1
        return (halted["count"], generated, committed, performed)

    def stop_when() -> bool:
        now = sim.now
        if now - state["checked"] < check_every:
            return False
        state["checked"] = now
        sig = signature()
        if sig != state["sig"]:
            state["sig"] = sig
            state["progress_at"] = now
            return False
        if now - state["progress_at"] >= budget:
            state["tripped"] = True
            return True
        return False

    sim.run(max_events=config.max_events, stop_when=stop_when)

    if state["tripped"]:
        plan = config.fault_plan.name if config.fault_plan else "none"
        raise WatchdogTimeout(
            f"watchdog: no architectural progress for {budget} cycles at "
            f"t={sim.now} (program {program.name!r}, policy {policy.name!r}, "
            f"seed {config.seed}, fault plan {plan!r})",
            stuck=diagnoses(),
        )


def _package_run(
    program: Program,
    policy: "MemoryPolicy",
    config: SystemConfig,
    sim: Simulator,
    network: Interconnect,
    processors: Sequence[Processor],
    directory: Optional[Directory],
    memory_module: Optional[MemoryModule],
    caches: Sequence[CacheController],
) -> MachineRun:
    final_memory: Dict[Location, Value] = {}
    for location in program.initial_memory:
        if directory is not None:
            final_memory[location] = directory.final_value(location, caches)
        else:
            final_memory[location] = memory_module.values[location]

    reads = [p.read_values_in_program_order() for p in processors]
    result = Result.build(reads, final_memory)

    committed = sorted(
        (a for p in processors for a in p.accesses if a.committed),
        key=lambda a: (a.commit_time, a.uid),
    )
    ops = tuple(
        Operation(
            uid=index,
            proc=access.proc,
            po_index=access.po_index,
            kind=access.kind,
            location=access.location,
            value_read=access.value_read,
            value_written=access.write_value if access.has_write else None,
        )
        for index, access in enumerate(committed)
    )
    execution = Execution(program, ops, final_memory_from_dict(final_memory))

    if sim.tracer.enabled:
        for processor in processors:
            track = f"P{processor.proc_id}"
            for access in processor.accesses:
                end = access.gp_time
                if end is None:
                    end = access.commit_time
                if access.generate_time is None or end is None:
                    continue
                sim.tracer.span(
                    "access",
                    f"{access.kind.value} {access.location}",
                    track,
                    access.generate_time,
                    end,
                    args={
                        "uid": access.uid,
                        "commit": access.commit_time,
                        "gp": access.gp_time,
                        "missed": access.missed,
                        "nacks": access.nacks,
                        "buffered": access.buffered,
                    },
                )

    return MachineRun(
        program=program,
        policy_name=policy.name,
        config=config,
        result=result,
        execution=execution,
        cycles=sim.now,
        proc_stats=[p.stats for p in processors],
        messages_sent=network.messages_sent,
        raw_accesses=[list(p.accesses) for p in processors],
        cache_stats=[
            {
                "hits": c.hits,
                "misses": c.misses,
                "evictions": c.evictions,
                "forwards_stalled": c.forwards_stalled,
            }
            for c in caches
        ],
        directory_stats=(
            {
                "requests": directory.requests_served,
                "invalidations": directory.invalidations_sent,
            }
            if directory is not None
            else {}
        ),
    )


def run_seed_sweep(
    program: Program,
    policy,
    config: Optional[SystemConfig] = None,
    seeds: Sequence[int] = range(20),
    tracer: Optional["Tracer"] = None,
) -> List[MachineRun]:
    """Run the same (program, policy, config) across many nondeterminism seeds.

    The batched entry point for seed sweeps (the litmus harness, the
    property experiments).  ``policy`` may be a :class:`MemoryPolicy`
    instance or a zero-argument factory (e.g. the policy class); either
    way the (policy, config) pairing is validated *once* up front -- a bad
    pairing fails before the first run, not on every seed -- and a single
    policy instance is shared across all runs.  Sharing is sound because
    policies are pure ordering disciplines: all mutable run state lives in
    the simulator each seed builds afresh.
    """
    from repro.hw.base import MemoryPolicy  # late: avoids a module cycle

    config = config or SystemConfig()
    if not isinstance(policy, MemoryPolicy):
        policy = policy()
    _validate_policy_config(policy, config)
    return [
        run_on_hardware(program, policy, config.with_seed(seed), tracer)
        for seed in seeds
    ]
