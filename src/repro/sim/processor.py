"""The processor front end: in-order issue with policy-controlled overlap.

Each processor runs one thread of the program through the shared
interpreter.  Local instructions cost ``local_cycle`` cycles each.  At a
memory instruction the processor builds an :class:`AccessRecord` and:

1. waits for the policy's **generation gate** (e.g. Definition 1's
   "previous accesses globally performed" before a sync access);
2. generates the access -- hands it to the memory port (cache controller or
   cacheless port);
3. blocks the thread per the required level: an access with a read
   component always blocks until commit (its value feeds the program); the
   policy can extend blocking to globally-performed (the SC baseline), or
   let pure writes fly (weak orderings).

Intra-processor dependencies (condition 1 of Section 5.1) hold by
construction: the front end is in-order and an access's operands are
evaluated when the request is formed.

The processor records how many cycles it spent stalled at generation gates
versus blocked waiting for values/completions -- the numbers behind the
paper's Figure-3 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.types import ProcId, Value
from repro.machine.interpreter import (
    DelayRequest,
    FenceRequest,
    MemRequest,
    ThreadState,
    complete,
    consume_delay,
    run_to_memory_op,
)
from repro.machine.program import ThreadCode
from repro.obs.stall import (
    BLOCK_BUFFER_DRAIN,
    BLOCK_COHERENCE_MISS,
    BLOCK_COUNTER_WAIT,
    BLOCK_HIT,
    BLOCK_RESERVE_NACK,
    GATE_FENCE,
    GATE_GP,
    GATE_SYNC_COMMIT,
    GATE_SYNC_GP,
)
from repro.sim.access import AccessRecord, BlockLevel, GateCondition
from repro.sim.events import Simulator
from repro.sim.faults import NULL_INJECTOR


def _gate_cause(gates: List["GateCondition"]) -> str:
    """Classify a generation-gate stall from the unsatisfied conditions."""
    if all(g.access.is_sync for g in gates):
        if all(g.level is BlockLevel.COMMIT for g in gates):
            return GATE_SYNC_COMMIT
        return GATE_SYNC_GP
    return GATE_GP


@dataclass
class ProcessorStats:
    """Per-processor timing breakdown.

    ``stall_by_cause`` refines the two coarse stall buckets with the
    observability layer's cause taxonomy (see :mod:`repro.obs.stall`):
    every stalled cycle lands in exactly one cause, so the invariant
    ``sum(stall_by_cause.values()) == gate_stall_cycles +
    block_stall_cycles`` holds on every run (asserted in the tests).
    """

    local_instructions: int = 0
    accesses_generated: int = 0
    gate_stall_cycles: int = 0
    block_stall_cycles: int = 0
    halt_time: Optional[int] = None
    stall_by_cause: Dict[str, int] = field(default_factory=dict)

    @property
    def total_stall_cycles(self) -> int:
        """Cycles spent not making architectural progress."""
        return self.gate_stall_cycles + self.block_stall_cycles

    def add_stall(self, cause: str, cycles: int) -> None:
        """Attribute ``cycles`` of stall to ``cause`` (no-op for zero)."""
        if cycles:
            self.stall_by_cause[cause] = (
                self.stall_by_cause.get(cause, 0) + cycles
            )

    def as_dict(self) -> Dict[str, object]:
        """Stable plain-dict form for JSON reports."""
        return {
            "local_instructions": self.local_instructions,
            "accesses_generated": self.accesses_generated,
            "gate_stall_cycles": self.gate_stall_cycles,
            "block_stall_cycles": self.block_stall_cycles,
            "total_stall_cycles": self.total_stall_cycles,
            "halt_time": self.halt_time,
            "stall_by_cause": {
                cause: self.stall_by_cause[cause]
                for cause in sorted(self.stall_by_cause)
            },
        }


class Processor:
    """One simulated processor driving one thread."""

    def __init__(
        self,
        sim: Simulator,
        proc_id: ProcId,
        code: ThreadCode,
        policy: "MemoryPolicy",
        port,
        uid_allocator: Callable[[], int],
        on_halt: Callable[["Processor"], None],
        local_cycle: int = 1,
        injector=NULL_INJECTOR,
    ) -> None:
        self.sim = sim
        self.proc_id = proc_id
        self.code = code
        self.policy = policy
        self.port = port
        self._uid_allocator = uid_allocator
        self._on_halt = on_halt
        self.local_cycle = local_cycle
        self.injector = injector

        self.tracer = sim.tracer
        self._track = f"P{proc_id}"
        self.state = ThreadState()
        self.halted = False
        self.accesses: List[AccessRecord] = []
        self.stats = ProcessorStats()
        self.last_generated: Optional[AccessRecord] = None
        self._current_request: Optional[MemRequest] = None
        self._po_index = 0
        #: What this processor is waiting on right now, for the liveness
        #: watchdog's diagnosis: None, ("gate", cause, access-or-None), or
        #: ("block", access).
        self.wait_state: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Policy-facing bookkeeping
    # ------------------------------------------------------------------

    def not_globally_performed(self) -> List[AccessRecord]:
        """Generated accesses not yet globally performed, program order."""
        return [
            a for a in self.accesses if a.generated and not a.globally_performed
        ]

    def pending_syncs(self, level: BlockLevel) -> List[AccessRecord]:
        """Sync accesses that have not reached ``level`` yet."""
        if level is BlockLevel.COMMIT:
            return [a for a in self.accesses if a.is_sync and not a.committed]
        return [
            a for a in self.accesses if a.is_sync and not a.globally_performed
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule the first step at time 0."""
        self.sim.at(0, self._resume)

    def _resume(self) -> None:
        pending, steps = run_to_memory_op(self.code, self.state)
        self.stats.local_instructions += steps
        delay = steps * self.local_cycle
        if pending is None:
            self.sim.after(delay, self._halt)
        elif isinstance(pending, DelayRequest):
            self.sim.after(delay + pending.cycles, self._finish_delay)
        elif isinstance(pending, FenceRequest):
            self.sim.after(delay, self._at_fence)
        else:
            self.sim.after(delay, lambda: self._at_memory_request(pending))

    def _finish_delay(self) -> None:
        consume_delay(self.state)
        self._resume()

    def _at_fence(self) -> None:
        """RP3-style fence: wait until every prior access globally performs.

        Fences are processor-level (policy-independent): they give a
        relaxed machine explicit ordering points, exactly the RP3 option
        Section 2.1 describes.
        """
        pending = self.not_globally_performed()
        if not pending:
            self._finish_delay()
            return
        fence_start = self.sim.now
        remaining = {"count": len(pending)}
        self.wait_state = ("gate", GATE_FENCE, None)

        def one_done(_a: AccessRecord) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                self.wait_state = None
                stalled = self.sim.now - fence_start
                self.stats.gate_stall_cycles += stalled
                self.stats.add_stall(GATE_FENCE, stalled)
                if self.tracer.enabled and stalled:
                    self.tracer.span(
                        "stall", GATE_FENCE, self._track,
                        fence_start, self.sim.now,
                    )
                self._finish_delay()

        for access in pending:
            access.on_globally_performed(one_done)

    def _halt(self) -> None:
        self.halted = True
        self.stats.halt_time = self.sim.now
        if self.tracer.enabled:
            self.tracer.instant("proc", "halt", self._track, self.sim.now)
        self._on_halt(self)

    def _at_memory_request(self, request: MemRequest) -> None:
        if self.injector.enabled:
            extra = self.injector.issue_delay()
            if extra:
                self.sim.after(extra, lambda: self._issue_request(request))
                return
        self._issue_request(request)

    def _issue_request(self, request: MemRequest) -> None:
        access = AccessRecord(
            uid=self._uid_allocator(),
            proc=self.proc_id,
            po_index=self._po_index,
            kind=request.kind,
            location=request.location,
            write_value=request.write_value,
        )
        self._po_index += 1
        self._current_request = request
        self._wait_for_gate(access)

    def _wait_for_gate(self, access: AccessRecord) -> None:
        gates = [
            g for g in self.policy.generation_gate(self, access) if not g.satisfied
        ]
        if not gates:
            self._generate(access)
            return
        gate_start = self.sim.now
        cause = _gate_cause(gates)
        remaining = {"count": len(gates)}
        self.wait_state = ("gate", cause, access)

        def one_done() -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                self.wait_state = None
                stalled = self.sim.now - gate_start
                self.stats.gate_stall_cycles += stalled
                self.stats.add_stall(cause, stalled)
                if self.tracer.enabled and stalled:
                    self.tracer.span(
                        "stall", cause, self._track, gate_start, self.sim.now,
                        args={
                            "kind": access.kind.value,
                            "loc": access.location,
                        },
                    )
                self._generate(access)

        for gate in gates:
            gate.subscribe(one_done)

    def _generate(self, access: AccessRecord) -> None:
        access.mark_generated(self.sim.now)
        self.accesses.append(access)
        self.stats.accesses_generated += 1
        self.last_generated = access
        self.port.submit(access)

        level = self.policy.block_level(access)
        if access.has_read and level is BlockLevel.NONE:
            level = BlockLevel.COMMIT
        if level is BlockLevel.NONE:
            self._finish_instruction(access)
            return
        block_start = self.sim.now
        self.wait_state = ("block", access)

        def unblock(_a: AccessRecord) -> None:
            self.wait_state = None
            end = self.sim.now
            self.stats.block_stall_cycles += end - block_start
            self._attribute_block(access, block_start, end)
            self._finish_instruction(access)

        if level is BlockLevel.COMMIT:
            access.on_commit(unblock)
        else:
            access.on_globally_performed(unblock)

    def _attribute_block(
        self, access: AccessRecord, block_start: int, end: int
    ) -> None:
        """Split a block stall at the access's commit point and attribute.

        The service interval (up to commit) is attributed to how the
        memory system handled the access -- a reserve-bit NACK beats a
        plain miss beats the hit latency; the completion interval (commit
        to globally-performed, only present when the policy blocks to GP)
        is the write-buffer drain or the invalidation-ack counter wait.
        """
        if end <= block_start:
            return
        commit = access.commit_time
        split = end if commit is None else min(max(commit, block_start), end)
        pre = split - block_start
        if pre:
            if access.nacks:
                cause = BLOCK_RESERVE_NACK
            elif access.missed:
                cause = BLOCK_COHERENCE_MISS
            else:
                cause = BLOCK_HIT
            self.stats.add_stall(cause, pre)
            if self.tracer.enabled:
                self.tracer.span(
                    "stall", cause, self._track, block_start, split,
                    args={"kind": access.kind.value, "loc": access.location},
                )
        post = end - split
        if post:
            cause = BLOCK_BUFFER_DRAIN if access.buffered else BLOCK_COUNTER_WAIT
            self.stats.add_stall(cause, post)
            if self.tracer.enabled:
                self.tracer.span(
                    "stall", cause, self._track, split, end,
                    args={"kind": access.kind.value, "loc": access.location},
                )

    def _finish_instruction(self, access: AccessRecord) -> None:
        request = self._current_request
        self._current_request = None
        value: Optional[Value] = access.value_read if access.has_read else None
        complete(self.code, self.state, request, value)
        self._resume()

    # ------------------------------------------------------------------

    def stall_diagnosis(self) -> Optional[str]:
        """What this processor is stuck on, for the liveness watchdog.

        Returns None for a halted processor; otherwise a one-line
        description naming the stall cause (the observability layer's
        taxonomy) and the access being waited on.
        """
        if self.halted:
            return None
        state = self.wait_state
        if state is None:
            return (
                f"P{self.proc_id}: no access in flight "
                "(local execution or a lost scheduling event)"
            )
        if state[0] == "gate":
            _, cause, access = state
            if access is None:
                return f"P{self.proc_id}: stalled at {cause}"
            return (
                f"P{self.proc_id}: stalled at generation gate {cause} before "
                f"{access.kind.value} {access.location} (uid {access.uid})"
            )
        _, access = state
        if not access.committed:
            if access.nacks:
                cause = BLOCK_RESERVE_NACK
            elif access.missed:
                cause = BLOCK_COHERENCE_MISS
            else:
                cause = BLOCK_HIT
        else:
            cause = BLOCK_BUFFER_DRAIN if access.buffered else BLOCK_COUNTER_WAIT
        return (
            f"P{self.proc_id}: blocked on {cause} for "
            f"{access.kind.value} {access.location} (uid {access.uid})"
        )

    def read_values_in_program_order(self) -> List[Value]:
        """Values returned by this processor's read components, po order."""
        return [a.value_read for a in self.accesses if a.has_read and a.committed]
