"""Human-readable reports: access tables and ASCII timelines for runs.

:func:`access_table` lists every access with its generate / commit /
globally-performed timestamps; :func:`timeline` draws the same data as
per-processor lanes, which makes the paper's Figure-3 asymmetry literally
visible: under Definition 1 the releasing processor's lane has a gap
(gate stall) before its Unset, under the Section-5.3 implementation it
does not.

Legend for timeline bars::

    .  waiting at a generation gate (policy stall)
    -  generated, not yet committed (in the memory system)
    =  committed, not yet globally performed
    G  globally performed (single mark)
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.types import OpKind
from repro.sim.access import AccessRecord
from repro.sim.system import MachineRun

_KIND_TAG = {
    OpKind.DATA_READ: "R ",
    OpKind.DATA_WRITE: "W ",
    OpKind.SYNC_READ: "Sr",
    OpKind.SYNC_WRITE: "Sw",
    OpKind.SYNC_RMW: "S*",
}


def access_table(run: MachineRun) -> str:
    """All accesses of a run as a fixed-width table."""
    lines = [
        f"{'proc':<6}{'#':<4}{'op':<4}{'loc':<8}{'read':<6}{'write':<7}"
        f"{'gen':<7}{'commit':<8}{'gp':<6}"
    ]
    lines.append("-" * len(lines[0]))
    for proc, accesses in enumerate(run.raw_accesses):
        for access in accesses:
            lines.append(
                f"P{proc:<5}{access.uid:<4}"
                f"{_KIND_TAG[access.kind]:<4}"
                f"{access.location:<8}"
                f"{_fmt(access.value_read):<6}"
                f"{_fmt(access.write_value if access.has_write else None):<7}"
                f"{_fmt(access.generate_time):<7}"
                f"{_fmt(access.commit_time):<8}"
                f"{_fmt(access.gp_time):<6}"
            )
    return "\n".join(lines)


def _fmt(value: Optional[int]) -> str:
    return "-" if value is None else str(value)


def timeline(run: MachineRun, width: int = 72) -> str:
    """ASCII per-access lanes, scaled to ``width`` columns."""
    total = max(run.cycles, 1)
    scale = width / total

    def col(time: Optional[int]) -> Optional[int]:
        if time is None:
            return None
        return min(width - 1, int(time * scale))

    lines = [
        f"timeline: {run.program.name} on {run.policy_name} "
        f"({run.cycles} cycles, 1 col ~ {total / width:.1f} cy)"
    ]
    for proc, accesses in enumerate(run.raw_accesses):
        lines.append(f"P{proc}:")
        for access in accesses:
            lane = [" "] * width
            gen, commit, gp = (
                col(access.generate_time),
                col(access.commit_time),
                col(access.gp_time),
            )
            if gen is not None and commit is not None:
                for i in range(gen, commit):
                    lane[i] = "-"
            if commit is not None:
                end = gp if gp is not None else commit
                for i in range(commit, end):
                    lane[i] = "="
            if gp is not None:
                lane[gp] = "G"
            elif commit is not None:
                lane[commit] = "="
            label = f"  {_KIND_TAG[access.kind]}{access.location:<7}"
            lines.append(label + "|" + "".join(lane) + "|")
    return "\n".join(lines)


def summarize(run: MachineRun) -> str:
    """One-paragraph run summary with stall and traffic statistics."""
    lines = [
        f"program {run.program.name!r} on {run.policy_name}: "
        f"{run.cycles} cycles, {run.messages_sent} messages",
    ]
    for proc, stats in enumerate(run.proc_stats):
        cache = (
            run.cache_stats[proc]
            if proc < len(run.cache_stats) and run.cache_stats
            else None
        )
        cache_part = (
            f", hits={cache['hits']} misses={cache['misses']}"
            f" evictions={cache['evictions']}"
            if cache
            else ""
        )
        lines.append(
            f"  P{proc}: {stats.accesses_generated} accesses, "
            f"gate-stall={stats.gate_stall_cycles}cy "
            f"block-stall={stats.block_stall_cycles}cy, "
            f"halt@{stats.halt_time}{cache_part}"
        )
    if run.directory_stats:
        lines.append(
            f"  directory: {run.directory_stats['requests']} requests, "
            f"{run.directory_stats['invalidations']} invalidations"
        )
    return "\n".join(lines)
