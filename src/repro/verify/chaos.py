"""Chaos harness: the paper's verdicts must survive a hostile memory system.

Definition 2 is a statement about *results*, not timings: a policy either
keeps DRF0 programs inside the SC result set or it does not.  A correct
reproduction therefore has an invariance obligation -- perturbing the
hardware in any way that preserves message delivery (jitter, reordering,
duplication, transport retries, forced evictions, slowed counters) must
move cycle counts but never move a verdict.  And perturbations that
*break* delivery (dropped messages) must be caught by the liveness
machinery with a diagnosis, not hang the process.

:func:`chaos_sweep` runs both halves:

* every **delivery-preserving** fault plan re-runs the full Definition-2
  sweep and diffs its verdict map against the fault-free baseline;
* every **delivery-violating** plan probes individual hardware runs and
  checks each one either completes or raises a
  :class:`~repro.sim.system.LivenessError` carrying per-processor
  stall-cause diagnoses.

The report renders as text (the ``repro chaos`` subcommand) and as JSON
(the CI artifact).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.faults import (
    DELIVERY_PRESERVING_PLANS,
    DELIVERY_VIOLATING_PLANS,
    FaultPlan,
)
from repro.sim.system import LivenessError, SystemConfig, run_on_hardware
from repro.verify.cache import DRF0VerdictCache, SCVerdictCache
from repro.verify.engine import VerificationEngine

#: Default litmus selection: covers the contract's load-bearing shapes
#: (synchronized message passing, store buffering, unsynchronized racing).
DEFAULT_PROGRAMS = ("MP", "MP+sync", "SB", "SB+sync")
QUICK_PROGRAMS = ("MP+sync", "SB")

DEFAULT_POLICIES = (
    "sc",
    "definition1",
    "adve-hill",
    "adve-hill-drf1",
    "release-consistency",
    "relaxed",
)
QUICK_POLICIES = ("sc", "adve-hill", "relaxed")

QUICK_PRESERVING = ("jitter-heavy", "reorder", "duplicate", "kitchen-sink")


@dataclass
class PlanOutcome:
    """What one fault plan did to the sweep."""

    plan: str
    delivery_preserving: bool
    runs: int = 0
    #: Preserving plans: did the verdict map equal the baseline's?
    verdicts_match: Optional[bool] = None
    mismatches: List[str] = field(default_factory=list)
    #: Violating plans: probe runs flagged by the liveness machinery vs.
    #: runs that completed anyway (a violation that never bit).
    flagged: int = 0
    completed: int = 0
    #: Anything that escaped as a non-LivenessError is a harness bug.
    unexpected_errors: List[str] = field(default_factory=list)
    sample_diagnoses: List[str] = field(default_factory=list)
    #: Injector counters sampled from probe runs (proof faults fired).
    fault_events: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        if self.delivery_preserving:
            return bool(self.verdicts_match)
        return (
            not self.unexpected_errors
            and self.flagged > 0
        )


@dataclass
class ChaosReport:
    """Outcome of a full chaos sweep."""

    programs: List[str]
    policies: List[str]
    seeds: int
    #: "program/policy" -> (drf0, appears_sc) from the fault-free sweep.
    baseline_verdicts: Dict[str, Tuple[bool, bool]]
    outcomes: List[PlanOutcome] = field(default_factory=list)

    @property
    def invariance_holds(self) -> bool:
        """Every delivery-preserving plan reproduced the baseline map."""
        return all(
            o.ok for o in self.outcomes if o.delivery_preserving
        )

    @property
    def watchdog_sound(self) -> bool:
        """Every delivery-violating probe was flagged cleanly, never hung
        or escaped with a foreign traceback."""
        return all(
            o.ok for o in self.outcomes if not o.delivery_preserving
        )

    @property
    def ok(self) -> bool:
        return self.invariance_holds and self.watchdog_sound

    def render(self) -> str:
        lines = [
            "chaos resilience report",
            "=======================",
            f"suite: {len(self.programs)} programs x "
            f"{len(self.policies)} policies x {self.seeds} seeds "
            f"({', '.join(self.programs)})",
            "",
            "delivery-preserving plans (verdicts must not move):",
        ]
        for outcome in self.outcomes:
            if not outcome.delivery_preserving:
                continue
            verdict = "MATCH" if outcome.verdicts_match else "MISMATCH"
            events = sum(outcome.fault_events.values())
            lines.append(
                f"  {outcome.plan:<18} {verdict:<9} "
                f"({events} fault events sampled)"
            )
            for mismatch in outcome.mismatches:
                lines.append(f"      !! {mismatch}")
        lines.append("")
        lines.append(
            "delivery-violating plans (liveness machinery must flag, "
            "not hang):"
        )
        for outcome in self.outcomes:
            if outcome.delivery_preserving:
                continue
            lines.append(
                f"  {outcome.plan:<18} {outcome.flagged}/{outcome.runs} "
                f"probes flagged, {outcome.completed} completed"
            )
            for diag in outcome.sample_diagnoses:
                lines.append(f"      {diag}")
            for err in outcome.unexpected_errors:
                lines.append(f"      !! unexpected: {err}")
        lines.append("")
        lines.append(
            "verdict invariance: "
            + ("HOLDS" if self.invariance_holds else "BROKEN")
        )
        lines.append(
            "liveness detection: "
            + ("SOUND" if self.watchdog_sound else "BROKEN")
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "programs": self.programs,
            "policies": self.policies,
            "seeds": self.seeds,
            "baseline_verdicts": {
                key: {"drf0": drf0, "appears_sc": sc}
                for key, (drf0, sc) in sorted(self.baseline_verdicts.items())
            },
            "plans": [
                {
                    "plan": o.plan,
                    "delivery_preserving": o.delivery_preserving,
                    "runs": o.runs,
                    "verdicts_match": o.verdicts_match,
                    "mismatches": o.mismatches,
                    "flagged": o.flagged,
                    "completed": o.completed,
                    "unexpected_errors": o.unexpected_errors,
                    "sample_diagnoses": o.sample_diagnoses,
                    "fault_events": o.fault_events,
                    "ok": o.ok,
                }
                for o in self.outcomes
            ],
            "invariance_holds": self.invariance_holds,
            "watchdog_sound": self.watchdog_sound,
            "ok": self.ok,
        }


def _verdict_map(evidence) -> Dict[str, Tuple[bool, bool]]:
    return {
        f"{row['program']}/{row['policy']}": (
            bool(row["program_drf0"]),
            bool(row["appears_sc"]),
        )
        for row in evidence.rows
    }


def chaos_sweep(
    program_names: Optional[Sequence[str]] = None,
    policy_names: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = range(10),
    config: Optional[SystemConfig] = None,
    jobs: Optional[int] = 1,
    quick: bool = False,
    watchdog_cycles: int = 20_000,
    preserving_plans: Optional[Sequence[str]] = None,
    violating_plans: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    cache_dir: Optional[str] = None,
    monitor=None,
) -> ChaosReport:
    """Run the full chaos suite and return its report.

    ``quick`` shrinks every axis (programs, policies, plans, seeds) to a
    CI-smoke-sized subset.  SC and DRF0 verdict caches are shared across
    all plans: an SC judgment is keyed by (program, result) and is
    fault-plan-independent, so the baseline pays for the oracle and every
    plan after it mostly re-proves hardware behavior.  ``cache_dir``
    additionally attaches one shared persistent
    :class:`~repro.verify.store.VerdictStore`, so a *second* chaos run
    skips the oracle entirely and reuses per-plan hardware summaries
    (the run keys include the fault plan via the config repr, so plans
    never cross-contaminate).

    ``monitor`` (a :class:`~repro.obs.progress.CampaignMonitor`) makes
    the suite watchable: the chaos harness claims the campaign plan --
    one unit per sweep plan plus one per violating-plan probe -- and the
    per-plan engines share the monitor for heartbeats without re-planning
    it (their :meth:`claim_plan` returns ``False``).
    """
    from repro.hw import POLICY_FACTORIES
    from repro.litmus.catalog import by_name

    if program_names is None:
        program_names = QUICK_PROGRAMS if quick else DEFAULT_PROGRAMS
    if policy_names is None:
        policy_names = QUICK_POLICIES if quick else DEFAULT_POLICIES
    if preserving_plans is None:
        preserving_plans = (
            QUICK_PRESERVING if quick else tuple(DELIVERY_PRESERVING_PLANS)
        )
    if violating_plans is None:
        violating_plans = tuple(DELIVERY_VIOLATING_PLANS)
    if quick:
        seeds = range(min(6, len(list(seeds)) or 6))
    seeds = list(seeds)
    config = config or SystemConfig()
    say = progress if progress is not None else (lambda _msg: None)

    programs = [by_name(name).program for name in program_names]
    factories = {name: POLICY_FACTORIES[name] for name in policy_names}

    sc_cache = SCVerdictCache()
    drf0_cache = DRF0VerdictCache()
    store = None
    if cache_dir is not None:
        from repro.verify.store import VerdictStore

        store = VerdictStore(cache_dir)
        store.load()

    def engine() -> VerificationEngine:
        return VerificationEngine(
            jobs=jobs, sc_cache=sc_cache, drf0_cache=drf0_cache, store=store,
            monitor=monitor,
        )

    probe_seeds = seeds[:2] or [0]
    probes_per_plan = len(programs) * len(factories) * len(probe_seeds)
    owns_plan = monitor is not None and monitor.claim_plan()
    if owns_plan:
        monitor.plan(
            [("baseline", 1, 0.0)]
            + [(f"plan/{name}", 1, 0.0) for name in preserving_plans]
            + [
                (f"probe/{name}", probes_per_plan, 0.0)
                for name in violating_plans
            ]
        )
        monitor.poll(force=True)

    def plan_tick(cell: int, units: int = 1) -> None:
        if owns_plan:
            monitor.unit_done(cell, units)
            monitor.poll()

    say("baseline sweep (no faults)")
    baseline = _verdict_map(
        engine().definition2_sweep(programs, factories, config, seeds=seeds)
    )
    plan_tick(0)

    report = ChaosReport(
        programs=list(program_names),
        policies=list(policy_names),
        seeds=len(seeds),
        baseline_verdicts=baseline,
    )

    for plan_index, plan_name in enumerate(preserving_plans):
        plan = DELIVERY_PRESERVING_PLANS[plan_name]
        say(f"plan {plan_name} (delivery-preserving)")
        outcome = PlanOutcome(plan=plan_name, delivery_preserving=True)
        cfg = replace(
            config, fault_plan=plan, watchdog_cycles=watchdog_cycles
        )
        faulted = _verdict_map(
            engine().definition2_sweep(programs, factories, cfg, seeds=seeds)
        )
        outcome.runs = len(programs) * len(factories) * len(seeds)
        outcome.verdicts_match = faulted == baseline
        for key in sorted(baseline):
            if faulted.get(key) != baseline[key]:
                outcome.mismatches.append(
                    f"{key}: baseline {baseline[key]} vs {faulted.get(key)}"
                )
        outcome.fault_events = _sample_fault_events(
            programs[0], factories[policy_names[0]], cfg, seeds[:2]
        )
        report.outcomes.append(outcome)
        plan_tick(1 + plan_index)

    for probe_index, plan_name in enumerate(violating_plans):
        plan = DELIVERY_VIOLATING_PLANS[plan_name]
        say(f"plan {plan_name} (delivery-violating)")
        outcome = PlanOutcome(plan=plan_name, delivery_preserving=False)
        cfg = replace(
            config, fault_plan=plan, watchdog_cycles=watchdog_cycles
        )
        probe_cell = 1 + len(preserving_plans) + probe_index
        for program in programs:
            for name, factory in factories.items():
                for seed in probe_seeds:
                    outcome.runs += 1
                    try:
                        run_on_hardware(
                            program, factory(), cfg.with_seed(seed)
                        )
                    except LivenessError as exc:
                        outcome.flagged += 1
                        if len(outcome.sample_diagnoses) < 3:
                            outcome.sample_diagnoses.append(
                                f"{program.name}/{name}: "
                                f"{type(exc).__name__}: "
                                + (exc.stuck[0] if exc.stuck else str(exc))
                            )
                    except Exception as exc:  # noqa: BLE001 -- harness audit
                        outcome.unexpected_errors.append(
                            f"{program.name}/{name} seed {seed}: "
                            f"{type(exc).__name__}: {exc}"
                        )
                    else:
                        outcome.completed += 1
                    plan_tick(probe_cell)
        report.outcomes.append(outcome)

    if store is not None:
        store.close()
    return report


def _sample_fault_events(
    program, factory, cfg: SystemConfig, seeds: Sequence[int]
) -> Dict[str, int]:
    """Sum injector counters over a few probe runs (RunSummary does not
    carry them through the engine, and two runs are plenty as evidence
    that the plan actually fired)."""
    totals: Dict[str, int] = {}
    for seed in seeds:
        run = run_on_hardware(program, factory(), cfg.with_seed(seed))
        for key, value in run.fault_stats.items():
            totals[key] = totals.get(key, 0) + value
    return totals


# -- service kill-chaos -------------------------------------------------

def _daemon_entry(
    state_dir: str, workers: int, task_timeout: float, hb_interval: float
) -> None:
    """Child-process body: run a campaign daemon until it drains."""
    from repro.service.daemon import CampaignDaemon

    daemon = CampaignDaemon(
        state_dir,
        port=0,
        workers=workers,
        task_timeout=task_timeout,
        hb_interval=hb_interval,
    )
    daemon.serve_forever()


def service_kill_chaos(
    state_dir: str,
    program_names: Sequence[str] = ("MP+sync", "SB"),
    policy_names: Sequence[str] = ("sc", "adve-hill"),
    seeds: int = 4,
    drf0_seeds: int = 4,
    worker_kills: int = 2,
    daemon_restart: bool = True,
    workers: int = 2,
    task_timeout: float = 30.0,
    timeout: float = 300.0,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Process-level chaos: the daemon's evidence must survive murder.

    The fault-plan chaos above perturbs the *simulated* memory system;
    this half perturbs the *service* itself.  A campaign is submitted to
    a real daemon with ``worker_kills`` crash failpoints armed
    (``{"task_kind": "run", "mode": "crash"}`` -- each kills one fleet
    worker mid-task, exactly once, token-claimed across the fleet), and
    -- with ``daemon_restart`` -- the daemon process is SIGKILLed the
    moment the first worker dies, then restarted on the same state
    directory to resume the campaign from its checkpoint journal.

    The invariance obligation is the same as every other chaos axis:
    the final evidence rows must be byte-identical (as canonical JSON)
    to a plain in-process serial sweep of the same spec.  The returned
    report also carries the ``engine.service.*`` counters so callers can
    assert the recovery machinery actually engaged (worker crashes
    reaped, leases reclaimed, retries charged) rather than the kills
    having silently missed.
    """
    import multiprocessing
    import signal as signal_mod

    from repro.service.campaigns import resolve_policies, resolve_program
    from repro.service.client import ServiceClient, ServiceError

    say = progress if progress is not None else (lambda _msg: None)
    deadline = time.monotonic() + timeout
    os.makedirs(state_dir, exist_ok=True)
    token_dir = os.path.join(state_dir, "chaos-tokens")
    os.makedirs(token_dir, exist_ok=True)
    tokens = [
        os.path.join(token_dir, f"kill-{index}")
        for index in range(worker_kills)
    ]
    for token in tokens:
        try:
            os.unlink(token)
        except OSError:
            pass

    spec = {
        "programs": list(program_names),
        "policies": list(policy_names),
        "seeds": int(seeds),
        "drf0_seeds": int(drf0_seeds),
        "failpoints": [
            {"task_kind": "run", "mode": "crash", "token": token}
            for token in tokens
        ],
    }

    say("serial baseline sweep (no daemon, no kills)")
    programs = [resolve_program(name) for name in program_names]
    factories = resolve_policies(list(policy_names))
    baseline = VerificationEngine(jobs=1).definition2_sweep(
        programs,
        factories,
        SystemConfig(),
        seeds=range(int(seeds)),
        drf0_seeds=range(int(drf0_seeds)),
    )
    baseline_blob = json.dumps(baseline.rows, sort_keys=True)

    ctx = multiprocessing.get_context("fork")
    endpoint_path = os.path.join(state_dir, "endpoint.json")

    def start_daemon():
        proc = ctx.Process(
            target=_daemon_entry,
            args=(state_dir, workers, task_timeout, 0.05),
        )
        proc.start()
        while time.monotonic() < deadline:
            try:
                with open(endpoint_path, "r", encoding="utf-8") as handle:
                    endpoint = json.load(handle)
                if endpoint.get("pid") == proc.pid:
                    return proc, ServiceClient(
                        endpoint.get("host", "127.0.0.1"), endpoint["port"]
                    )
            except (OSError, ValueError, KeyError):
                pass
            if not proc.is_alive():
                raise RuntimeError("campaign daemon died during startup")
            time.sleep(0.05)
        proc.terminate()
        raise RuntimeError("campaign daemon did not bind in time")

    say("starting the campaign daemon")
    proc, client = start_daemon()
    restarts = 0
    try:
        accepted = client.submit_with_backoff(spec)
        cid = accepted["id"]
        say(f"campaign {cid} submitted ({worker_kills} worker kills armed)")
        if daemon_restart:
            while not any(os.path.exists(token) for token in tokens):
                if time.monotonic() >= deadline:
                    raise RuntimeError(
                        "no worker kill fired before the chaos deadline"
                    )
                if not proc.is_alive():
                    raise RuntimeError("daemon died before any worker kill")
                time.sleep(0.02)
            say("first worker kill observed; SIGKILLing the daemon")
            os.kill(proc.pid, signal_mod.SIGKILL)
            proc.join(timeout=10.0)
            restarts += 1
            say("restarting the daemon on the same state directory")
            proc, client = start_daemon()
        info = client.wait(
            cid, timeout=max(1.0, deadline - time.monotonic())
        )
        if info.get("state") != "done":
            raise RuntimeError(
                f"campaign ended {info.get('state')!r}: "
                f"{info.get('error', 'no error recorded')}"
            )
        result = client.result(cid)
        say("draining the daemon")
        try:
            client.shutdown()
        except ServiceError:
            pass
        proc.join(timeout=30.0)
    finally:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=10.0)

    fired = sum(1 for token in tokens if os.path.exists(token))
    rows_identical = (
        json.dumps(result["rows"], sort_keys=True) == baseline_blob
    )
    metric_counters = (result.get("metrics") or {}).get("counters") or {}
    service_metrics = {
        key: value
        for key, value in metric_counters.items()
        if key.startswith("engine.service.")
    }
    return {
        "campaign": cid,
        "signature": result.get("signature"),
        "programs": list(program_names),
        "policies": list(policy_names),
        "seeds": int(seeds),
        "worker_kills_requested": worker_kills,
        "worker_kills_fired": fired,
        "daemon_restarts": restarts,
        "resumed_after_restart": bool(result.get("resumed")),
        "rows_identical_to_serial": rows_identical,
        "contract_holds": result.get("contract_holds"),
        "baseline_contract_holds": baseline.contract_holds,
        "service": dict(result.get("service") or {}),
        "service_metrics": service_metrics,
        "ok": (
            rows_identical
            and fired >= worker_kills
            and bool(result.get("contract_holds"))
            == bool(baseline.contract_holds)
            and (
                not daemon_restart
                or (restarts >= 1 and bool(result.get("resumed")))
            )
        ),
    }
