"""Persistent content-addressed verdict store: cross-run, cross-worker reuse.

The Definition-2 contract check is the hot path of every sweep, fuzz and
chaos run, and its verdicts are pure functions of program *content*: an
SC-membership judgment depends only on (program, result), a DRF0 verdict
only on (program, mode), a hardware run summary only on (program, policy,
config, seed).  The in-memory caches (:mod:`repro.verify.cache`) already
exploit that within one process; this module makes the verdict universe
survive the process.

On-disk layout (one directory, the CLI's ``--cache-dir``)::

    <cache_dir>/
        seg-<pid>-<n>.jsonl     append-only segments, one per writer
        quarantine/             segments that failed integrity checks

Each segment is JSONL.  Line 1 is a header naming the store format and the
**semantics version** -- a stamp over the oracle semantics (bump
:data:`SEMANTICS_VERSION` whenever the SC enumerator, the DRF0 checker, or
the hardware simulator changes observable behavior); a segment written
under a different semantics version is *stale* and silently skipped, so a
semantics change means a cold start, never a wrong warm verdict.  Every
subsequent line is one record -- an SC verdict, a DRF0 verdict, a run
summary, a cost observation, or a serialized program (kept so ``repro
cache audit`` can re-judge stored verdicts offline) -- carrying the same
truncated-SHA-256 line checksum the checkpoint journal uses.

Integrity discipline (matching ``verify/cache.py`` / ``verify/journal.py``):

* a checksum-failing or unparsable **tail** line is a torn write (the
  writer was killed mid-append): dropped and counted, the segment stays;
* a bad line **before** the tail is real corruption: the surviving records
  are salvaged for this load, and the segment file is moved to
  ``quarantine/`` so the damage is never trusted again;
* a segment whose header is missing or unreadable is quarantined whole --
  without a trusted semantics stamp none of its verdicts are safe.

Concurrency: every writer appends to its **own** ``O_CREAT|O_EXCL``
segment, so any number of processes may flush into one cache directory
with no locking; readers see each record exactly once because loading
deduplicates by content key.  :meth:`VerdictStore.compact` folds all
live segments (and drops stale/duplicate records) into a single fresh
segment -- run it from the ``repro cache compact`` subcommand, not while
a sweep is writing.

Cost records make the store a scheduler input as well as a memo: each
flush of a sweep cell records the observed wall time, run count and
explored-state count under a ``(program fingerprint, policy)`` cell key,
and the engine sorts the next sweep's dispatch longest-expected-first
with finer chunking for expensive cells (tail-latency control on skewed
grids).  Costs are advisory -- they never change any output, only the
order work is issued in.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.contract import is_sc_result
from repro.core.execution import Result
from repro.core.types import Condition
from repro.machine import isa
from repro.machine.program import Program, ThreadCode
from repro.verify.cache import program_fingerprint
from repro.verify.journal import decode_result, encode_result

#: Bump when any oracle the stored verdicts depend on changes observable
#: behavior: the guided SC-membership search, the DRF0 checkers, the
#: hardware simulator, or the Result encoding.  A mismatch is a cold
#: start -- stale segments are skipped, never reinterpreted.
SEMANTICS_VERSION = "d2-oracle-1"

#: On-disk segment layout version (header schema + record schemas).
STORE_FORMAT = 1

_SEGMENT_PREFIX = "seg-"
_QUARANTINE_DIR = "quarantine"


class StoreError(RuntimeError):
    """The store directory cannot be used (not a directory, unwritable)."""


def _line_checksum(payload: str) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Program serialization (for offline audit)
# ----------------------------------------------------------------------


def encode_instruction(instr: isa.Instruction) -> list:
    """JSON-safe [class name, field dict] form of one instruction."""
    fields = {}
    for f in dataclasses.fields(instr):
        value = getattr(instr, f.name)
        if isinstance(value, enum.Enum):
            value = ["__enum__", type(value).__name__, value.name]
        fields[f.name] = value
    return [type(instr).__name__, fields]


def decode_instruction(data: list) -> isa.Instruction:
    name, fields = data
    cls = getattr(isa, name, None)
    if cls is None or not (
        isinstance(cls, type) and issubclass(cls, isa.Instruction)
    ):
        raise ValueError(f"unknown instruction class {name!r}")
    decoded = {}
    for key, value in fields.items():
        if isinstance(value, list) and value and value[0] == "__enum__":
            _, enum_name, member = value
            if enum_name != "Condition":
                raise ValueError(f"unknown enum {enum_name!r}")
            value = Condition[member]
        decoded[key] = value
    return cls(**decoded)


def encode_program(program: Program) -> dict:
    """Content-complete JSON form of a program (display name excluded,
    exactly like :func:`program_fingerprint`)."""
    return {
        "threads": [
            {
                "instrs": [
                    encode_instruction(i) for i in code.instructions
                ],
                "labels": sorted(code.labels.items()),
            }
            for code in program.threads
        ],
        "mem": sorted(program.initial_memory.items()),
    }


def decode_program(data: dict, name: str = "stored-program") -> Program:
    threads = tuple(
        ThreadCode(
            tuple(decode_instruction(i) for i in thread["instrs"]),
            {label: index for label, index in thread["labels"]},
        )
        for thread in data["threads"]
    )
    memory = {loc: value for loc, value in data["mem"]}
    return Program(threads, memory, name)


# ----------------------------------------------------------------------
# Content keys
# ----------------------------------------------------------------------


def run_key(
    fingerprint: str, policy_name: str, config_repr: str, check_51: bool
) -> str:
    """Content key of a hardware run summary.

    ``config_repr`` must be the repr of the config *with the seed
    applied* -- the run is a pure function of exactly these four inputs.
    ``check_51`` is included because it adds condition-violation strings
    to the summary.
    """
    return hashlib.sha256(
        repr((fingerprint, policy_name, config_repr, bool(check_51))).encode()
    ).hexdigest()[:40]


def cell_key(fingerprint: str, policy_name: str) -> str:
    """Cost-record key for one (program, policy) sweep cell."""
    return f"{fingerprint[:40]}:{policy_name}"


def drf0_mode_to_json(mode: object) -> object:
    """The DRF0 cache's mode token -> JSON ("exhaustive" | ["sampled", [...]])."""
    if mode == "exhaustive":
        return "exhaustive"
    tag, seeds = mode
    return [tag, list(seeds)]


def drf0_mode_from_json(data: object) -> object:
    if data == "exhaustive":
        return "exhaustive"
    tag, seeds = data
    if tag != "sampled":
        raise ValueError(f"unknown drf0 mode {tag!r}")
    return (tag, tuple(int(s) for s in seeds))


# ----------------------------------------------------------------------
# Loaded state + counters
# ----------------------------------------------------------------------


@dataclass
class CellCost:
    """Accumulated observed cost of one (program, policy) sweep cell."""

    runs: int = 0
    wall_us: int = 0
    states: int = 0

    @property
    def us_per_run(self) -> float:
        """Expected wall microseconds per hardware seed (the scheduling
        signal; 0.0 when the cell has never been observed)."""
        return self.wall_us / self.runs if self.runs else 0.0


@dataclass
class StoreStats:
    """Counters for one store's lifetime in this process.

    Load-side counters describe what was found on disk; flush-side
    counters describe what this process added.  ``runs_reused`` is
    bumped by the engine each time a sweep position is filled from a
    stored run summary instead of a hardware run.
    """

    segments_loaded: int = 0
    stale_segments: int = 0
    quarantined_segments: int = 0
    dropped_lines: int = 0
    loaded_sc: int = 0
    loaded_drf0: int = 0
    loaded_runs: int = 0
    loaded_costs: int = 0
    loaded_programs: int = 0
    flushed_sc: int = 0
    flushed_drf0: int = 0
    flushed_runs: int = 0
    flushed_costs: int = 0
    flushed_programs: int = 0
    duplicate_flushes_skipped: int = 0
    runs_reused: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }


@dataclass
class StoreState:
    """Everything recovered from a cache directory's live segments."""

    #: (program fingerprint, Result) -> SC verdict.
    sc: Dict[Tuple[str, Result], bool] = field(default_factory=dict)
    #: (program fingerprint, mode token) -> DRF0 verdict.
    drf0: Dict[Tuple[str, object], bool] = field(default_factory=dict)
    #: run_key -> encoded RunSummary dict.
    runs: Dict[str, dict] = field(default_factory=dict)
    #: cell_key -> accumulated cost.
    costs: Dict[str, CellCost] = field(default_factory=dict)
    #: program fingerprint -> decoded Program (for audit).
    programs: Dict[str, Program] = field(default_factory=dict)


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------


class VerdictStore:
    """One cache directory of verdict segments.

    The instance is both a reader (:meth:`load` / :meth:`warm`) and an
    appending writer (the ``record_*`` methods, which lazily create this
    process's own segment).  All ``record_*`` calls deduplicate against
    the loaded state, so re-flushing a warm cache writes nothing.
    """

    def __init__(
        self, cache_dir: str, semantics: str = SEMANTICS_VERSION
    ) -> None:
        self.cache_dir = cache_dir
        self.semantics = semantics
        self.stats = StoreStats()
        self._state: Optional[StoreState] = None
        self._fh = None
        os.makedirs(cache_dir, exist_ok=True)
        if not os.path.isdir(cache_dir):  # pragma: no cover - race only
            raise StoreError(f"{cache_dir!r} is not a directory")

    # -- loading -----------------------------------------------------------

    def _segment_paths(self) -> List[str]:
        return sorted(
            os.path.join(self.cache_dir, name)
            for name in os.listdir(self.cache_dir)
            if name.startswith(_SEGMENT_PREFIX) and name.endswith(".jsonl")
        )

    def _quarantine(self, path: str) -> None:
        """Move a damaged segment out of the live set (never delete --
        the bytes may matter for forensics)."""
        qdir = os.path.join(self.cache_dir, _QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        base = os.path.basename(path)
        target = os.path.join(qdir, base)
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = os.path.join(qdir, f"{base}.{suffix}")
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - unwritable dir: drop in place
            pass
        self.stats.quarantined_segments += 1

    @staticmethod
    def _parse_line(line: str) -> Optional[dict]:
        """One checksummed JSONL record, or None when it fails integrity."""
        try:
            record = json.loads(line)
            checksum = record.pop("c")
            payload = json.dumps(record, sort_keys=True)
            if checksum != _line_checksum(payload):
                return None
            return record
        except (ValueError, KeyError, TypeError, AttributeError):
            return None

    def _absorb(self, record: dict, state: StoreState) -> None:
        """Fold one body record into ``state`` (raises on schema drift --
        the caller treats that as a corrupt line)."""
        kind = record["kind"]
        if kind == "sc":
            key = (record["fp"], decode_result(record["result"]))
            if key not in state.sc:
                self.stats.loaded_sc += 1
            state.sc[key] = bool(record["v"])
        elif kind == "drf0":
            key = (record["fp"], drf0_mode_from_json(record["mode"]))
            if key not in state.drf0:
                self.stats.loaded_drf0 += 1
            state.drf0[key] = bool(record["v"])
        elif kind == "run":
            if record["k"] not in state.runs:
                self.stats.loaded_runs += 1
            state.runs[record["k"]] = record["s"]
        elif kind == "cost":
            cost = state.costs.setdefault(record["cell"], CellCost())
            cost.runs += int(record["n"])
            cost.wall_us += int(record["us"])
            cost.states += int(record["st"])
            self.stats.loaded_costs += 1
        elif kind == "prog":
            if record["fp"] not in state.programs:
                state.programs[record["fp"]] = decode_program(
                    record["p"], name=f"stored-{record['fp'][:12]}"
                )
                self.stats.loaded_programs += 1
        else:
            raise ValueError(f"unknown record kind {kind!r}")

    def load(self) -> StoreState:
        """Parse every live segment into a fresh :class:`StoreState`.

        Tolerant by design: torn tails are dropped, damaged segments are
        salvaged then quarantined, stale-semantics segments are skipped.
        An empty or missing directory is simply an empty state.
        """
        state = StoreState()
        for path in self._segment_paths():
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    lines = [ln for ln in fh.read().splitlines() if ln.strip()]
            except OSError:
                self._quarantine(path)
                continue
            if not lines:
                continue  # freshly created by a concurrent writer
            header = self._parse_line(lines[0])
            if (
                header is None
                or header.get("kind") != "meta"
                or "semantics" not in header
            ):
                self._quarantine(path)
                continue
            if (
                header["semantics"] != self.semantics
                or header.get("format") != STORE_FORMAT
            ):
                self.stats.stale_segments += 1
                continue
            damaged = False
            for index, line in enumerate(lines[1:], start=1):
                record = self._parse_line(line)
                if record is not None:
                    try:
                        self._absorb(record, state)
                        continue
                    except (ValueError, KeyError, TypeError):
                        pass  # well-checksummed but unusable: corruption
                self.stats.dropped_lines += 1
                if index != len(lines) - 1:
                    damaged = True  # corruption before the tail
            if damaged:
                self._quarantine(path)
            self.stats.segments_loaded += 1
        self._state = state
        return state

    def warm(self) -> StoreState:
        """The loaded state, loading on first call."""
        if self._state is None:
            self.load()
        assert self._state is not None
        return self._state

    # -- writing -----------------------------------------------------------

    def _open_segment(self):
        if self._fh is None:
            seq = 0
            while True:
                path = os.path.join(
                    self.cache_dir,
                    f"{_SEGMENT_PREFIX}{os.getpid()}-{seq}.jsonl",
                )
                try:
                    fd = os.open(
                        path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                    )
                    break
                except FileExistsError:
                    seq += 1
            self._fh = os.fdopen(fd, "w", encoding="utf-8")
            self._write(
                {
                    "kind": "meta",
                    "format": STORE_FORMAT,
                    "semantics": self.semantics,
                }
            )
        return self._fh

    def _write(self, record: dict) -> None:
        payload = json.dumps(record, sort_keys=True)
        record["c"] = _line_checksum(payload)
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def _append(self, record: dict) -> None:
        self._open_segment()
        self._write(record)

    def record_sc(
        self,
        fingerprint: str,
        result: Result,
        verdict: bool,
        program: Optional[Program] = None,
    ) -> None:
        """Persist one SC-membership verdict (and, once per fingerprint,
        the program body so the entry stays auditable offline)."""
        state = self.warm()
        if program is not None:
            self.record_program(fingerprint, program)
        if state.sc.get((fingerprint, result)) == bool(verdict):
            self.stats.duplicate_flushes_skipped += 1
            return
        state.sc[(fingerprint, result)] = bool(verdict)
        self._append(
            {
                "kind": "sc",
                "fp": fingerprint,
                "result": encode_result(result),
                "v": bool(verdict),
            }
        )
        self.stats.flushed_sc += 1

    def record_drf0(
        self,
        fingerprint: str,
        mode: object,
        verdict: bool,
        program: Optional[Program] = None,
    ) -> None:
        """Persist one DRF0 verdict under the cache's mode token."""
        state = self.warm()
        if program is not None:
            self.record_program(fingerprint, program)
        if state.drf0.get((fingerprint, mode)) == bool(verdict):
            self.stats.duplicate_flushes_skipped += 1
            return
        state.drf0[(fingerprint, mode)] = bool(verdict)
        self._append(
            {
                "kind": "drf0",
                "fp": fingerprint,
                "mode": drf0_mode_to_json(mode),
                "v": bool(verdict),
            }
        )
        self.stats.flushed_drf0 += 1

    def record_run(self, key: str, summary: dict) -> None:
        """Persist one encoded hardware-run summary under its content key."""
        state = self.warm()
        if key in state.runs:
            self.stats.duplicate_flushes_skipped += 1
            return
        state.runs[key] = summary
        self._append({"kind": "run", "k": key, "s": summary})
        self.stats.flushed_runs += 1

    def record_cost(
        self, cell: str, runs: int, wall_us: int, states: int = 0
    ) -> None:
        """Append one cost observation for a sweep cell (accumulative --
        records merge by summation at load time)."""
        if runs <= 0 and wall_us <= 0 and states <= 0:
            return
        state = self.warm()
        cost = state.costs.setdefault(cell, CellCost())
        cost.runs += runs
        cost.wall_us += wall_us
        cost.states += states
        self._append(
            {
                "kind": "cost",
                "cell": cell,
                "n": int(runs),
                "us": int(wall_us),
                "st": int(states),
            }
        )
        self.stats.flushed_costs += 1

    def record_program(self, fingerprint: str, program: Program) -> None:
        """Persist a program body once per fingerprint (audit support)."""
        state = self.warm()
        if fingerprint in state.programs:
            return
        state.programs[fingerprint] = program
        self._append(
            {"kind": "prog", "fp": fingerprint, "p": encode_program(program)}
        )
        self.stats.flushed_programs += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "VerdictStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- maintenance -------------------------------------------------------

    def compact(self) -> Tuple[int, int]:
        """Fold all live segments into one; returns (segments_before,
        records_after).  Stale-semantics and duplicate records are
        dropped; quarantined files are untouched.  Not safe to run
        concurrently with writers (CLI maintenance, not a sweep path).
        """
        self.close()
        old_paths = self._segment_paths()
        state = self.load()  # re-read from disk; also re-quarantines
        old_paths = [p for p in old_paths if os.path.exists(p)]
        records = 0
        self._open_segment()
        for fingerprint, program in state.programs.items():
            self._write(
                {
                    "kind": "prog",
                    "fp": fingerprint,
                    "p": encode_program(program),
                }
            )
            records += 1
        for (fingerprint, result), verdict in state.sc.items():
            self._write(
                {
                    "kind": "sc",
                    "fp": fingerprint,
                    "result": encode_result(result),
                    "v": verdict,
                }
            )
            records += 1
        for (fingerprint, mode), verdict in state.drf0.items():
            self._write(
                {
                    "kind": "drf0",
                    "fp": fingerprint,
                    "mode": drf0_mode_to_json(mode),
                    "v": verdict,
                }
            )
            records += 1
        for key, summary in state.runs.items():
            self._write({"kind": "run", "k": key, "s": summary})
            records += 1
        for cell, cost in state.costs.items():
            self._write(
                {
                    "kind": "cost",
                    "cell": cell,
                    "n": cost.runs,
                    "us": cost.wall_us,
                    "st": cost.states,
                }
            )
            records += 1
        self.close()
        for path in old_paths:
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - concurrent removal
                pass
        return len(old_paths), records

    def audit(
        self,
        sample: Optional[int] = None,
        oracle: Callable[[Program, Result], bool] = is_sc_result,
    ) -> "AuditReport":
        """Re-judge stored verdicts against the live oracle.

        SC entries are re-derived with ``oracle``; DRF0 entries with the
        exhaustive/sampled Definition-3 checkers.  Entries whose program
        body is missing (an older segment, a quarantined ``prog`` line)
        are counted unauditable, not failed.  ``sample`` bounds the total
        number of entries re-judged, chosen deterministically (evenly
        strided over the sorted key space) so repeated audits check the
        same entries.
        """
        from repro.core.drf0 import check_program, check_program_sampled

        state = self.warm()
        report = AuditReport()

        sc_keys = sorted(
            state.sc, key=lambda k: (k[0], repr(k[1]))
        )
        drf0_keys = sorted(
            state.drf0, key=lambda k: (k[0], repr(k[1]))
        )
        if sample is not None and sample >= 0:
            sc_budget = min(len(sc_keys), sample)
            drf0_budget = min(len(drf0_keys), max(0, sample - sc_budget))
            sc_keys = _stride_sample(sc_keys, sc_budget)
            drf0_keys = _stride_sample(drf0_keys, drf0_budget)

        for fingerprint, result in sc_keys:
            program = state.programs.get(fingerprint)
            if program is None:
                report.unauditable += 1
                continue
            report.checked += 1
            if oracle(program, result) != state.sc[(fingerprint, result)]:
                report.disagreements.append(
                    f"sc {fingerprint[:12]}.../{result}"
                )
        for fingerprint, mode in drf0_keys:
            program = state.programs.get(fingerprint)
            if program is None:
                report.unauditable += 1
                continue
            report.checked += 1
            if mode == "exhaustive":
                fresh = check_program(program).obeys
            else:
                fresh = check_program_sampled(program, seeds=mode[1]).obeys
            if fresh != state.drf0[(fingerprint, mode)]:
                report.disagreements.append(
                    f"drf0 {fingerprint[:12]}.../{mode}"
                )
        return report

    def summary(self) -> Dict[str, object]:
        """Stats for ``repro cache stats`` (loads if not yet loaded)."""
        state = self.warm()
        paths = self._segment_paths()
        return {
            "cache_dir": self.cache_dir,
            "semantics": self.semantics,
            "format": STORE_FORMAT,
            "segments": len(paths),
            "bytes": sum(os.path.getsize(p) for p in paths),
            "sc_verdicts": len(state.sc),
            "drf0_verdicts": len(state.drf0),
            "run_summaries": len(state.runs),
            "cost_cells": len(state.costs),
            "programs": len(state.programs),
            "stale_segments": self.stats.stale_segments,
            "quarantined_segments": self.stats.quarantined_segments,
            "dropped_lines": self.stats.dropped_lines,
        }


def _stride_sample(keys: list, budget: int) -> list:
    """Deterministic evenly-strided sample of ``budget`` keys."""
    if budget <= 0:
        return []
    if budget >= len(keys):
        return keys
    stride = len(keys) / budget
    return [keys[int(i * stride)] for i in range(budget)]


@dataclass
class AuditReport:
    """Outcome of :meth:`VerdictStore.audit`."""

    checked: int = 0
    unauditable: int = 0
    disagreements: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements


def store_program_fingerprint(program: Program) -> str:
    """Re-export of :func:`repro.verify.cache.program_fingerprint` (the
    store and the caches must always key by the same hash)."""
    return program_fingerprint(program)
