"""Lease-based task bookkeeping: the retry core the engine and daemon share.

The verification engine's resilient pool dispatch and the campaign
daemon's supervised worker fleet solve the same problem: hand pure tasks
to unreliable executors, notice when an executor times out, crashes, or
lies, and retry with a bounded budget before degrading to in-process
serial execution.  This module is that state machine, extracted from
``verify/engine.py``'s pool loop so both layers drive one implementation:

* :class:`BackoffPolicy` -- exponential backoff with deterministic
  jitter (hashed from ``(task, attempt)``, so two daemons replaying the
  same campaign sleep the same amounts -- no ``random`` state involved);
* :class:`TaskBoard` -- per-task lease generations, idempotent failure
  handling (a ``(task, generation)`` pair is charged **at most once**,
  the same exactly-once discipline ``StreamFold`` applies to telemetry
  task records), retry budgets, and the crash-credit rule below.

Crash credits (the timeout/crash interplay fix): a pooled task that
times out is abandoned and resubmitted, but the worker that held it is
usually still wedged on it -- and when that worker finally dies, the
naive rule "some worker died, resubmit everything in flight" charges the
*resubmitted* attempt a second failure for the same incident, burning
two units of retry budget (and one healthy in-flight dispatch) per
fault.  The board therefore banks one **crash credit** per timeout; a
subsequently observed worker death first consumes a credit (it is
attributed to the already-handled timeout) and only *unattributed*
deaths fail the in-flight leases.  A mis-attributed credit can only
delay recovery until the task's own timeout fires, never lose work --
and with no timeout configured no credits exist, so every death is
handled immediately.

Nothing here touches task *values*: completion is first-wins per task
(late duplicates are discarded), which preserves the engine's
bit-for-bit determinism contract -- tasks are pure, so whichever attempt
lands first carries the same value any other attempt would.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Terminal dispositions of a :meth:`TaskBoard.fail` call.
RETRY = "retry"
DEGRADE = "degrade"
STALE = "stale"


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic, content-hashed jitter.

    ``delay(task, attempt)`` grows as ``base * 2**(attempt-1)``, capped
    at ``ceiling``, then stretched by up to ``jitter`` (a fraction) using
    a hash of ``(task, attempt)`` -- deterministic, so replays and tests
    see identical schedules, but de-synchronized across tasks so a fleet
    of failed leases does not thunder back in lockstep.
    """

    base: float = 0.05
    ceiling: float = 2.0
    jitter: float = 0.25

    def delay(self, task: int, attempt: int) -> float:
        if self.base <= 0 or attempt <= 0:
            return 0.0
        raw = min(self.ceiling, self.base * (2 ** (attempt - 1)))
        if self.jitter <= 0:
            return raw
        digest = hashlib.sha256(f"{task}:{attempt}".encode()).digest()
        frac = digest[0] / 255.0
        return raw * (1.0 + self.jitter * frac)


@dataclass
class Lease:
    """One granted attempt of one task."""

    task: int
    gen: int
    granted_at: float = 0.0
    worker: Optional[str] = None


class TaskBoard:
    """Lease generations, retry budgets, and failure dedupe for N tasks.

    The board tracks *dispositions*, not values: callers dispatch leases
    it grants, report completions/failures, and read ``counters`` for
    the ``engine.service.*`` / ``engine.resilience.*`` metric surfaces.
    All methods are O(log n) or better; the board is single-threaded by
    design (both the engine session loop and the daemon supervisor own
    their board exclusively).
    """

    def __init__(
        self,
        n_tasks: int,
        max_retries: int = 2,
        backoff: Optional[BackoffPolicy] = None,
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        self.n_tasks = n_tasks
        self.max_retries = max(0, int(max_retries))
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.counters: Dict[str, int] = (
            counters if counters is not None else {}
        )
        #: (not_before, task) heap of retriable work.
        self._ready: List[Tuple[float, int]] = [
            (0.0, index) for index in range(n_tasks)
        ]
        heapq.heapify(self._ready)
        #: task -> current lease generation (0 = never granted).
        self._gens: Dict[int, int] = {}
        #: task -> attempts charged so far (failures, not grants).
        self.attempts: Dict[int, int] = {}
        #: (task, gen) pairs already failed -- the exactly-once dedupe.
        self._failed: Set[Tuple[int, int]] = set()
        self._done: Set[int] = set()
        #: Unconsumed timeout incidents (see module docstring).
        self.crash_credits = 0

    # -- introspection -------------------------------------------------

    def bump(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    @property
    def done_count(self) -> int:
        return len(self._done)

    @property
    def finished(self) -> bool:
        return len(self._done) >= self.n_tasks

    def is_done(self, task: int) -> bool:
        return task in self._done

    def pending_ready(self, now: float) -> bool:
        """Any retriable task whose backoff has elapsed?"""
        while self._ready and self._ready[0][1] in self._done:
            heapq.heappop(self._ready)
        return bool(self._ready) and self._ready[0][0] <= now

    def next_not_before(self) -> Optional[float]:
        """Earliest backoff deadline among queued tasks (None = empty)."""
        while self._ready and self._ready[0][1] in self._done:
            heapq.heappop(self._ready)
        return self._ready[0][0] if self._ready else None

    # -- lease lifecycle -----------------------------------------------

    def grant(self, now: float, worker: Optional[str] = None) -> Optional[Lease]:
        """Lease the next ready task, or ``None`` if nothing is due."""
        while self._ready:
            not_before, task = self._ready[0]
            if task in self._done:
                heapq.heappop(self._ready)
                continue
            if not_before > now:
                return None
            heapq.heappop(self._ready)
            gen = self._gens.get(task, 0) + 1
            self._gens[task] = gen
            return Lease(task=task, gen=gen, granted_at=now, worker=worker)
        return None

    def complete(self, task: int, gen: int) -> bool:
        """First completion wins; duplicates/stale attempts return False."""
        if task in self._done:
            self.bump("duplicate_completions")
            return False
        self._done.add(task)
        return True

    def fail(self, task: int, gen: int, kind: str, now: float) -> str:
        """Disposition one failed lease: RETRY, DEGRADE, or STALE.

        ``kind`` feeds the counters (``task_timeouts``, ``task_errors``,
        ``worker_crashes`` ...).  A ``(task, gen)`` pair is charged at
        most once -- a second failure report for the same lease (e.g. a
        timeout already handled, then the wedged worker's death blamed
        on the same task) is STALE: no budget burned, no resubmission.
        """
        if task in self._done:
            return STALE
        key = (task, gen)
        if key in self._failed or gen <= 0 or gen != self._gens.get(task, 0):
            # Already handled, or a failure report for a superseded
            # lease: the *current* lease is still live somewhere else.
            self.bump("stale_failures")
            return STALE
        self._failed.add(key)
        if kind:
            self.bump(kind)
        attempts = self.attempts.get(task, 0) + 1
        self.attempts[task] = attempts
        if attempts > self.max_retries:
            self.bump("degraded_to_serial")
            return DEGRADE
        self.bump("tasks_retried")
        delay = self.backoff.delay(task, attempts)
        if delay > 0:
            self.bump("backoff_scheduled")
        heapq.heappush(self._ready, (now + delay, task))
        return RETRY

    def requeue(self, task: int, now: float) -> None:
        """Put a task back without charging budget (e.g. a lease the
        caller could not dispatch at all)."""
        if task not in self._done:
            heapq.heappush(self._ready, (now, task))

    # -- crash attribution ---------------------------------------------

    def bank_crash_credit(self) -> None:
        """A timeout just fired: the worker holding it is presumed
        wedged, and its eventual death is already accounted for."""
        self.crash_credits += 1

    def consume_crash_credits(self, deaths: int) -> int:
        """Attribute ``deaths`` observed worker deaths to banked
        timeouts; returns how many deaths remain *unattributed* (only
        those should fail in-flight leases)."""
        if deaths <= 0:
            return 0
        consumed = min(deaths, self.crash_credits)
        self.crash_credits -= consumed
        if consumed:
            self.bump("crashes_attributed_to_timeouts", consumed)
        return deaths - consumed


def chunk_indices(items: Sequence, size: int) -> List[tuple]:
    """Balanced chunking (re-exported for the daemon; the engine keeps
    its own ``_balanced_chunks`` as the canonical copy)."""
    from repro.verify.engine import _balanced_chunks

    return _balanced_chunks(items, size)
