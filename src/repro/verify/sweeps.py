"""Empirical Definition-2 sweeps: hardware results vs the SC oracle.

The contract is checked the only way a contract can be checked against a
nondeterministic implementation without exhaustive model checking: run the
hardware across many nondeterminism seeds, collect the distinct results,
and test each against the exact guided SC-membership oracle
(:func:`repro.core.contract.is_sc_result`).  The SC side is exact; the
hardware side is sampled -- :class:`SweepReport.seeds_run` records the
evidence size.

These are the serial reference implementations.  The parallel engine
(:mod:`repro.verify.engine`) fans the same sweeps across a worker pool and
memoizes oracle verdicts; its output is bit-for-bit identical to the
functions here, which the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.core.contract import is_sc_result
from repro.core.drf0 import check_program, check_program_sampled
from repro.core.execution import Result
from repro.machine.program import Program
from repro.sim.system import SystemConfig, run_on_hardware
from repro.verify.conditions import check_conditions


@dataclass
class SweepReport:
    """Outcome of one (program, policy, config) contract sweep.

    ``mean_cycles`` averages over *all* seeds run (every run contributes a
    timing sample), while ``distinct_results`` counts deduplicated
    observable results -- the two denominators differ by design: timing is
    per run, SC-membership evidence is per distinct result.
    """

    program: Program
    policy_name: str
    seeds_run: int
    distinct_results: int
    non_sc_results: List[Result] = field(default_factory=list)
    condition_violations: List[str] = field(default_factory=list)
    mean_cycles: float = 0.0

    @property
    def appears_sc(self) -> bool:
        """True when every observed result had an idealized execution."""
        return not self.non_sc_results


def contract_sweep(
    program: Program,
    policy_factory: Callable[[], object],
    config: Optional[SystemConfig] = None,
    seeds: Sequence[int] = range(20),
    check_51_conditions: bool = False,
) -> SweepReport:
    """Run ``program`` across seeds and check every result against SC.

    With ``check_51_conditions`` the Section-5.1 runtime monitor also runs
    on each run (only meaningful for policies that claim those conditions,
    i.e. the Adve-Hill implementation).

    ``seeds`` may be any iterable, including a one-shot generator: it is
    materialized once at entry, so ``seeds_run`` always reports the true
    evidence size.
    """
    config = config or SystemConfig()
    seeds = list(seeds)
    seen: Set[Result] = set()
    non_sc: List[Result] = []
    condition_problems: List[str] = []
    cycles: List[int] = []
    policy_name: Optional[str] = None
    for seed in seeds:
        policy = policy_factory()
        if policy_name is None:
            policy_name = policy.name
        run = run_on_hardware(program, policy, config.with_seed(seed))
        cycles.append(run.cycles)
        if check_51_conditions:
            report = check_conditions(
                run, drf1_optimized=getattr(policy, "drf1_optimized", False)
            )
            if not report.ok:
                for cond, messages in report.violations.items():
                    condition_problems.extend(
                        f"seed {seed} {cond}: {m}" for m in messages
                    )
        if run.result in seen:
            continue
        seen.add(run.result)
        if not is_sc_result(program, run.result):
            non_sc.append(run.result)
    if policy_name is None:
        # No seeds ran; only then is a throwaway instantiation needed.
        policy_name = policy_factory().name
    return SweepReport(
        program=program,
        policy_name=policy_name,
        seeds_run=len(seeds),
        distinct_results=len(seen),
        non_sc_results=non_sc,
        condition_violations=condition_problems,
        mean_cycles=sum(cycles) / len(cycles) if cycles else 0.0,
    )


@dataclass
class Definition2Evidence:
    """Evidence table for Definition 2 over a program suite."""

    rows: List[Dict[str, object]] = field(default_factory=list)

    @property
    def contract_holds(self) -> bool:
        """No DRF0 program observed a non-SC result anywhere in the suite."""
        return all(
            row["appears_sc"] for row in self.rows if row["program_drf0"]
        )


def evidence_row(
    program: Program, drf0: bool, policy_name: str, report: SweepReport
) -> Dict[str, object]:
    """One :class:`Definition2Evidence` row.

    Shared by the serial sweep and the parallel engine so both paths
    produce byte-identical tables.
    """
    return {
        "program": program.name,
        "program_drf0": drf0,
        "policy": policy_name,
        "appears_sc": report.appears_sc,
        "distinct_results": report.distinct_results,
        "condition_violations": list(report.condition_violations),
        "mean_cycles": report.mean_cycles,
    }


def axiomatic_cross_check(
    program: Program, results: Iterable[Result]
) -> List[str]:
    """Re-judge observed results against the axiomatic SC set.

    For every result a sweep observed, the operational membership oracle
    (:func:`is_sc_result`, a guided state-space search) and the axiomatic
    solver's pinned target-mode query
    (:func:`repro.axiomatic.result_allowed`) must agree -- they are
    independent implementations of the same question.  Returns one
    message per disagreement; programs outside the axiomatic fragment
    (branches, arithmetic on read values) are skipped.
    """
    from repro.axiomatic import SCModel, UnsupportedProgram, result_allowed

    problems: List[str] = []
    model = SCModel()
    for result in results:
        operational = is_sc_result(program, result)
        try:
            axiomatic = result_allowed(program, model, result)
        except UnsupportedProgram:
            return []
        if operational != axiomatic:
            problems.append(
                f"{program.name}: operational SC oracle says "
                f"{operational}, axiomatic solver says {axiomatic} "
                f"for {result}"
            )
    return problems


def definition2_sweep(
    programs: Iterable[Program],
    policy_factories: Dict[str, Callable[[], object]],
    config: Optional[SystemConfig] = None,
    seeds: Sequence[int] = range(20),
    drf0_seeds: Sequence[int] = range(30),
    exhaustive_drf0: bool = False,
    check_51_conditions: bool = False,
) -> Definition2Evidence:
    """Sweep a suite of programs across policies, recording the evidence.

    Each row records whether the program obeys DRF0 (exhaustively, or
    sampled for programs too large to enumerate) and whether the policy
    appeared sequentially consistent on it.  With ``check_51_conditions``
    the Section-5.1 monitor runs on every hardware run and any violations
    are recorded in the row's ``condition_violations``.
    """
    evidence = Definition2Evidence()
    seeds = list(seeds)
    drf0_seeds = list(drf0_seeds)
    for program in programs:
        if exhaustive_drf0:
            drf0 = check_program(program).obeys
        else:
            drf0 = check_program_sampled(program, seeds=drf0_seeds).obeys
        for name, factory in policy_factories.items():
            report = contract_sweep(
                program,
                factory,
                config,
                seeds,
                check_51_conditions=check_51_conditions,
            )
            evidence.rows.append(evidence_row(program, drf0, name, report))
    return evidence
