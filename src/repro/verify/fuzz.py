"""End-to-end fuzzing: random programs against the whole stack.

Three oracles run on every random program:

1. **SC hardware is SC for everything** -- every result the SC policy
   produces (any substrate) must pass the exact membership oracle; no
   DRF0 precondition is needed, so arbitrary racy programs are fair game.
2. **Cross-checker agreement** -- the axiomatic SC model, the naive
   enumerator, and DPOR must agree on the program's SC result set.
3. **Liveness everywhere** -- every policy/substrate combination must run
   the program to completion with all writes globally performed.

This is the library testing itself: a disagreement pinpoints a bug in one
of the independent components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.axiomatic import SCModel, allowed_results
from repro.core.contract import is_sc_result
from repro.core.dpor import sc_results_dpor
from repro.core.sc import sc_results
from repro.hw import (
    AdveHillPolicy,
    Definition1Policy,
    ReleaseConsistencyPolicy,
    SCPolicy,
)
from repro.machine.generator import GeneratorConfig, random_program
from repro.sim.system import SystemConfig, run_on_hardware


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz campaign."""

    programs_run: int = 0
    hardware_runs: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no oracle disagreed."""
        return not self.failures


#: The hardware matrix each fuzz program runs on.
_FUZZ_CONFIGS = [
    SystemConfig(),
    SystemConfig(topology="bus"),
    SystemConfig(caches=False),
    SystemConfig(coherence="snoop", topology="bus"),
    SystemConfig(cache_capacity=2),
]

_LIVENESS_POLICIES = [
    Definition1Policy,
    AdveHillPolicy,
    ReleaseConsistencyPolicy,
]


@dataclass
class SeedOutcome:
    """One fuzz seed's contribution to a :class:`FuzzReport`.

    The per-seed body is factored out so the serial loop and the parallel
    engine (:mod:`repro.verify.engine`) run literally the same code; a
    parallel campaign merges outcomes in seed order and is therefore
    byte-identical to the serial one.
    """

    seed: int
    programs_run: int = 0
    hardware_runs: int = 0
    failures: List[str] = field(default_factory=list)


def fuzz_one_seed(
    seed: int,
    generator: Optional[GeneratorConfig] = None,
    hardware_seeds: Sequence[int] = range(3),
    check_cross_enumerators: bool = True,
    judge: Optional[Callable[..., bool]] = None,
) -> SeedOutcome:
    """Run every fuzz oracle on the one random program ``seed`` names.

    ``judge`` is the SC-membership oracle; it defaults to the exact
    :func:`is_sc_result` and exists so callers can substitute a memoizing
    wrapper (the parallel engine does).
    """
    judge = judge or is_sc_result
    outcome = SeedOutcome(seed=seed)
    program = random_program(seed, generator)
    outcome.programs_run += 1

    if check_cross_enumerators:
        reference = sc_results(program)
        if allowed_results(program, SCModel()) != reference:
            outcome.failures.append(
                f"seed {seed}: axiomatic SC disagrees with enumerator"
            )
        if sc_results_dpor(program) != reference:
            outcome.failures.append(
                f"seed {seed}: DPOR disagrees with enumerator"
            )

    for config_index, config in enumerate(_FUZZ_CONFIGS):
        if config.coherence == "snoop" and not config.caches:
            continue
        for hw_seed in hardware_seeds:
            cfg = config.with_seed(hw_seed)
            run = run_on_hardware(program, SCPolicy(), cfg)
            outcome.hardware_runs += 1
            if not judge(program, run.result):
                outcome.failures.append(
                    f"seed {seed} config {config_index} hw-seed {hw_seed}: "
                    f"SC hardware produced non-SC result {run.result}"
                )
        for factory in _LIVENESS_POLICIES:
            if factory().requires_caches and not config.caches:
                continue
            run = run_on_hardware(
                program, factory(), config.with_seed(hardware_seeds[0])
            )
            outcome.hardware_runs += 1
            for per_proc in run.raw_accesses:
                if not all(
                    a.globally_performed for a in per_proc if a.has_write
                ):
                    outcome.failures.append(
                        f"seed {seed}: {factory().name} left a write "
                        "not globally performed"
                    )
    return outcome


def merge_outcomes(outcomes: Sequence[SeedOutcome]) -> FuzzReport:
    """Fold per-seed outcomes (in the order given) into one report."""
    report = FuzzReport()
    for outcome in outcomes:
        report.programs_run += outcome.programs_run
        report.hardware_runs += outcome.hardware_runs
        report.failures.extend(outcome.failures)
    return report


def fuzz(
    seeds: Sequence[int],
    generator: Optional[GeneratorConfig] = None,
    hardware_seeds: Sequence[int] = range(3),
    check_cross_enumerators: bool = True,
) -> FuzzReport:
    """Run the fuzz oracles over one random program per seed."""
    return merge_outcomes(
        [
            fuzz_one_seed(seed, generator, hardware_seeds, check_cross_enumerators)
            for seed in seeds
        ]
    )
