"""End-to-end fuzzing: random programs against the whole stack.

Three oracles run on every random program:

1. **SC hardware is SC for everything** -- every result the SC policy
   produces (any substrate) must pass the exact membership oracle; no
   DRF0 precondition is needed, so arbitrary racy programs are fair game.
2. **Cross-checker agreement** -- the axiomatic SC model, the naive
   enumerator, and DPOR must agree on the program's SC result set.
3. **Liveness everywhere** -- every policy/substrate combination must run
   the program to completion with all writes globally performed.

This is the library testing itself: a disagreement pinpoints a bug in one
of the independent components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.axiomatic import SCModel, allowed_results
from repro.core.contract import is_sc_result
from repro.core.dpor import sc_results_dpor
from repro.core.sc import sc_results
from repro.hw import (
    AdveHillPolicy,
    Definition1Policy,
    ReleaseConsistencyPolicy,
    SCPolicy,
)
from repro.machine.generator import GeneratorConfig, random_program
from repro.sim.system import SystemConfig, run_on_hardware


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz campaign."""

    programs_run: int = 0
    hardware_runs: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no oracle disagreed."""
        return not self.failures


#: The hardware matrix each fuzz program runs on.
_FUZZ_CONFIGS = [
    SystemConfig(),
    SystemConfig(topology="bus"),
    SystemConfig(caches=False),
    SystemConfig(coherence="snoop", topology="bus"),
    SystemConfig(cache_capacity=2),
]

_LIVENESS_POLICIES = [
    Definition1Policy,
    AdveHillPolicy,
    ReleaseConsistencyPolicy,
]


def fuzz(
    seeds: Sequence[int],
    generator: Optional[GeneratorConfig] = None,
    hardware_seeds: Sequence[int] = range(3),
    check_cross_enumerators: bool = True,
) -> FuzzReport:
    """Run the fuzz oracles over one random program per seed."""
    report = FuzzReport()
    for seed in seeds:
        program = random_program(seed, generator)
        report.programs_run += 1

        if check_cross_enumerators:
            reference = sc_results(program)
            if allowed_results(program, SCModel()) != reference:
                report.failures.append(
                    f"seed {seed}: axiomatic SC disagrees with enumerator"
                )
            if sc_results_dpor(program) != reference:
                report.failures.append(
                    f"seed {seed}: DPOR disagrees with enumerator"
                )

        for config_index, config in enumerate(_FUZZ_CONFIGS):
            if config.coherence == "snoop" and not config.caches:
                continue
            for hw_seed in hardware_seeds:
                cfg = config.with_seed(hw_seed)
                run = run_on_hardware(program, SCPolicy(), cfg)
                report.hardware_runs += 1
                if not is_sc_result(program, run.result):
                    report.failures.append(
                        f"seed {seed} config {config_index} hw-seed {hw_seed}: "
                        f"SC hardware produced non-SC result {run.result}"
                    )
            for factory in _LIVENESS_POLICIES:
                if factory().requires_caches and not config.caches:
                    continue
                run = run_on_hardware(
                    program, factory(), config.with_seed(hardware_seeds[0])
                )
                report.hardware_runs += 1
                for per_proc in run.raw_accesses:
                    if not all(
                        a.globally_performed for a in per_proc if a.has_write
                    ):
                        report.failures.append(
                            f"seed {seed}: {factory().name} left a write "
                            "not globally performed"
                        )
    return report
