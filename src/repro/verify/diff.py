"""Differential campaign: axiomatic solver vs enumerator vs operational
explorers vs the hardware simulator, over the generated-program corpus.

The solver (:mod:`repro.axiomatic.solver`) is trusted because it is
*checked*, continuously, against every independent implementation of the
same semantics this library has:

1. **Backend agreement** -- for each model (SC, COHERENCE, TSO, WO-DRF0)
   the solver's ``allowed_results`` must be bit-identical to the legacy
   generate-then-filter enumerator's.
2. **Operational agreement** -- the axiomatic SC set must equal the
   operational explorer's :func:`repro.core.sc.sc_results`.
3. **Contract shape** -- WO-DRF0 must collapse to the SC set on DRF0
   programs and contain the SC set (the coherence floor is weaker) on
   racy ones: the paper's Definition 2 read axiomatically.
4. **Simulator containment** -- every result the hardware simulator
   produces must fall inside the right axiomatic set: SC-policy runs
   inside the SC set, Adve--Hill (the paper's weakly ordered
   implementation) runs inside the WO-DRF0 set.

Any disagreement is auto-minimized at the DSL level
(:func:`repro.machine.generator.shrink_program`) into a litmus-sized
reproducer and attached to the report.  The per-seed body is factored
out (like :mod:`repro.verify.fuzz`) so the serial loop and the parallel
engine run literally the same code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.axiomatic import (
    CoherenceModel,
    SCModel,
    TSOModel,
    UnsupportedProgram,
    WeakOrderingDRF,
    allowed_results,
)
from repro.core.sc import sc_results
from repro.hw import AdveHillPolicy, SCPolicy
from repro.machine.generator import (
    GeneratorConfig,
    random_program,
    shrink_program,
)
from repro.machine.program import Program
from repro.sim.system import SystemConfig, run_on_hardware

#: The comparison kinds a seed can disagree on.
KINDS = ("backend", "sc-explorer", "wo-contract", "simulator")

#: Hardware substrates the simulator comparison runs on: the directory
#: default and the snoop/bus alternative (one of each protocol family).
_DIFF_CONFIGS = (
    SystemConfig(),
    SystemConfig(coherence="snoop", topology="bus"),
)


def _default_drf0_judge(program: Program) -> bool:
    from repro.core.drf0 import check_program

    return check_program(program).obeys


def compare_program(
    program: Program,
    hardware_seeds: Sequence[int] = range(2),
    drf0_judge: Optional[Callable[[Program], bool]] = None,
    counters: Optional[Dict[str, int]] = None,
) -> List[Tuple[str, str]]:
    """Run every differential comparison; return (kind, detail) failures.

    ``drf0_judge`` supplies the operational DRF0 verdict (the engine
    substitutes a memoizing wrapper); ``counters`` accumulates
    ``comparisons`` / ``hardware_runs`` when given.
    """
    drf0_judge = drf0_judge or _default_drf0_judge
    failures: List[Tuple[str, str]] = []

    def count(key: str, n: int = 1) -> None:
        if counters is not None:
            counters[key] = counters.get(key, 0) + n

    drf0 = drf0_judge(program)
    wo_model = WeakOrderingDRF()
    wo_model.prime_verdict(program, drf0)
    models = [SCModel(), CoherenceModel(), TSOModel(), wo_model]

    sets: Dict[str, frozenset] = {}
    for model in models:
        solver_set = allowed_results(program, model, backend="solver")
        oracle_set = allowed_results(program, model, backend="enumerator")
        count("comparisons")
        sets[model.name] = solver_set
        if solver_set != oracle_set:
            extra = len(solver_set - oracle_set)
            missing = len(oracle_set - solver_set)
            failures.append(
                (
                    "backend",
                    f"{model.name}: solver has {extra} extra / "
                    f"{missing} missing results vs enumerator",
                )
            )

    sc_set = sets[SCModel.name]
    operational = sc_results(program)
    count("comparisons")
    if sc_set != operational:
        failures.append(
            (
                "sc-explorer",
                f"axiomatic SC ({len(sc_set)} results) != operational "
                f"explorer ({len(operational)} results)",
            )
        )

    wo_set = sets[WeakOrderingDRF.name]
    count("comparisons")
    if drf0 and wo_set != sc_set:
        failures.append(
            ("wo-contract", "DRF0 program but WO-DRF0 set != SC set")
        )
    elif not drf0 and not sc_set <= wo_set:
        failures.append(
            (
                "wo-contract",
                "racy program but coherence floor misses "
                f"{len(sc_set - wo_set)} SC results",
            )
        )

    for config in _DIFF_CONFIGS:
        for hw_seed in hardware_seeds:
            cfg = config.with_seed(hw_seed)
            for policy_factory, bound, bound_name in (
                (SCPolicy, sc_set, "SC"),
                (AdveHillPolicy, wo_set, "WO-DRF0"),
            ):
                run = run_on_hardware(program, policy_factory(), cfg)
                count("hardware_runs")
                count("comparisons")
                if run.result not in bound:
                    failures.append(
                        (
                            "simulator",
                            f"{policy_factory().name} on "
                            f"{config.coherence}/{config.topology} seed "
                            f"{hw_seed} produced a result outside the "
                            f"axiomatic {bound_name} set",
                        )
                    )
    return failures


@dataclass
class Disagreement:
    """One differential failure, with its minimized reproducer."""

    seed: int
    kind: str
    detail: str
    program_name: str
    minimized: Optional[Program] = None
    litmus_name: Optional[str] = None


@dataclass
class DiffSeedOutcome:
    """One seed's contribution to a :class:`DiffReport`."""

    seed: int
    programs_run: int = 0
    comparisons: int = 0
    hardware_runs: int = 0
    skipped: int = 0
    disagreements: List[Disagreement] = field(default_factory=list)


@dataclass
class DiffReport:
    """Aggregate outcome of one differential campaign."""

    programs_run: int = 0
    comparisons: int = 0
    hardware_runs: int = 0
    skipped: int = 0
    disagreements: List[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every comparison agreed."""
        return not self.disagreements


def diff_one_seed(
    seed: int,
    generator: Optional[GeneratorConfig] = None,
    hardware_seeds: Sequence[int] = range(2),
    drf0_judge: Optional[Callable[[Program], bool]] = None,
) -> DiffSeedOutcome:
    """Run every differential comparison on the program ``seed`` names."""
    outcome = DiffSeedOutcome(seed=seed)
    program = random_program(seed, generator)
    counters: Dict[str, int] = {}
    try:
        failures = compare_program(
            program, hardware_seeds, drf0_judge, counters
        )
    except UnsupportedProgram:
        outcome.skipped += 1
        return outcome
    outcome.programs_run += 1
    outcome.comparisons = counters.get("comparisons", 0)
    outcome.hardware_runs = counters.get("hardware_runs", 0)
    for kind, detail in failures:
        outcome.disagreements.append(
            Disagreement(
                seed=seed,
                kind=kind,
                detail=detail,
                program_name=program.name,
            )
        )
    return outcome


def minimize_disagreement(
    disagreement: Disagreement,
    generator: Optional[GeneratorConfig] = None,
    hardware_seeds: Sequence[int] = range(2),
) -> Disagreement:
    """Shrink the disagreeing program into a named litmus reproducer.

    The predicate is "the same *kind* of comparison still fails": each
    shrink candidate reruns the full differential body, so the minimized
    program provably still exhibits a ``kind`` disagreement.
    """
    program = random_program(disagreement.seed, generator)
    litmus_name = f"diff-{disagreement.seed}-{disagreement.kind}"

    def still_fails(candidate: Program) -> bool:
        try:
            kinds = {
                kind
                for kind, _ in compare_program(candidate, hardware_seeds)
            }
        except UnsupportedProgram:
            return False
        return disagreement.kind in kinds

    disagreement.minimized = shrink_program(
        program, still_fails, name=litmus_name
    )
    disagreement.litmus_name = litmus_name
    return disagreement


def merge_diff_outcomes(outcomes: Sequence[DiffSeedOutcome]) -> DiffReport:
    """Fold per-seed outcomes (in the order given) into one report."""
    report = DiffReport()
    for outcome in outcomes:
        report.programs_run += outcome.programs_run
        report.comparisons += outcome.comparisons
        report.hardware_runs += outcome.hardware_runs
        report.skipped += outcome.skipped
        report.disagreements.extend(outcome.disagreements)
    return report


def diff_campaign(
    seeds: Sequence[int],
    generator: Optional[GeneratorConfig] = None,
    hardware_seeds: Sequence[int] = range(2),
    minimize: bool = True,
) -> DiffReport:
    """Serial differential campaign over one random program per seed."""
    report = merge_diff_outcomes(
        [
            diff_one_seed(seed, generator, hardware_seeds)
            for seed in seeds
        ]
    )
    if minimize:
        for disagreement in report.disagreements:
            minimize_disagreement(disagreement, generator, hardware_seeds)
    return report


def render_program(program: Program) -> str:
    """A compact textual litmus rendering of a (shrunk) program."""
    lines = [f"{program.name}:"]
    memory = ", ".join(
        f"{loc}={value}"
        for loc, value in sorted(program.initial_memory.items())
    )
    lines.append(f"  init: {{{memory}}}")
    for proc, code in enumerate(program.threads):
        body = "; ".join(repr(instr) for instr in code.instructions)
        lines.append(f"  P{proc}: {body}")
    return "\n".join(lines)


def report_as_dict(report: DiffReport) -> Dict[str, object]:
    """JSON-ready summary of a campaign (for ``repro diff --report``)."""
    return {
        "programs_run": report.programs_run,
        "comparisons": report.comparisons,
        "hardware_runs": report.hardware_runs,
        "skipped": report.skipped,
        "ok": report.ok,
        "disagreements": [
            {
                "seed": d.seed,
                "kind": d.kind,
                "detail": d.detail,
                "program": d.program_name,
                "litmus_name": d.litmus_name,
                "minimized": (
                    render_program(d.minimized)
                    if d.minimized is not None
                    else None
                ),
            }
            for d in report.disagreements
        ],
    }
