"""Parallel contract-verification engine.

The evidence behind Definition 2 is a sweep: run every (program, policy)
pair across many nondeterminism seeds, then judge each distinct observed
result against the exact guided SC-membership oracle.  Both halves are
embarrassingly parallel and highly redundant, so :class:`VerificationEngine`
does two things:

* **fan-out** -- hardware runs, DRF0 program verdicts, SC-membership
  judgments, and whole fuzz seeds are dispatched to a ``multiprocessing``
  pool as chunked tasks;
* **memoization** -- oracle verdicts land in content-keyed caches
  (:mod:`repro.verify.cache`), so a result observed under five policies and
  forty seeds is judged once, and a program swept twice is DRF0-checked
  once.

Determinism contract: for the same inputs, every engine entry point returns
output *bit-for-bit identical* to its serial counterpart in
:mod:`repro.verify.sweeps` / :mod:`repro.verify.fuzz`, regardless of
``jobs``.  The engine achieves this by keeping workers pure (they only map
task -> value) and doing every fold in the parent, in the serial code's
iteration order; floating-point accumulations (``mean_cycles``) therefore
sum in the identical order too.

Worker plumbing: tasks are dispatched to a ``fork``-context pool, and the
per-call task context (programs, policy factories, configs) is published in
a module global *before* the fork so children inherit it by address-space
copy.  Only small index tuples cross the task queue and only plain result
records come back -- policy factories (often lambdas) are never pickled.
On platforms without ``fork`` the engine transparently degrades to the
in-process path (still memoized, still identical output).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.contract import is_sc_result
from repro.core.drf0 import check_program, check_program_sampled
from repro.core.engine_state import ExplorerStats
from repro.core.execution import Result
from repro.machine.generator import GeneratorConfig
from repro.machine.program import Program
from repro.sim.system import SystemConfig, run_on_hardware
from repro.verify.cache import (
    DRF0VerdictCache,
    SCVerdictCache,
    program_fingerprint,
)
from repro.verify.conditions import check_conditions
from repro.verify.fuzz import FuzzReport, SeedOutcome, fuzz_one_seed, merge_outcomes
from repro.verify.sweeps import (
    Definition2Evidence,
    SweepReport,
    evidence_row,
)


@dataclass(frozen=True)
class RunSummary:
    """The picklable essentials of one hardware run.

    Workers return these instead of full :class:`~repro.sim.system.MachineRun`
    objects: the raw access trace is only needed for the Section-5.1
    monitor, which runs *inside* the worker and is reduced here to its
    violation strings.
    """

    seed: int
    policy_name: str
    result: Result
    cycles: int
    stall_cycles: int
    condition_violations: Tuple[str, ...] = ()


@dataclass(frozen=True)
class _SweepCell:
    """One (program, policy, config) sweep cell.

    Lives only in the parent and in fork-inherited worker memory; the
    policy factory is never pickled.
    """

    program: Program
    policy_factory: Callable[[], object]
    config: SystemConfig
    check_51_conditions: bool = False


@dataclass
class _TaskContext:
    """Everything a worker needs, inherited via fork (never pickled)."""

    cells: Tuple[_SweepCell, ...] = ()
    programs: Tuple[Program, ...] = ()
    exhaustive_drf0: bool = False
    drf0_seeds: Tuple[int, ...] = ()
    generator: Optional[GeneratorConfig] = None
    fuzz_hardware_seeds: Tuple[int, ...] = ()
    check_cross_enumerators: bool = True


#: Published by the parent immediately before forking the pool; workers
#: read it, the parent restores the previous value afterwards.
_TASK_CONTEXT: Optional[_TaskContext] = None

#: Worker-process-local memo for fuzz SC judgments (workers cannot share
#: the parent cache object; each at least never re-judges its own repeats).
_WORKER_SC_MEMO: Dict[Tuple[str, Result], bool] = {}


def _run_one(cell: _SweepCell, seed: int) -> RunSummary:
    policy = cell.policy_factory()
    run = run_on_hardware(cell.program, policy, cell.config.with_seed(seed))
    violations: Tuple[str, ...] = ()
    if cell.check_51_conditions:
        report = check_conditions(
            run, drf1_optimized=getattr(policy, "drf1_optimized", False)
        )
        if not report.ok:
            violations = tuple(
                f"seed {seed} {cond}: {m}"
                for cond, messages in report.violations.items()
                for m in messages
            )
    return RunSummary(
        seed=seed,
        policy_name=policy.name,
        result=run.result,
        cycles=run.cycles,
        stall_cycles=run.total_stall_cycles,
        condition_violations=violations,
    )


def _memoized_judge(program: Program, result: Result) -> bool:
    key = (program_fingerprint(program), result)
    verdict = _WORKER_SC_MEMO.get(key)
    if verdict is None:
        verdict = is_sc_result(program, result)
        _WORKER_SC_MEMO[key] = verdict
    return verdict


def _execute_task(task: tuple):
    """Worker dispatch: map one task tuple to its (picklable) value."""
    ctx = _TASK_CONTEXT
    assert ctx is not None, "task executed outside an engine session"
    kind = task[0]
    if kind == "run":
        _, cell_index, seeds = task
        cell = ctx.cells[cell_index]
        return [_run_one(cell, seed) for seed in seeds]
    if kind == "judge":
        _, cell_index, result = task
        stats = ExplorerStats()
        verdict = is_sc_result(
            ctx.cells[cell_index].program, result, stats=stats
        )
        return verdict, stats
    if kind == "drf0":
        _, program_index = task
        program = ctx.programs[program_index]
        if ctx.exhaustive_drf0:
            report = check_program(program)
        else:
            report = check_program_sampled(program, seeds=ctx.drf0_seeds)
        return report.obeys, report.stats
    if kind == "fuzz":
        _, seed = task
        return fuzz_one_seed(
            seed,
            ctx.generator,
            ctx.fuzz_hardware_seeds,
            ctx.check_cross_enumerators,
            judge=_memoized_judge,
        )
    raise ValueError(f"unknown task kind {kind!r}")


def _now_us() -> int:
    """Wall-clock microseconds (the engine's trace clock)."""
    return time.perf_counter_ns() // 1_000


class _Session:
    """One engine call's dispatch surface: a pool, or the calling process."""

    def __init__(self, pool, engine: Optional["VerificationEngine"] = None) -> None:
        self._pool = pool
        self._engine = engine

    def map(self, tasks: Sequence[tuple]) -> list:
        """Evaluate tasks, returning values in task order."""
        if not tasks:
            return []
        engine = self._engine
        observed = engine is not None and (
            engine.tracer.enabled or engine.metrics is not None
        )
        start = _now_us() if observed else 0
        if self._pool is None:
            values = [_execute_task(task) for task in tasks]
        else:
            values = self._pool.map(_execute_task, tasks, chunksize=1)
        if observed:
            counts: Dict[str, int] = {}
            for task in tasks:
                counts[task[0]] = counts.get(task[0], 0) + 1
            if engine.metrics is not None:
                for kind, n in counts.items():
                    engine.metrics.counter(f"engine.tasks.{kind}").inc(n)
            if engine.tracer.enabled:
                engine.tracer.span(
                    "engine", "map", "engine", start, _now_us(),
                    args={"tasks": len(tasks), **counts},
                )
        return values


class VerificationEngine:
    """Chunked, memoized, deterministic parallel sweep runner.

    Args:
        jobs: Worker processes.  ``1`` (the default) runs in-process;
            ``0`` or ``None`` means one per CPU.  Parallel dispatch needs
            the ``fork`` start method (POSIX); elsewhere the engine runs
            in-process regardless of ``jobs``.
        seed_chunk: Seeds per hardware-run task.  Default: sized so each
            worker sees about four tasks per cell (amortizes task overhead
            while still load-balancing).
        sc_cache / drf0_cache: Verdict caches; pass shared instances to
            memoize across engine calls (both benchmarks do).
        tracer: Optional :class:`~repro.obs.tracer.Tracer` receiving
            parent-side dispatch spans (timestamps are wall-clock
            microseconds -- workers are separate processes and are not
            traced).
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`
            accumulating task counts; :meth:`metrics_snapshot` adds cache
            and explorer counters on demand.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        seed_chunk: Optional[int] = None,
        sc_cache: Optional[SCVerdictCache] = None,
        drf0_cache: Optional[DRF0VerdictCache] = None,
        tracer=None,
        metrics=None,
    ) -> None:
        if not jobs:
            jobs = os.cpu_count() or 1
        self.jobs = max(1, int(jobs))
        self.seed_chunk = seed_chunk
        self.sc_cache = sc_cache if sc_cache is not None else SCVerdictCache()
        self.drf0_cache = (
            drf0_cache if drf0_cache is not None else DRF0VerdictCache()
        )
        if tracer is None:
            from repro.obs.tracer import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        self.metrics = metrics
        #: Aggregate exploration counters from every oracle task this
        #: engine dispatched (guided SC-membership searches and exhaustive
        #: DRF0 verdicts).  Cache hits add nothing -- the counters measure
        #: work actually done, which is what the benchmarks report.
        self.explorer_stats = ExplorerStats()

    # ------------------------------------------------------------------
    # Dispatch plumbing
    # ------------------------------------------------------------------

    @property
    def can_fork(self) -> bool:
        """Whether a worker pool is actually available on this platform."""
        return "fork" in multiprocessing.get_all_start_methods()

    @contextmanager
    def _session(self, context: _TaskContext):
        global _TASK_CONTEXT
        previous = _TASK_CONTEXT
        _TASK_CONTEXT = context
        pool = None
        session_start = _now_us() if self.tracer.enabled else 0
        try:
            if self.jobs > 1 and self.can_fork:
                pool = multiprocessing.get_context("fork").Pool(self.jobs)
            yield _Session(pool, self)
        except BaseException:
            if pool is not None:
                pool.terminate()  # don't drain queued work after a failure
                pool.join()
                pool = None
            raise
        finally:
            pooled = pool is not None
            if pool is not None:
                pool.close()
                pool.join()
            _TASK_CONTEXT = previous
            if self.tracer.enabled:
                self.tracer.span(
                    "engine", "session", "engine", session_start, _now_us(),
                    args={"jobs": self.jobs, "pool": pooled},
                )

    def _seed_chunks(self, seeds: Sequence[int]) -> List[Tuple[int, ...]]:
        if not seeds:
            return []
        size = self.seed_chunk or max(1, -(-len(seeds) // (self.jobs * 4)))
        return [
            tuple(seeds[i : i + size]) for i in range(0, len(seeds), size)
        ]

    def _run_cells(
        self,
        session: _Session,
        cells: Sequence[_SweepCell],
        seeds: Sequence[int],
    ) -> List[List[RunSummary]]:
        """All hardware runs for ``cells`` x ``seeds``, seed-ordered per cell."""
        chunks = self._seed_chunks(seeds)
        tasks = [
            ("run", cell_index, chunk)
            for cell_index in range(len(cells))
            for chunk in chunks
        ]
        values = session.map(tasks)
        per_cell: List[List[RunSummary]] = [[] for _ in cells]
        for (_, cell_index, _chunk), summaries in zip(tasks, values):
            per_cell[cell_index].extend(summaries)
        return per_cell

    def _judge_new_results(
        self,
        session: _Session,
        cells: Sequence[_SweepCell],
        per_cell: Sequence[Sequence[RunSummary]],
    ) -> None:
        """Judge every not-yet-cached distinct result, once, possibly in
        parallel, and file the verdicts in :attr:`sc_cache`."""
        pending: List[Tuple[int, Result]] = []
        claimed: Set[Tuple[str, Result]] = set()
        for cell_index, summaries in enumerate(per_cell):
            program = cells[cell_index].program
            for summary in summaries:
                key = self.sc_cache.key(program, summary.result)
                if key in claimed:
                    continue
                claimed.add(key)
                if self.sc_cache.lookup(program, summary.result) is None:
                    pending.append((cell_index, summary.result))
        values = session.map(
            [("judge", cell_index, result) for cell_index, result in pending]
        )
        for (cell_index, result), (verdict, stats) in zip(pending, values):
            self.explorer_stats.merge(stats)
            self.sc_cache.store(cells[cell_index].program, result, verdict)

    def _assemble_sweep(
        self,
        cell: _SweepCell,
        seeds: Sequence[int],
        summaries: Sequence[RunSummary],
    ) -> SweepReport:
        """Fold one cell's summaries exactly as the serial sweep would."""
        seen: Set[Result] = set()
        non_sc: List[Result] = []
        condition_problems: List[str] = []
        cycles: List[int] = []
        for summary in summaries:
            cycles.append(summary.cycles)
            condition_problems.extend(summary.condition_violations)
            if summary.result in seen:
                continue
            seen.add(summary.result)
            if not self.sc_cache.judge(cell.program, summary.result):
                non_sc.append(summary.result)
        if summaries:
            policy_name = summaries[0].policy_name
        else:
            policy_name = cell.policy_factory().name
        return SweepReport(
            program=cell.program,
            policy_name=policy_name,
            seeds_run=len(seeds),
            distinct_results=len(seen),
            non_sc_results=non_sc,
            condition_violations=condition_problems,
            mean_cycles=sum(cycles) / len(cycles) if cycles else 0.0,
        )

    # ------------------------------------------------------------------
    # Entry points (mirror the serial API)
    # ------------------------------------------------------------------

    def hardware_summaries(
        self,
        program: Program,
        policy_factory: Callable[[], object],
        config: Optional[SystemConfig] = None,
        seeds: Sequence[int] = range(20),
        check_51_conditions: bool = False,
    ) -> List[RunSummary]:
        """Raw per-seed run summaries (no SC judging) -- the timing path
        the performance benchmarks fan out."""
        config = config or SystemConfig()
        seeds = list(seeds)
        cell = _SweepCell(program, policy_factory, config, check_51_conditions)
        with self._session(_TaskContext(cells=(cell,))) as session:
            return self._run_cells(session, [cell], seeds)[0]

    def contract_sweep(
        self,
        program: Program,
        policy_factory: Callable[[], object],
        config: Optional[SystemConfig] = None,
        seeds: Sequence[int] = range(20),
        check_51_conditions: bool = False,
    ) -> SweepReport:
        """Parallel :func:`repro.verify.sweeps.contract_sweep`."""
        config = config or SystemConfig()
        seeds = list(seeds)
        cell = _SweepCell(program, policy_factory, config, check_51_conditions)
        with self._session(_TaskContext(cells=(cell,))) as session:
            per_cell = self._run_cells(session, [cell], seeds)
            self._judge_new_results(session, [cell], per_cell)
        return self._assemble_sweep(cell, seeds, per_cell[0])

    def definition2_sweep(
        self,
        programs: Iterable[Program],
        policy_factories: Dict[str, Callable[[], object]],
        config: Optional[SystemConfig] = None,
        seeds: Sequence[int] = range(20),
        drf0_seeds: Sequence[int] = range(30),
        exhaustive_drf0: bool = False,
        check_51_conditions: bool = False,
    ) -> Definition2Evidence:
        """Parallel :func:`repro.verify.sweeps.definition2_sweep`."""
        config = config or SystemConfig()
        programs = list(programs)
        seeds = list(seeds)
        drf0_tuple = tuple(drf0_seeds)
        cells = [
            _SweepCell(program, factory, config, check_51_conditions)
            for program in programs
            for factory in policy_factories.values()
        ]
        context = _TaskContext(
            cells=tuple(cells),
            programs=tuple(programs),
            exhaustive_drf0=exhaustive_drf0,
            drf0_seeds=drf0_tuple,
        )
        with self._session(context) as session:
            drf0_pending = [
                index
                for index, program in enumerate(programs)
                if self.drf0_cache.lookup(program, exhaustive_drf0, drf0_tuple)
                is None
            ]
            chunks = self._seed_chunks(seeds)
            run_tasks = [
                ("run", cell_index, chunk)
                for cell_index in range(len(cells))
                for chunk in chunks
            ]
            drf0_tasks = [("drf0", index) for index in drf0_pending]
            values = session.map(drf0_tasks + run_tasks)
            for index, (verdict, stats) in zip(
                drf0_pending, values[: len(drf0_tasks)]
            ):
                if stats is not None:
                    self.explorer_stats.merge(stats)
                self.drf0_cache.store(
                    programs[index], exhaustive_drf0, drf0_tuple, verdict
                )
            per_cell: List[List[RunSummary]] = [[] for _ in cells]
            for (_, cell_index, _chunk), summaries in zip(
                run_tasks, values[len(drf0_tasks) :]
            ):
                per_cell[cell_index].extend(summaries)
            self._judge_new_results(session, cells, per_cell)

        evidence = Definition2Evidence()
        cell_index = 0
        for program in programs:
            drf0 = self.drf0_cache.lookup(program, exhaustive_drf0, drf0_tuple)
            assert drf0 is not None
            for name in policy_factories:
                report = self._assemble_sweep(
                    cells[cell_index], seeds, per_cell[cell_index]
                )
                evidence.rows.append(evidence_row(program, drf0, name, report))
                cell_index += 1
        return evidence

    def fuzz(
        self,
        seeds: Sequence[int],
        generator: Optional[GeneratorConfig] = None,
        hardware_seeds: Sequence[int] = range(3),
        check_cross_enumerators: bool = True,
    ) -> FuzzReport:
        """Parallel :func:`repro.verify.fuzz.fuzz` (one task per seed)."""
        seeds = list(seeds)
        context = _TaskContext(
            generator=generator,
            fuzz_hardware_seeds=tuple(hardware_seeds),
            check_cross_enumerators=check_cross_enumerators,
        )
        with self._session(context) as session:
            outcomes: List[SeedOutcome] = session.map(
                [("fuzz", seed) for seed in seeds]
            )
        return merge_outcomes(outcomes)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def metrics_snapshot(self, registry=None):
        """Fold the engine's counters into a metrics registry.

        Includes everything the engine tracks: dispatched task counts (if
        a registry was attached at construction they are already there),
        verdict-cache hit/miss counters, and the aggregate explorer
        counters from oracle tasks.
        """
        from repro.obs.metrics import MetricsRegistry, explorer_metrics

        registry = registry if registry is not None else (
            self.metrics if self.metrics is not None else MetricsRegistry()
        )
        registry.counter("engine.jobs").value = self.jobs
        for name, cache in (
            ("sc_cache", self.sc_cache),
            ("drf0_cache", self.drf0_cache),
        ):
            registry.counter(f"engine.{name}.hits").value = cache.stats.hits
            registry.counter(f"engine.{name}.misses").value = cache.stats.misses
        explorer_metrics(
            self.explorer_stats, registry, prefix="engine.explorer"
        )
        return registry
