"""Parallel contract-verification engine.

The evidence behind Definition 2 is a sweep: run every (program, policy)
pair across many nondeterminism seeds, then judge each distinct observed
result against the exact guided SC-membership oracle.  Both halves are
embarrassingly parallel and highly redundant, so :class:`VerificationEngine`
does two things:

* **fan-out** -- hardware runs, DRF0 program verdicts, SC-membership
  judgments, and whole fuzz seeds are dispatched to a ``multiprocessing``
  pool as chunked tasks;
* **memoization** -- oracle verdicts land in content-keyed caches
  (:mod:`repro.verify.cache`), so a result observed under five policies and
  forty seeds is judged once, and a program swept twice is DRF0-checked
  once.

Determinism contract: for the same inputs, every engine entry point returns
output *bit-for-bit identical* to its serial counterpart in
:mod:`repro.verify.sweeps` / :mod:`repro.verify.fuzz`, regardless of
``jobs``.  The engine achieves this by keeping workers pure (they only map
task -> value) and doing every fold in the parent, in the serial code's
iteration order; floating-point accumulations (``mean_cycles``) therefore
sum in the identical order too.

Worker plumbing: tasks are dispatched to a ``fork``-context pool, and the
per-call task context (programs, policy factories, configs) is published in
a module global *before* the fork so children inherit it by address-space
copy.  Only small index tuples cross the task queue and only plain result
records come back -- policy factories (often lambdas) are never pickled.
On platforms without ``fork`` the engine transparently degrades to the
in-process path (still memoized, still identical output).

Resilience (this layer's hardening, all preserving the bit-for-bit
contract because tasks are pure -- re-executing one yields the identical
value):

* **per-task timeouts** -- a task that exceeds ``task_timeout`` seconds is
  abandoned and resubmitted (the straggler's late result, if any, is
  discarded);
* **worker-crash detection** -- the pool's worker PID set is polled; when
  a worker dies (segfault, OOM kill), every in-flight task is resubmitted
  (duplicates are harmless, first completion wins);
* **bounded retry with backoff** -- each task is retried at most
  ``max_task_retries`` times with exponential backoff and deterministic
  jitter; failure charges are deduplicated by (task, lease generation)
  through :class:`~repro.verify.leases.TaskBoard`, so one incident seen
  twice (a timeout *and* the wedged worker's later death) burns one unit
  of retry budget, not two;
* **graceful serial degradation** -- a task that exhausts its retries is
  executed in the parent process, which always terminates the sweep with
  the correct output (just without parallelism for that task);
* **clean interrupt** -- workers ignore SIGINT (the parent owns the
  Ctrl-C); on any exception the pool is terminated and joined before the
  exception propagates, so no forked children are orphaned;
* **checkpoint journal** -- ``definition2_sweep`` can log every completed
  work unit to a :class:`~repro.verify.journal.CheckpointJournal` and
  resume after a kill, recomputing only unjournaled units;
* **cache quarantine** -- verdict-cache entries that fail their integrity
  checksum are evicted and recomputed instead of aborting the sweep.

Persistence (``store`` / ``cache_dir``): with a
:class:`~repro.verify.store.VerdictStore` attached, the engine is warm
across processes and across runs, three ways:

* **warm start** -- the store's segments are loaded into the in-memory
  verdict caches at construction, *before* any fork, so every worker
  inherits the whole known verdict universe by address-space copy;
  sweep cells whose run summaries are stored are not re-run at all;
* **cross-worker sharing** -- workers return newly computed verdicts
  (with their cost metadata) alongside task results; the parent merges
  them into the shared caches as each task lands and flushes them to
  disk immediately, so a verdict computed once is on disk before the
  sweep ends (and available to every later engine in the same process
  or any concurrent process flushing into the same directory);
* **cost-aware scheduling** -- stored per-cell cost observations (wall
  time, run count, explored states) sort the next sweep's dispatch
  longest-expected-first with finer chunking for expensive cells,
  cutting tail latency on skewed grids.  Scheduling never changes any
  output -- the parent folds results in serial order regardless.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.contract import is_sc_result
from repro.core.drf0 import check_program, check_program_sampled
from repro.core.engine_state import ExplorerStats
from repro.core.parallel import ShardStats
from repro.core.execution import Result
from repro.machine.generator import GeneratorConfig
from repro.machine.program import Program
from repro.obs import stream as obs_stream
from repro.obs.tracer import now_us as _obs_now_us
from repro.sim.system import SystemConfig, run_on_hardware
from repro.verify.cache import (
    DRF0VerdictCache,
    SCVerdictCache,
    program_fingerprint,
)
from repro.verify.conditions import check_conditions
from repro.verify.diff import (
    DiffReport,
    DiffSeedOutcome,
    diff_one_seed,
    merge_diff_outcomes,
    minimize_disagreement,
)
from repro.verify.fuzz import FuzzReport, SeedOutcome, fuzz_one_seed, merge_outcomes
from repro.verify.journal import (
    CheckpointJournal,
    JournalError,
    decode_result,
    encode_result,
    sweep_signature,
)
from repro.verify.leases import DEGRADE, BackoffPolicy, TaskBoard
from repro.verify.store import VerdictStore, cell_key, run_key
from repro.verify.sweeps import (
    Definition2Evidence,
    SweepReport,
    evidence_row,
)


@dataclass(frozen=True)
class Failpoint:
    """A test-only fault injected into task execution (chaos testing).

    ``task_kind`` selects which tasks may fire it (``"*"`` = any); ``mode``
    is ``"crash"`` (the worker dies with ``os._exit``), ``"hang"`` (the
    worker sleeps past any reasonable timeout), or ``"error"`` (the task
    raises).  The failpoint fires **once** across all processes -- the
    first task to claim ``token_path`` (atomic ``O_CREAT|O_EXCL``) fires,
    everyone else proceeds normally.  Crash/hang/error all fire only in
    forked workers: the parent process must survive to observe recovery.
    """

    task_kind: str
    mode: str
    token_path: str


class InjectedTaskError(RuntimeError):
    """Raised by an ``error``-mode failpoint (test plumbing)."""


def _maybe_fire_failpoint(failpoint: Failpoint) -> None:
    if multiprocessing.parent_process() is None:
        return  # only forked workers fire; the parent must survive
    try:
        fd = os.open(
            failpoint.token_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
        )
    except FileExistsError:
        return  # already fired elsewhere
    os.close(fd)
    if failpoint.mode == "crash":
        os._exit(17)
    if failpoint.mode == "hang":
        time.sleep(3600)
        return
    raise InjectedTaskError(f"injected {failpoint.mode} failpoint")


@dataclass(frozen=True)
class RunSummary:
    """The picklable essentials of one hardware run.

    Workers return these instead of full :class:`~repro.sim.system.MachineRun`
    objects: the raw access trace is only needed for the Section-5.1
    monitor, which runs *inside* the worker and is reduced here to its
    violation strings.
    """

    seed: int
    policy_name: str
    result: Result
    cycles: int
    stall_cycles: int
    condition_violations: Tuple[str, ...] = ()


def _encode_summary(summary: RunSummary) -> dict:
    """JSON-safe form of a RunSummary for the checkpoint journal."""
    return {
        "seed": summary.seed,
        "policy": summary.policy_name,
        "result": encode_result(summary.result),
        "cycles": summary.cycles,
        "stalls": summary.stall_cycles,
        "viol": list(summary.condition_violations),
    }


def _decode_summary(data: dict) -> RunSummary:
    return RunSummary(
        seed=data["seed"],
        policy_name=data["policy"],
        result=decode_result(data["result"]),
        cycles=data["cycles"],
        stall_cycles=data["stalls"],
        condition_violations=tuple(data["viol"]),
    )


@dataclass(frozen=True)
class _SweepCell:
    """One (program, policy, config) sweep cell.

    Lives only in the parent and in fork-inherited worker memory; the
    policy factory is never pickled.
    """

    program: Program
    policy_factory: Callable[[], object]
    config: SystemConfig
    check_51_conditions: bool = False


@dataclass
class _TaskContext:
    """Everything a worker needs, inherited via fork (never pickled)."""

    cells: Tuple[_SweepCell, ...] = ()
    programs: Tuple[Program, ...] = ()
    exhaustive_drf0: bool = False
    drf0_seeds: Tuple[int, ...] = ()
    generator: Optional[GeneratorConfig] = None
    fuzz_hardware_seeds: Tuple[int, ...] = ()
    check_cross_enumerators: bool = True
    diff_hardware_seeds: Tuple[int, ...] = ()
    failpoints: Tuple[Failpoint, ...] = ()


#: Published by the parent immediately before forking the pool; workers
#: read it, the parent restores the previous value afterwards.
_TASK_CONTEXT: Optional[_TaskContext] = None

#: Worker-process-local memo for fuzz SC judgments (workers cannot share
#: the parent cache object; each at least never re-judges its own repeats).
_WORKER_SC_MEMO: Dict[Tuple[str, Result], bool] = {}

#: Worker-process-local memo for exhaustive DRF0 program verdicts, used by
#: the differential campaign (same fork-warmed lifecycle as the SC memo).
_WORKER_DRF0_MEMO: Dict[str, bool] = {}


def _run_one(cell: _SweepCell, seed: int) -> RunSummary:
    policy = cell.policy_factory()
    run = run_on_hardware(cell.program, policy, cell.config.with_seed(seed))
    violations: Tuple[str, ...] = ()
    if cell.check_51_conditions:
        report = check_conditions(
            run, drf1_optimized=getattr(policy, "drf1_optimized", False)
        )
        if not report.ok:
            violations = tuple(
                f"seed {seed} {cond}: {m}"
                for cond, messages in report.violations.items()
                for m in messages
            )
    return RunSummary(
        seed=seed,
        policy_name=policy.name,
        result=run.result,
        cycles=run.cycles,
        stall_cycles=run.total_stall_cycles,
        condition_violations=violations,
    )


@dataclass
class NewVerdict:
    """One SC judgment a fuzz task computed (was not in its memo).

    Shipped back to the parent so sibling workers' work is merged into
    the shared caches and flushed to the persistent store: content key,
    verdict, the program body (kept so the stored entry is auditable),
    and the explorer cost of deriving it.
    """

    fingerprint: str
    result: Result
    verdict: bool
    program: Program
    states: int = 0


def _fuzz_task(seed: int, ctx: "_TaskContext"):
    """One fuzz seed with a counting, recording memoized judge.

    Returns ``(outcome, new_verdicts, (hits, misses))``.  The memo is
    the worker-process-local ``_WORKER_SC_MEMO`` -- warmed from the
    parent's cache before the fork -- and the hit/miss delta is the
    worker's own truth, reported back so the parent's aggregate stats
    stay accurate under ``--jobs > 1``.
    """
    new_verdicts: List[NewVerdict] = []
    hits = misses = 0

    def judge(program: Program, result: Result) -> bool:
        nonlocal hits, misses
        key = (program_fingerprint(program), result)
        verdict = _WORKER_SC_MEMO.get(key)
        if verdict is None:
            misses += 1
            stats = ExplorerStats()
            verdict = is_sc_result(program, result, stats=stats)
            _WORKER_SC_MEMO[key] = verdict
            new_verdicts.append(
                NewVerdict(key[0], result, verdict, program, stats.states)
            )
        else:
            hits += 1
        return verdict

    outcome = fuzz_one_seed(
        seed,
        ctx.generator,
        ctx.fuzz_hardware_seeds,
        ctx.check_cross_enumerators,
        judge=judge,
    )
    return outcome, new_verdicts, (hits, misses)


def _diff_task(seed: int, ctx: "_TaskContext"):
    """One differential-campaign seed with a memoized DRF0 judge.

    Returns ``(outcome, new_drf0_verdicts, (hits, misses))`` where each
    new verdict is ``(fingerprint, verdict, program)``.  The memo is the
    fork-warmed worker-local ``_WORKER_DRF0_MEMO``; fresh verdicts ride
    back so the parent merges them into the shared cache and the
    persistent store.
    """
    new_verdicts: List[Tuple[str, bool, Program]] = []
    hits = misses = 0

    def drf0_judge(program: Program) -> bool:
        nonlocal hits, misses
        fingerprint = program_fingerprint(program)
        verdict = _WORKER_DRF0_MEMO.get(fingerprint)
        if verdict is None:
            misses += 1
            verdict = check_program(program).obeys
            _WORKER_DRF0_MEMO[fingerprint] = verdict
            new_verdicts.append((fingerprint, verdict, program))
        else:
            hits += 1
        return verdict

    outcome = diff_one_seed(
        seed,
        ctx.generator,
        ctx.diff_hardware_seeds,
        drf0_judge=drf0_judge,
    )
    return outcome, new_verdicts, (hits, misses)


def _worker_init() -> None:
    """Pool-worker initializer: the parent owns Ctrl-C.

    Without this, a terminal SIGINT reaches every pool worker too; they
    die mid-task and the parent's cleanup races their corpses.  Workers
    ignore SIGINT and rely on the parent's terminate/join.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _task_label(task: tuple) -> str:
    """Short human-readable task id for heartbeat records."""
    kind = task[0]
    if kind == "run":
        return f"run:cell{task[1]}x{len(task[2])}"
    if kind == "judge":
        return f"judge:cell{task[1]}"
    if kind == "drf0":
        return f"drf0:prog{task[1]}"
    if kind == "fuzz":
        return f"fuzz:seed{task[1]}"
    if kind == "diff":
        return f"diff:seed{task[1]}"
    return str(kind)


def _execute_task(task: tuple, tag: Optional[tuple] = None):
    """Worker dispatch: map one task tuple to its (picklable) value.

    ``tag`` is the telemetry identity ``(batch, index, generation)`` of
    this dispatch: when a campaign monitor has published a heartbeat
    spool, the worker emits a liveness beat on entry, periodic beats
    while chewing through a run chunk, and an exactly-once ``task``
    record (keyed ``batch:index`` with the resubmission generation) on
    completion so the parent's fold can dedupe crash-resubmitted work.
    With telemetry off, ``writer`` is ``None`` and every hook below is a
    single comparison.
    """
    ctx = _TASK_CONTEXT
    assert ctx is not None, "task executed outside an engine session"
    kind = task[0]
    writer = obs_stream.worker_writer()
    gen = tag[2] if tag is not None else 0
    label = _task_label(task) if writer is not None else None
    if writer is not None:
        writer.beat(task=label, gen=gen)
    try:
        for failpoint in ctx.failpoints:
            if failpoint.task_kind in ("*", kind):
                _maybe_fire_failpoint(failpoint)
        if kind == "run":
            _, cell_index, seeds = task
            cell = ctx.cells[cell_index]
            value: object
            if writer is None:
                value = [_run_one(cell, seed) for seed in seeds]
            else:
                summaries = []
                for seed in seeds:
                    summaries.append(_run_one(cell, seed))
                    writer.add(runs=1)
                    writer.beat(task=label, gen=gen)
                value = summaries
            deltas = {"runs": len(seeds)}
        elif kind == "judge":
            _, cell_index, result = task
            stats = ExplorerStats()
            verdict = is_sc_result(
                ctx.cells[cell_index].program, result, stats=stats
            )
            value = (verdict, stats)
            deltas = {"judges": 1, "states": stats.states}
        elif kind == "drf0":
            _, program_index = task
            program = ctx.programs[program_index]
            if ctx.exhaustive_drf0:
                report = check_program(program)
            else:
                report = check_program_sampled(program, seeds=ctx.drf0_seeds)
            value = (report.obeys, report.stats)
            deltas = {
                "drf0": 1,
                "states": report.stats.states if report.stats else 0,
            }
        elif kind == "fuzz":
            _, seed = task
            value = _fuzz_task(seed, ctx)
            _outcome, new_verdicts, (hits, misses) = value
            deltas = {
                "fuzz_seeds": 1,
                "sc_hits": hits,
                "sc_misses": misses,
                "states": sum(new.states for new in new_verdicts),
            }
        elif kind == "diff":
            _, seed = task
            value = _diff_task(seed, ctx)
            diff_outcome, _new_drf0, (hits, misses) = value
            deltas = {
                "diff_seeds": 1,
                "drf0_hits": hits,
                "drf0_misses": misses,
                "runs": diff_outcome.hardware_runs,
            }
        else:
            raise ValueError(f"unknown task kind {kind!r}")
    except Exception as exc:
        if writer is not None:
            diagnose = getattr(exc, "diagnosis", None)
            diagnosis = (
                diagnose() if callable(diagnose)
                else f"{type(exc).__name__}: {exc}"
            )
            writer.stall(diagnosis, task=label)
            writer.beat(task=label, gen=gen, force=True)
        raise
    if writer is not None:
        if kind != "run":  # run counters already accumulated per seed
            writer.add(**deltas)
        if tag is not None:
            writer.task_done(f"{tag[0]}:{tag[1]}", gen, deltas)
        writer.beat(task=label, gen=gen)
    return value


def _now_us() -> int:
    """Wall-clock microseconds -- the shared obs clock, so engine trace
    spans are directly comparable with heartbeat and snapshot stamps."""
    return _obs_now_us()


#: Sentinel marking a task slot whose value has not been produced yet.
_UNSET = object()

#: Process-wide telemetry batch counter: every :meth:`_Session.map` call
#: gets a fresh batch id so ``batch:index`` task keys are unique across
#: all engines sharing one campaign monitor (chaos runs several).
_TELEMETRY_BATCH = itertools.count(1)


def _balanced_chunks(items: Sequence, size: int) -> List[tuple]:
    """Split ``items`` into chunks of at most ``size``, balanced.

    Naive fixed-stride slicing leaves a pathological straggler: 251 seeds
    at size 8 yields 31 full chunks and a 3-seed tail, so one worker idles
    while another finishes a near-empty task.  Instead the remainder is
    spread across the chunks -- sizes differ by at most one, with the
    larger chunks first -- and concatenating the chunks still reproduces
    ``items`` in order, so every fold downstream is unchanged.
    """
    n_chunks = max(1, -(-len(items) // size))
    base, rem = divmod(len(items), n_chunks)
    chunks: List[tuple] = []
    start = 0
    for index in range(n_chunks):
        width = base + (1 if index < rem else 0)
        chunks.append(tuple(items[start : start + width]))
        start += width
    return chunks


class _Session:
    """One engine call's dispatch surface: a pool, or the calling process."""

    def __init__(self, pool, engine: Optional["VerificationEngine"] = None) -> None:
        self._pool = pool
        self._engine = engine
        self._worker_pids: Set[int] = self._pool_pids()
        #: Async handles abandoned without a result (crashed or timed-out
        #: workers).  Each leaves a permanent entry in the pool's result
        #: cache, and ``Pool.close``+``join`` waits for that cache to
        #: drain -- so a session with abandoned handles must be torn down
        #: with ``terminate`` instead.
        self.abandoned_handles = 0
        #: Wall seconds per task of the last :meth:`map` call, task-order
        #: aligned (pooled tasks: submit-to-ready of the final attempt,
        #: so includes ~20ms polling slack -- a scheduling signal, not a
        #: benchmark).  Feeds the store's cost records.
        self.task_seconds: List[float] = []

    def _pool_pids(self) -> Set[int]:
        workers = getattr(self._pool, "_pool", None) or ()
        return {worker.pid for worker in workers}

    def map(
        self,
        tasks: Sequence[tuple],
        on_result: Optional[Callable[[int, tuple, object], None]] = None,
    ) -> list:
        """Evaluate tasks, returning values in task order.

        ``on_result(index, task, value)`` fires once per task as its value
        lands (checkpoint journaling hook); completion order is arbitrary
        under a pool, but the returned list is always in task order.
        """
        if not tasks:
            return []
        engine = self._engine
        observed = engine is not None and (
            engine.tracer.enabled or engine.metrics is not None
        )
        start = _now_us() if observed else 0
        self.task_seconds = [0.0] * len(tasks)
        if self._pool is None:
            batch = next(_TELEMETRY_BATCH)
            values = []
            for index, task in enumerate(tasks):
                task_start = time.perf_counter()
                value = _execute_task(task, (batch, index, 0))
                seconds = time.perf_counter() - task_start
                self.task_seconds[index] = seconds
                if on_result is not None:
                    on_result(index, task, value)
                if engine is not None:
                    engine._task_landed(task, seconds)
                obs_stream.parent_poll()
                values.append(value)
        else:
            values = self._map_resilient(tasks, on_result)
        if observed:
            counts: Dict[str, int] = {}
            for task in tasks:
                counts[task[0]] = counts.get(task[0], 0) + 1
            if engine.metrics is not None:
                for kind, n in counts.items():
                    engine.metrics.counter(f"engine.tasks.{kind}").inc(n)
            if engine.tracer.enabled:
                engine.tracer.span(
                    "engine", "map", "engine", start, _now_us(),
                    args={"tasks": len(tasks), **counts},
                )
        return values

    def _map_resilient(
        self,
        tasks: Sequence[tuple],
        on_result: Optional[Callable[[int, tuple, object], None]],
    ) -> list:
        """Pooled evaluation that survives slow, crashed, and lying workers.

        At most ``jobs`` tasks are in flight at a time (so a per-task
        timeout measures actual execution, not queueing).  Lease
        bookkeeping -- generations, retry budgets, exponential backoff,
        and the exactly-once failure dedupe -- lives in
        :class:`~repro.verify.leases.TaskBoard`; this loop only moves
        handles.  A task is resubmitted when it times out, when its
        worker raises, or when a pool worker dies *unattributed* while
        it is in flight (the board's crash credits attribute a worker
        death to an already-handled timeout, so one wedged worker no
        longer charges a task twice -- once at timeout, once when the
        corpse is noticed).  A task that exhausts ``max_task_retries``
        resubmissions is executed in the parent: the sweep always
        terminates with the exact serial output.
        """
        engine = self._engine
        timeout = engine.task_timeout if engine is not None else None
        max_retries = engine.max_task_retries if engine is not None else 2
        backoff = engine.retry_backoff if engine is not None else 0.05
        jobs = engine.jobs if engine is not None else (os.cpu_count() or 1)
        counters = engine.resilience if engine is not None else {}

        board = TaskBoard(
            len(tasks),
            max_retries=max_retries,
            backoff=BackoffPolicy(base=backoff),
            counters=counters,
        )
        results: List[object] = [_UNSET] * len(tasks)
        #: index -> (async handle, submit monotonic, lease generation)
        inflight: Dict[int, Tuple[object, float, int]] = {}
        batch = next(_TELEMETRY_BATCH)

        def finish(
            index: int, value: object, seconds: float = 0.0
        ) -> None:
            results[index] = value
            self.task_seconds[index] = seconds
            if on_result is not None:
                on_result(index, tasks[index], value)
            if engine is not None:
                engine._task_landed(tasks[index], seconds)

        def run_serial(index: int, attempt: int) -> None:
            serial_start = time.perf_counter()
            value = _execute_task(tasks[index], (batch, index, attempt))
            board.complete(index, attempt)
            finish(index, value, time.perf_counter() - serial_start)

        def dispose(index: int, gen: int, kind: str) -> None:
            if board.fail(index, gen, kind, time.monotonic()) == DEGRADE:
                run_serial(index, board.attempts.get(index, 0))

        while not board.finished:
            now = time.monotonic()
            while len(inflight) < jobs:
                lease = board.grant(now)
                if lease is None:
                    break
                # tag attempt numbering matches the serial path: first
                # attempt is 0, so the lease generation shifts by one.
                tag = (batch, lease.task, lease.gen - 1)
                try:
                    handle = self._pool.apply_async(
                        _execute_task, (tasks[lease.task], tag)
                    )
                except Exception:
                    # The pool itself is unusable; finish in-process.
                    board.bump("degraded_to_serial")
                    run_serial(lease.task, lease.gen - 1)
                    continue
                inflight[lease.task] = (handle, now, lease.gen)
            if not inflight:
                if board.finished:
                    break
                not_before = board.next_not_before()
                if not_before is None:
                    # Defensive: nothing queued, nothing in flight, yet
                    # unfinished tasks remain.  Finish them in-process
                    # rather than spinning.
                    for index in range(len(tasks)):
                        if not board.is_done(index):
                            board.bump("degraded_to_serial")
                            run_serial(index, board.attempts.get(index, 0))
                    continue
                # Every queued task is still backing off; sleep toward
                # the earliest deadline (bounded, so Ctrl-C stays snappy).
                time.sleep(min(max(not_before - time.monotonic(), 0), 0.05))
                continue

            # Wait briefly on one handle, then scan them all.
            next(iter(inflight.values()))[0].wait(0.02)
            obs_stream.parent_poll()

            pids = self._pool_pids()
            deaths = len(self._worker_pids - pids) if pids else 0
            if pids:
                self._worker_pids = pids

            for index in list(inflight):
                handle, submitted, gen = inflight[index]
                if handle.ready():
                    del inflight[index]
                    try:
                        value = handle.get()
                    except Exception:
                        dispose(index, gen, "task_errors")
                    else:
                        if board.complete(index, gen):
                            finish(index, value, time.monotonic() - submitted)
                elif (
                    timeout is not None
                    and time.monotonic() - submitted > timeout
                ):
                    del inflight[index]
                    self.abandoned_handles += 1
                    # The worker holding this lease is presumed wedged:
                    # its eventual death is this same incident.
                    board.bank_crash_credit()
                    dispose(index, gen, "task_timeouts")

            if deaths:
                board.bump("worker_crashes", deaths)
                if board.consume_crash_credits(deaths) > 0:
                    # Unattributed deaths: some worker died holding an
                    # unknown, un-timed-out task; resubmit every in-flight
                    # lease (purity makes duplicates safe, the board's
                    # (task, gen) dedupe makes the charges exactly-once).
                    for index in list(inflight):
                        _handle, _submitted, gen = inflight.pop(index)
                        self.abandoned_handles += 1
                        dispose(index, gen, "")
        return results


class VerificationEngine:
    """Chunked, memoized, deterministic parallel sweep runner.

    Args:
        jobs: Worker processes.  ``1`` (the default) runs in-process;
            ``0`` or ``None`` means one per CPU.  Parallel dispatch needs
            the ``fork`` start method (POSIX); elsewhere the engine runs
            in-process regardless of ``jobs``.
        explore_jobs: Intra-cell parallelism for oracle explorations
            (:mod:`repro.core.parallel`).  ``1`` (default) keeps every
            guided SC-membership search serial; ``> 1`` (or ``0`` = one
            per CPU) shards expensive searches across a fork pool of
            compiled engines.  Sharded judgments always run in the
            *parent* process (pool workers are daemonic and cannot
            fork): with ``jobs == 1`` every judge task shards, with a
            worker pool only cells whose stored cost exceeds twice the
            grid median are pulled out of the pool and sharded
            (cost-aware straggler splitting).
        seed_chunk: Seeds per hardware-run task.  Default: sized so each
            worker sees about four tasks per cell (amortizes task overhead
            while still load-balancing).
        sc_cache / drf0_cache: Verdict caches; pass shared instances to
            memoize across engine calls (both benchmarks do).
        tracer: Optional :class:`~repro.obs.tracer.Tracer` receiving
            parent-side dispatch spans (timestamps are wall-clock
            microseconds -- workers are separate processes and are not
            traced).
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`
            accumulating task counts; :meth:`metrics_snapshot` adds cache
            and explorer counters on demand.
        task_timeout: Seconds before an in-flight pooled task is abandoned
            and resubmitted (None = wait forever, the pre-hardening
            behavior).
        max_task_retries: Resubmissions per task (timeout, crash, or
            error) before the task is executed in the parent process.
        retry_backoff: Base seconds of exponential backoff between
            resubmissions of the same task (jittered deterministically;
            see :class:`~repro.verify.leases.BackoffPolicy`).
        failpoints: Test-only :class:`Failpoint` injections, fired inside
            workers (chaos tests for the resilience machinery).
        store: Persistent :class:`~repro.verify.store.VerdictStore`; its
            segments are loaded into the verdict caches at construction
            (warm start, inherited by every forked worker) and every new
            verdict / run summary / cost observation is flushed back as
            it is computed.
        cache_dir: Convenience: build a :class:`VerdictStore` on this
            directory (ignored when ``store`` is given).
        monitor: Optional
            :class:`~repro.obs.progress.CampaignMonitor`.  The engine
            registers its plan (cells x seeds, store-costed) with the
            first monitor that grants :meth:`~repro.obs.progress.
            CampaignMonitor.claim_plan`, ticks completion as tasks land,
            and exposes its live resilience counters; workers stream
            heartbeats through the monitor's published spool.  Telemetry
            never touches results -- outputs stay bit-identical.
        dispatcher: Optional external dispatch backend (the campaign
            daemon's worker fleet); see the attribute docstring.  When
            set, ``jobs`` only sizes chunking -- no pool is forked.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        explore_jobs: int = 1,
        seed_chunk: Optional[int] = None,
        sc_cache: Optional[SCVerdictCache] = None,
        drf0_cache: Optional[DRF0VerdictCache] = None,
        tracer=None,
        metrics=None,
        task_timeout: Optional[float] = None,
        max_task_retries: int = 2,
        retry_backoff: float = 0.05,
        failpoints: Sequence[Failpoint] = (),
        store: Optional[VerdictStore] = None,
        cache_dir: Optional[str] = None,
        monitor=None,
        dispatcher=None,
    ) -> None:
        if not jobs:
            jobs = os.cpu_count() or 1
        self.jobs = max(1, int(jobs))
        self.explore_jobs = explore_jobs
        #: Aggregate sharding counters from every intra-cell parallel
        #: exploration this engine ran (``engine.explore.*`` in
        #: :meth:`metrics_snapshot`).
        self.shard_stats = ShardStats()
        self.seed_chunk = seed_chunk
        self.task_timeout = task_timeout
        self.max_task_retries = max(0, int(max_task_retries))
        self.retry_backoff = retry_backoff
        self.failpoints = tuple(failpoints)
        #: Resilience counters: tasks_retried, task_timeouts, task_errors,
        #: worker_crashes, degraded_to_serial (absent until first event).
        self.resilience: Dict[str, int] = {}
        self.sc_cache = sc_cache if sc_cache is not None else SCVerdictCache()
        self.drf0_cache = (
            drf0_cache if drf0_cache is not None else DRF0VerdictCache()
        )
        if tracer is None:
            from repro.obs.tracer import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        self.metrics = metrics
        self.monitor = monitor
        #: Optional external dispatch backend (the campaign daemon's
        #: supervised worker fleet).  An object with
        #: ``session(context, engine)`` returning a `_Session`-shaped
        #: object (``map``, ``task_seconds``, ``abandoned_handles``,
        #: optional ``close()``).  When set, the engine never creates a
        #: pool of its own: the same fold/journal/store path runs over
        #: the external executor, preserving bit-identity for free.
        self.dispatcher = dispatcher
        #: Whether *this* engine owns the monitor's campaign plan (the
        #: first engine to claim it does; chaos' helper engines share a
        #: monitor and only heartbeat).
        self._owns_plan = False
        if monitor is not None:
            monitor.attach_resilience(self.resilience)
        #: Aggregate exploration counters from every oracle task this
        #: engine dispatched (guided SC-membership searches and exhaustive
        #: DRF0 verdicts).  Cache hits add nothing -- the counters measure
        #: work actually done, which is what the benchmarks report.
        self.explorer_stats = ExplorerStats()
        if store is None and cache_dir is not None:
            store = VerdictStore(cache_dir)
        self.store = store
        if self.store is not None:
            self._warm_from_store()

    def _warm_from_store(self) -> None:
        """Load every stored verdict into the in-memory caches.

        Runs at construction, before any fork, so workers inherit the
        warm caches by address-space copy.  Stored run summaries stay in
        the store's state and are consumed per sweep cell.
        """
        state = self.store.warm()
        for (fingerprint, result), verdict in state.sc.items():
            self.sc_cache.store_by_fingerprint(
                fingerprint,
                result,
                verdict,
                program=state.programs.get(fingerprint),
            )
        for (fingerprint, mode), verdict in state.drf0.items():
            self.drf0_cache.store_by_key(fingerprint, mode, verdict)

    # ------------------------------------------------------------------
    # Dispatch plumbing
    # ------------------------------------------------------------------

    @property
    def can_fork(self) -> bool:
        """Whether a worker pool is actually available on this platform."""
        return "fork" in multiprocessing.get_all_start_methods()

    def _task_landed(self, task: tuple, seconds: float = 0.0) -> None:
        """Progress tick: one task's value just folded into the parent.

        Fires exactly once per task slot (the session's ``finish`` path
        guards duplicates), so monitor completion counts stay truthful
        under crash resubmission.  Only the plan-owning engine ticks
        units; every engine polls so the status file stays fresh.
        """
        monitor = self.monitor
        if monitor is None:
            return
        if self._owns_plan:
            kind = task[0]
            if kind == "run":
                monitor.unit_done(task[1], len(task[2]))
                monitor.observe_cell_us(task[1], seconds * 1e6)
            elif kind == "drf0":
                monitor.extra_done("drf0")
            elif kind == "judge":
                monitor.extra_done("judge")
            elif kind == "fuzz":
                monitor.unit_done(0, 1)
            elif kind == "diff":
                monitor.unit_done(0, 1)
        monitor.poll()

    @contextmanager
    def _session(self, context: _TaskContext):
        global _TASK_CONTEXT
        previous = _TASK_CONTEXT
        if self.failpoints and not context.failpoints:
            context.failpoints = self.failpoints
        # Published even on the dispatcher path: serial degradation runs
        # tasks in *this* process through the same `_execute_task`.
        _TASK_CONTEXT = context
        if self.dispatcher is not None:
            session = self.dispatcher.session(context, self)
            try:
                yield session
            finally:
                _TASK_CONTEXT = previous
                close = getattr(session, "close", None)
                if close is not None:
                    close()
            return
        pool = None
        session_start = _now_us() if self.tracer.enabled else 0
        session = None
        try:
            if self.jobs > 1 and self.can_fork:
                pool = multiprocessing.get_context("fork").Pool(
                    self.jobs, initializer=_worker_init
                )
            session = _Session(pool, self)
            yield session
        except BaseException:
            if pool is not None:
                pool.terminate()  # don't drain queued work after a failure
                pool.join()
                pool = None
            raise
        finally:
            pooled = pool is not None
            if pool is not None:
                if session is not None and session.abandoned_handles:
                    # Abandoned handles never resolve, so close+join would
                    # wait forever on the pool's result cache; every task
                    # value is already in hand, so hard-stop the workers.
                    pool.terminate()
                else:
                    pool.close()
                pool.join()
            _TASK_CONTEXT = previous
            if self.tracer.enabled:
                self.tracer.span(
                    "engine", "session", "engine", session_start, _now_us(),
                    args={"jobs": self.jobs, "pool": pooled},
                )

    def _seed_chunks(self, seeds: Sequence[int]) -> List[Tuple[int, ...]]:
        if not seeds:
            return []
        size = self.seed_chunk or max(1, -(-len(seeds) // (self.jobs * 4)))
        return _balanced_chunks(seeds, size)

    def _position_chunks(
        self, positions: Sequence[int]
    ) -> List[Tuple[int, ...]]:
        """Chunk arbitrary seed *positions* (the resume path runs only the
        positions a journal is missing, which need not be contiguous)."""
        if not positions:
            return []
        size = self.seed_chunk or max(
            1, -(-len(positions) // (self.jobs * 4))
        )
        return _balanced_chunks(positions, size)

    # ------------------------------------------------------------------
    # Persistent-store plumbing (all no-ops without a store)
    # ------------------------------------------------------------------

    def _cell_identities(
        self, cells: Sequence[_SweepCell]
    ) -> Optional[List[Tuple[str, str]]]:
        """(program fingerprint, policy name) per cell -- the store's
        content identity of a sweep cell.  None without a store (the
        policy instantiation it costs is only paid on the store path)."""
        if self.store is None:
            return None
        return [
            (
                program_fingerprint(cell.program),
                cell.policy_factory().name,
            )
            for cell in cells
        ]

    def _fill_from_store(
        self,
        cells: Sequence[_SweepCell],
        seeds: Sequence[int],
        per_cell: List[List[Optional[RunSummary]]],
        identities: Optional[List[Tuple[str, str]]],
    ) -> Dict[Tuple[int, int], str]:
        """Fill sweep positions from stored run summaries.

        Returns the run content key of *every* (cell, position) -- also
        the ones left unfilled, so newly computed summaries can be
        flushed under the same keys.
        """
        keys: Dict[Tuple[int, int], str] = {}
        if identities is None:
            return keys
        state = self.store.warm()
        for cell_index, cell in enumerate(cells):
            fingerprint, policy_name = identities[cell_index]
            for pos, seed in enumerate(seeds):
                key = run_key(
                    fingerprint,
                    policy_name,
                    repr(cell.config.with_seed(seed)),
                    cell.check_51_conditions,
                )
                keys[(cell_index, pos)] = key
                if per_cell[cell_index][pos] is not None:
                    continue
                stored = state.runs.get(key)
                if stored is None:
                    continue
                try:
                    per_cell[cell_index][pos] = _decode_summary(stored)
                except (KeyError, TypeError):
                    continue  # malformed payload: recompute this run
                self.store.stats.runs_reused += 1
        return keys

    def _plan_run_tasks(
        self,
        cells: Sequence[_SweepCell],
        seeds: Sequence[int],
        per_cell: Sequence[Sequence[Optional[RunSummary]]],
        identities: Optional[List[Tuple[str, str]]],
    ) -> Tuple[List[tuple], List[Tuple[int, Tuple[int, ...]]]]:
        """Chunked run tasks for every unfilled sweep position.

        Without a store this reproduces the original deterministic plan
        (cell order, uniform chunks).  With one, cells are dispatched
        longest-expected-first using stored cost observations, and cells
        costing more than twice the median per seed get half-size chunks
        -- stragglers start early and load-balance finely, cutting tail
        latency on skewed grids.  Only *issue order* changes; the fold
        order (and so every output) is identical either way.
        """
        expected_us: List[float] = []
        median_us = 0.0
        if identities is not None:
            state = self.store.warm()
            for fingerprint, policy_name in identities:
                cost = state.costs.get(cell_key(fingerprint, policy_name))
                expected_us.append(cost.us_per_run if cost else 0.0)
            known = sorted(us for us in expected_us if us > 0)
            if known:
                median_us = known[len(known) // 2]
        entries: List[Tuple[float, int, Tuple[int, ...]]] = []
        for cell_index in range(len(cells)):
            missing = [
                pos
                for pos in range(len(seeds))
                if per_cell[cell_index][pos] is None
            ]
            if not missing:
                continue
            size = self.seed_chunk or max(
                1, -(-len(missing) // (self.jobs * 4))
            )
            cell_us = expected_us[cell_index] if identities else 0.0
            if median_us and cell_us > 2 * median_us:
                size = max(1, size // 2)
            for chunk in _balanced_chunks(missing, size):
                entries.append((cell_us * len(chunk), cell_index, chunk))
        if identities is not None:
            entries.sort(key=lambda e: (-e[0], e[1], e[2][0]))
        tasks: List[tuple] = []
        positions: List[Tuple[int, Tuple[int, ...]]] = []
        for _, cell_index, chunk in entries:
            tasks.append(
                ("run", cell_index, tuple(seeds[pos] for pos in chunk))
            )
            positions.append((cell_index, chunk))
        return tasks, positions

    def _flush_run_costs(
        self,
        session: _Session,
        task_positions: Sequence[Tuple[int, Tuple[int, ...]]],
        identities: Optional[List[Tuple[str, str]]],
        offset: int = 0,
    ) -> None:
        """Record observed per-cell hardware-run cost into the store.

        ``offset`` skips leading non-run tasks in ``session.task_seconds``
        (the definition2 map front-loads DRF0 tasks)."""
        if identities is None or not task_positions:
            return
        acc: Dict[int, Tuple[int, int]] = {}
        for (cell_index, chunk), seconds in zip(
            task_positions, session.task_seconds[offset:]
        ):
            runs, wall_us = acc.get(cell_index, (0, 0))
            acc[cell_index] = (
                runs + len(chunk),
                wall_us + int(seconds * 1_000_000),
            )
        for cell_index, (runs, wall_us) in sorted(acc.items()):
            fingerprint, policy_name = identities[cell_index]
            self.store.record_cost(
                cell_key(fingerprint, policy_name), runs, wall_us
            )

    def _run_cells(
        self,
        session: _Session,
        cells: Sequence[_SweepCell],
        seeds: Sequence[int],
    ) -> List[List[RunSummary]]:
        """All hardware runs for ``cells`` x ``seeds``, seed-ordered per cell."""
        chunks = self._seed_chunks(seeds)
        tasks = [
            ("run", cell_index, chunk)
            for cell_index in range(len(cells))
            for chunk in chunks
        ]
        values = session.map(tasks)
        per_cell: List[List[RunSummary]] = [[] for _ in cells]
        for (_, cell_index, _chunk), summaries in zip(tasks, values):
            per_cell[cell_index].extend(summaries)
        return per_cell

    def _shard_cell_indices(
        self,
        cells: Sequence[_SweepCell],
        identities: Optional[List[Tuple[str, str]]],
    ) -> frozenset:
        """Which cells' judge tasks should run as sharded explorations.

        Sharding happens in the parent process (pool workers are daemonic
        and cannot fork grandchildren), so it competes with the run pool
        for cores.  Without a pool (``jobs == 1``) every judge shards --
        sharding is the only parallelism available.  With a pool, only
        cells whose stored cost record exceeds twice the grid median are
        pulled out: those are the stragglers whose single judge task
        would dominate the tail, and splitting them beats queueing them.
        """
        if self.explore_jobs == 1:
            return frozenset()
        from repro.core import parallel

        if (
            parallel.resolve_jobs(self.explore_jobs) <= 1
            or not parallel.can_fork()
        ):
            return frozenset()
        if self.jobs == 1 or not self.can_fork:
            return frozenset(range(len(cells)))
        if self.store is None or identities is None:
            return frozenset()
        state = self.store.warm()
        expected = []
        for fingerprint, policy_name in identities:
            cost = state.costs.get(cell_key(fingerprint, policy_name))
            expected.append(cost.us_per_run if cost else 0.0)
        known = sorted(us for us in expected if us > 0)
        if not known:
            return frozenset()
        median_us = known[len(known) // 2]
        return frozenset(
            index
            for index, us in enumerate(expected)
            if us > 2 * median_us
        )

    def _judge_sharded(
        self, program: Program, result: Result
    ) -> Tuple[bool, ExplorerStats]:
        """One parent-side sharded SC-membership judgment.

        Mirrors the ``judge`` task body but fans the guided search out
        across a fork pool of compiled engines with an early-exit
        broadcast on the first hit.  The verdict is bit-identical to the
        serial search's (membership is existence, and every shard hit is
        re-validated by replay).
        """
        from repro.core import parallel

        stats = ExplorerStats()
        if len(result.reads) != program.num_procs or set(
            dict(result.final_memory)
        ) != set(program.initial_memory):
            return is_sc_result(program, result, stats=stats), stats
        expected_reads = [tuple(values) for values in result.reads]
        expected_memory = tuple(sorted(result.final_memory))
        shard_failpoints = tuple(
            failpoint
            for failpoint in self.failpoints
            if failpoint.task_kind in ("shard", "coordinator", "*")
        )
        verdict = parallel.parallel_is_sc_result(
            program,
            expected_reads,
            expected_memory,
            2_000_000,
            parallel.resolve_jobs(self.explore_jobs),
            stats=stats,
            failpoints=shard_failpoints,
            shard_stats=self.shard_stats,
        )
        return verdict, stats

    def _judge_new_results(
        self,
        session: _Session,
        cells: Sequence[_SweepCell],
        per_cell: Sequence[Sequence[RunSummary]],
        journal: Optional[CheckpointJournal] = None,
        identities: Optional[List[Tuple[str, str]]] = None,
    ) -> None:
        """Judge every not-yet-cached distinct result, once, possibly in
        parallel, and file the verdicts in :attr:`sc_cache`.

        With a store attached, each verdict is merged into the shared
        cache and flushed to disk *as it lands* (crash tolerance: a
        judgment computed is a judgment persisted), and the judging cost
        is attributed to the observing cell's cost record.
        """
        pending: List[Tuple[int, Result]] = []
        claimed: Set[Tuple[str, Result]] = set()
        for cell_index, summaries in enumerate(per_cell):
            program = cells[cell_index].program
            for summary in summaries:
                key = self.sc_cache.key(program, summary.result)
                if key in claimed:
                    continue
                claimed.add(key)
                if (
                    self.sc_cache.lookup_or_quarantine(program, summary.result)
                    is None
                ):
                    pending.append((cell_index, summary.result))

        # Cost-aware routing: straggler cells are judged parent-side as
        # sharded explorations, everything else goes through the pool.
        # Pooled entries stay a *prefix* of ``pending`` so every index in
        # the on_result callback and the zips below is unchanged.
        shard_cells = self._shard_cell_indices(cells, identities)
        sharded: List[Tuple[int, Result]] = []
        if shard_cells:
            pooled = [
                entry for entry in pending if entry[0] not in shard_cells
            ]
            sharded = [entry for entry in pending if entry[0] in shard_cells]
            pending = pooled + sharded

        on_result = None
        if self.store is not None:
            def on_result(index: int, task: tuple, value: object) -> None:
                cell_index, result = pending[index]
                verdict, _stats = value
                program = cells[cell_index].program
                fingerprint = program_fingerprint(program)
                self.sc_cache.store_by_fingerprint(
                    fingerprint, result, verdict, program=program
                )
                self.store.record_sc(
                    fingerprint, result, verdict, program=program
                )

        if self._owns_plan and pending:
            self.monitor.add_extra("judge", len(pending))

        pooled_count = len(pending) - len(sharded)
        values = session.map(
            [
                ("judge", cell_index, result)
                for cell_index, result in pending[:pooled_count]
            ],
            on_result=on_result,
        )
        task_seconds = list(session.task_seconds)
        for cell_index, result in sharded:
            shard_start = time.perf_counter()
            value = self._judge_sharded(cells[cell_index].program, result)
            seconds = time.perf_counter() - shard_start
            task_seconds.append(seconds)
            values.append(value)
            if on_result is not None:
                on_result(
                    len(values) - 1, ("judge", cell_index, result), value
                )
            # Sharded judges bypass the session, so tick progress here.
            self._task_landed(("judge", cell_index, result), seconds)
        for (cell_index, result), (verdict, stats) in zip(pending, values):
            self.explorer_stats.merge(stats)
            program = cells[cell_index].program
            self.sc_cache.store(program, result, verdict)
            if journal is not None:
                journal.record_judgment(
                    program_fingerprint(program), result, verdict
                )
        if self.store is not None and identities is not None and pending:
            acc: Dict[int, Tuple[int, int]] = {}
            for (cell_index, _result), seconds, (_verdict, stats) in zip(
                pending, task_seconds, values
            ):
                wall_us, states = acc.get(cell_index, (0, 0))
                acc[cell_index] = (
                    wall_us + int(seconds * 1_000_000),
                    states + (stats.states if stats is not None else 0),
                )
            for cell_index, (wall_us, states) in sorted(acc.items()):
                fingerprint, policy_name = identities[cell_index]
                self.store.record_cost(
                    cell_key(fingerprint, policy_name),
                    runs=0,
                    wall_us=wall_us,
                    states=states,
                )

    def _assemble_sweep(
        self,
        cell: _SweepCell,
        seeds: Sequence[int],
        summaries: Sequence[RunSummary],
    ) -> SweepReport:
        """Fold one cell's summaries exactly as the serial sweep would."""
        seen: Set[Result] = set()
        non_sc: List[Result] = []
        condition_problems: List[str] = []
        cycles: List[int] = []
        for summary in summaries:
            cycles.append(summary.cycles)
            condition_problems.extend(summary.condition_violations)
            if summary.result in seen:
                continue
            seen.add(summary.result)
            if not self.sc_cache.judge(
                cell.program, summary.result, quarantine=True
            ):
                non_sc.append(summary.result)
        if summaries:
            policy_name = summaries[0].policy_name
        else:
            policy_name = cell.policy_factory().name
        return SweepReport(
            program=cell.program,
            policy_name=policy_name,
            seeds_run=len(seeds),
            distinct_results=len(seen),
            non_sc_results=non_sc,
            condition_violations=condition_problems,
            mean_cycles=sum(cycles) / len(cycles) if cycles else 0.0,
        )

    # ------------------------------------------------------------------
    # Entry points (mirror the serial API)
    # ------------------------------------------------------------------

    def hardware_summaries(
        self,
        program: Program,
        policy_factory: Callable[[], object],
        config: Optional[SystemConfig] = None,
        seeds: Sequence[int] = range(20),
        check_51_conditions: bool = False,
    ) -> List[RunSummary]:
        """Raw per-seed run summaries (no SC judging) -- the timing path
        the performance benchmarks fan out."""
        config = config or SystemConfig()
        seeds = list(seeds)
        cell = _SweepCell(program, policy_factory, config, check_51_conditions)
        if self.monitor is not None and self.monitor.claim_plan():
            self._owns_plan = True
            self.monitor.plan([(program.name, len(seeds), 0.0)])
        with self._session(_TaskContext(cells=(cell,))) as session:
            return self._run_cells(session, [cell], seeds)[0]

    def contract_sweep(
        self,
        program: Program,
        policy_factory: Callable[[], object],
        config: Optional[SystemConfig] = None,
        seeds: Sequence[int] = range(20),
        check_51_conditions: bool = False,
    ) -> SweepReport:
        """Parallel :func:`repro.verify.sweeps.contract_sweep`."""
        config = config or SystemConfig()
        seeds = list(seeds)
        cell = _SweepCell(program, policy_factory, config, check_51_conditions)
        cells = [cell]
        identities = self._cell_identities(cells)
        per_cell: List[List[Optional[RunSummary]]] = [[None] * len(seeds)]
        run_keys = self._fill_from_store(cells, seeds, per_cell, identities)
        if self.monitor is not None and self.monitor.claim_plan():
            self._owns_plan = True
            self.monitor.plan([(program.name, len(seeds), 0.0)])
            filled = sum(1 for summary in per_cell[0] if summary is not None)
            if filled:
                self.monitor.prefill(0, filled)
        with self._session(_TaskContext(cells=(cell,))) as session:
            tasks, positions = self._plan_run_tasks(
                cells, seeds, per_cell, identities
            )

            on_result = None
            if self.store is not None:
                def on_result(index: int, task: tuple, value) -> None:
                    cell_index, chunk = positions[index]
                    for pos, summary in zip(chunk, value):
                        self.store.record_run(
                            run_keys[(cell_index, pos)],
                            _encode_summary(summary),
                        )

            values = session.map(tasks, on_result=on_result)
            for (cell_index, chunk), summaries in zip(positions, values):
                for pos, summary in zip(chunk, summaries):
                    per_cell[cell_index][pos] = summary
            self._flush_run_costs(session, positions, identities)
            self._judge_new_results(
                session, cells, per_cell, identities=identities
            )
        return self._assemble_sweep(cell, seeds, per_cell[0])

    def definition2_sweep(
        self,
        programs: Iterable[Program],
        policy_factories: Dict[str, Callable[[], object]],
        config: Optional[SystemConfig] = None,
        seeds: Sequence[int] = range(20),
        drf0_seeds: Sequence[int] = range(30),
        exhaustive_drf0: bool = False,
        check_51_conditions: bool = False,
        journal_path: Optional[str] = None,
        resume: bool = False,
    ) -> Definition2Evidence:
        """Parallel :func:`repro.verify.sweeps.definition2_sweep`.

        With ``journal_path``, every completed unit of work (hardware run,
        DRF0 verdict, SC judgment) is appended to a checkpoint journal as
        it lands; with ``resume`` the journal is loaded first and only the
        units it is missing are recomputed.  The output is bit-identical
        either way -- the journal changes how results are *obtained*, never
        what they are.  Resuming against a journal whose signature does not
        match this sweep's inputs raises :class:`JournalError`.
        """
        config = config or SystemConfig()
        programs = list(programs)
        seeds = list(seeds)
        drf0_tuple = tuple(drf0_seeds)
        cells = [
            _SweepCell(program, factory, config, check_51_conditions)
            for program in programs
            for factory in policy_factories.values()
        ]

        journal: Optional[CheckpointJournal] = None
        journaled_runs: Dict[Tuple[int, int], RunSummary] = {}
        if journal_path is not None:
            signature = sweep_signature(
                [program_fingerprint(p) for p in programs],
                tuple(policy_factories),
                repr(config),
                seeds,
                drf0_tuple,
                exhaustive_drf0,
                check_51_conditions,
            )
            if resume:
                state = CheckpointJournal.load(journal_path)
                if state.signature is None:
                    raise JournalError(
                        f"cannot resume: no usable journal at {journal_path}"
                    )
                if state.signature != signature:
                    raise JournalError(
                        "journal signature does not match this sweep's "
                        "inputs (different programs, policies, config, or "
                        "seeds) -- refusing to splice foreign results"
                    )
                fp_to_program = {
                    program_fingerprint(p): p for p in programs
                }
                for (fp, result), verdict in state.judgments.items():
                    program = fp_to_program.get(fp)
                    if program is not None:
                        self.sc_cache.store(program, result, verdict)
                for index, verdict in state.drf0.items():
                    if 0 <= index < len(programs):
                        self.drf0_cache.store(
                            programs[index],
                            exhaustive_drf0,
                            drf0_tuple,
                            verdict,
                        )
                for (cell_index, pos), summary in state.runs.items():
                    if 0 <= cell_index < len(cells) and 0 <= pos < len(seeds):
                        try:
                            journaled_runs[(cell_index, pos)] = (
                                _decode_summary(summary)
                            )
                        except (KeyError, TypeError):
                            pass  # malformed payload: recompute this unit
                self.resilience["journal_units_reused"] = (
                    self.resilience.get("journal_units_reused", 0)
                    + state.units
                )
            journal = CheckpointJournal(journal_path)
            journal.open(signature, fresh=not resume)

        identities = self._cell_identities(cells)
        if self.monitor is not None and self.monitor.claim_plan():
            self._owns_plan = True
            policy_names = [
                name for _ in programs for name in policy_factories
            ]
            expected = [0.0] * len(cells)
            if identities is not None:
                state = self.store.warm()
                for index, (fingerprint, policy_name) in enumerate(
                    identities
                ):
                    cost = state.costs.get(
                        cell_key(fingerprint, policy_name)
                    )
                    if cost:
                        expected[index] = cost.us_per_run
            self.monitor.plan(
                [
                    (
                        f"{cell.program.name}/{policy_names[index]}",
                        len(seeds),
                        expected[index],
                    )
                    for index, cell in enumerate(cells)
                ]
            )
        drf0_mode: object = (
            "exhaustive" if exhaustive_drf0 else ("sampled", drf0_tuple)
        )
        context = _TaskContext(
            cells=tuple(cells),
            programs=tuple(programs),
            exhaustive_drf0=exhaustive_drf0,
            drf0_seeds=drf0_tuple,
        )
        try:
            with self._session(context) as session:
                drf0_pending = [
                    index
                    for index, program in enumerate(programs)
                    if self.drf0_cache.lookup_or_quarantine(
                        program, exhaustive_drf0, drf0_tuple
                    )
                    is None
                ]
                per_cell: List[List[Optional[RunSummary]]] = [
                    [None] * len(seeds) for _ in cells
                ]
                for (cell_index, pos), summary in journaled_runs.items():
                    per_cell[cell_index][pos] = summary
                run_keys = self._fill_from_store(
                    cells, seeds, per_cell, identities
                )
                if self._owns_plan:
                    for cell_index in range(len(cells)):
                        filled = sum(
                            1
                            for summary in per_cell[cell_index]
                            if summary is not None
                        )
                        if filled:
                            self.monitor.prefill(cell_index, filled)
                    self.monitor.add_extra("drf0", len(drf0_pending))
                    self.monitor.poll(force=True)
                run_tasks, task_positions = self._plan_run_tasks(
                    cells, seeds, per_cell, identities
                )
                drf0_tasks = [("drf0", index) for index in drf0_pending]

                def on_result(index: int, task: tuple, value: object) -> None:
                    if task[0] == "drf0":
                        verdict = value[0]
                        if journal is not None:
                            journal.record_drf0(task[1], verdict)
                        if self.store is not None:
                            program = programs[task[1]]
                            self.store.record_drf0(
                                program_fingerprint(program),
                                drf0_mode,
                                verdict,
                                program=program,
                            )
                        return
                    cell_index, chunk = task_positions[
                        index - len(drf0_tasks)
                    ]
                    for pos, summary in zip(chunk, value):
                        encoded = _encode_summary(summary)
                        if journal is not None:
                            journal.record_run(cell_index, pos, encoded)
                        if self.store is not None:
                            self.store.record_run(
                                run_keys[(cell_index, pos)], encoded
                            )

                values = session.map(
                    drf0_tasks + run_tasks,
                    on_result=(
                        on_result
                        if journal is not None or self.store is not None
                        else None
                    ),
                )
                for index, (verdict, stats) in zip(
                    drf0_pending, values[: len(drf0_tasks)]
                ):
                    if stats is not None:
                        self.explorer_stats.merge(stats)
                    self.drf0_cache.store(
                        programs[index], exhaustive_drf0, drf0_tuple, verdict
                    )
                for (cell_index, chunk), summaries in zip(
                    task_positions, values[len(drf0_tasks) :]
                ):
                    for pos, summary in zip(chunk, summaries):
                        per_cell[cell_index][pos] = summary
                self._flush_run_costs(
                    session, task_positions, identities,
                    offset=len(drf0_tasks),
                )
                self._judge_new_results(
                    session, cells, per_cell, journal=journal,
                    identities=identities,
                )
        finally:
            if journal is not None:
                journal.close()

        evidence = Definition2Evidence()
        cell_index = 0
        for program in programs:
            drf0 = self.drf0_cache.lookup(program, exhaustive_drf0, drf0_tuple)
            assert drf0 is not None
            for name in policy_factories:
                report = self._assemble_sweep(
                    cells[cell_index], seeds, per_cell[cell_index]
                )
                evidence.rows.append(evidence_row(program, drf0, name, report))
                cell_index += 1
        return evidence

    def fuzz(
        self,
        seeds: Sequence[int],
        generator: Optional[GeneratorConfig] = None,
        hardware_seeds: Sequence[int] = range(3),
        check_cross_enumerators: bool = True,
    ) -> FuzzReport:
        """Parallel :func:`repro.verify.fuzz.fuzz` (one task per seed).

        The worker-local SC memo is warmed from the engine's cache (and
        therefore from the persistent store) *before* the fork; newly
        computed verdicts ride back with each task's outcome and are
        merged into the shared cache -- and flushed to the store -- as
        they land, with the memo's hit/miss deltas folded into the
        parent's :class:`~repro.verify.cache.CacheStats` so parallel
        campaigns report true hit rates.
        """
        seeds = list(seeds)
        context = _TaskContext(
            generator=generator,
            fuzz_hardware_seeds=tuple(hardware_seeds),
            check_cross_enumerators=check_cross_enumerators,
        )
        if self.monitor is not None and self.monitor.claim_plan():
            self._owns_plan = True
            self.monitor.plan([("fuzz", len(seeds), 0.0)])
        # Reset the (module-global, fork-inherited) worker memo to exactly
        # what this engine's cache knows: leftovers from an earlier
        # campaign in this process would turn misses into hits and make
        # the reported hit rate depend on unrelated history.
        _WORKER_SC_MEMO.clear()
        for fingerprint, result, verdict in self.sc_cache.entries():
            _WORKER_SC_MEMO[(fingerprint, result)] = verdict

        def on_result(index: int, task: tuple, value) -> None:
            _outcome, new_verdicts, (hits, misses) = value
            self.sc_cache.stats.add(hits=hits, misses=misses)
            for new in new_verdicts:
                # Merge sibling workers' judgments into the shared cache
                # (and the parent's own serial-path memo) mid-run...
                _WORKER_SC_MEMO.setdefault(
                    (new.fingerprint, new.result), new.verdict
                )
                self.sc_cache.store_by_fingerprint(
                    new.fingerprint, new.result, new.verdict,
                    program=new.program,
                )
                self.explorer_stats.states += new.states
                # ... and persist them immediately (duplicates from
                # sibling workers deduplicate at the store).
                if self.store is not None:
                    self.store.record_sc(
                        new.fingerprint, new.result, new.verdict,
                        program=new.program,
                    )

        with self._session(context) as session:
            values = session.map(
                [("fuzz", seed) for seed in seeds], on_result=on_result
            )
        outcomes: List[SeedOutcome] = [value[0] for value in values]
        return merge_outcomes(outcomes)

    def diff_campaign(
        self,
        seeds: Sequence[int],
        generator: Optional[GeneratorConfig] = None,
        hardware_seeds: Sequence[int] = range(2),
        minimize: bool = True,
    ) -> DiffReport:
        """Parallel :func:`repro.verify.diff.diff_campaign` (one task per
        seed): the axiomatic solver differentially checked against the
        legacy enumerator, the operational explorers, and the hardware
        simulator over the generated-program corpus.

        The expensive shared sub-question -- each program's operational
        DRF0 verdict -- is memoized exactly like fuzz's SC judgments: the
        worker-local memo is warmed from the engine's cache (and hence
        the persistent store) before the fork, new verdicts ride back
        with each outcome and are flushed to the store as they land.
        Disagreements are auto-minimized in the parent (serial,
        deterministic) after the fold.
        """
        seeds = list(seeds)
        context = _TaskContext(
            generator=generator,
            diff_hardware_seeds=tuple(hardware_seeds),
        )
        if self.monitor is not None and self.monitor.claim_plan():
            self._owns_plan = True
            self.monitor.plan([("diff", len(seeds), 0.0)])
        _WORKER_DRF0_MEMO.clear()
        for fingerprint, mode, verdict in self.drf0_cache.entries():
            if mode == "exhaustive":
                _WORKER_DRF0_MEMO[fingerprint] = verdict

        def on_result(index: int, task: tuple, value) -> None:
            _outcome, new_verdicts, (hits, misses) = value
            self.drf0_cache.stats.add(hits=hits, misses=misses)
            for fingerprint, verdict, program in new_verdicts:
                _WORKER_DRF0_MEMO.setdefault(fingerprint, verdict)
                self.drf0_cache.store_by_key(
                    fingerprint, "exhaustive", verdict
                )
                if self.store is not None:
                    self.store.record_drf0(
                        fingerprint, "exhaustive", verdict, program=program
                    )

        with self._session(context) as session:
            values = session.map(
                [("diff", seed) for seed in seeds], on_result=on_result
            )
        outcomes: List[DiffSeedOutcome] = [value[0] for value in values]
        report = merge_diff_outcomes(outcomes)
        if minimize:
            for disagreement in report.disagreements:
                minimize_disagreement(
                    disagreement, generator, hardware_seeds
                )
        return report

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def metrics_snapshot(self, registry=None):
        """Fold the engine's counters into a metrics registry.

        Includes everything the engine tracks: dispatched task counts (if
        a registry was attached at construction they are already there),
        verdict-cache hit/miss counters, the persistent store's
        load/flush/reuse counters (when a store is attached), the
        aggregate explorer counters from oracle tasks, and the
        intra-cell sharding counters (``engine.explore.*``: shard
        balance, steal traffic, cancel latency).
        """
        from repro.obs.metrics import (
            MetricsRegistry,
            explorer_metrics,
            shard_metrics,
            store_metrics,
            stream_metrics,
        )

        registry = registry if registry is not None else (
            self.metrics if self.metrics is not None else MetricsRegistry()
        )
        registry.counter("engine.jobs").value = self.jobs
        for name, cache in (
            ("sc_cache", self.sc_cache),
            ("drf0_cache", self.drf0_cache),
        ):
            registry.counter(f"engine.{name}.hits").value = cache.stats.hits
            registry.counter(f"engine.{name}.misses").value = cache.stats.misses
            registry.counter(f"engine.{name}.quarantined").value = (
                cache.stats.quarantined
            )
        for name, count in sorted(self.resilience.items()):
            registry.counter(f"engine.resilience.{name}").value = count
        if self.store is not None:
            store_metrics(self.store.stats, registry, prefix="engine.store")
        explorer_metrics(
            self.explorer_stats, registry, prefix="engine.explorer"
        )
        shard_metrics(self.shard_stats, registry, prefix="engine.explore")
        if self.monitor is not None:
            stream_metrics(
                self.monitor.fold,
                reader=self.monitor.reader,
                registry=registry,
                prefix="engine.stream",
            )
        # A service dispatcher (the daemon's supervised fleet) exposes a
        # flat counters dict: lease reclamations, retry/backoff charges,
        # breaker transitions, worker crash/replace events.
        counters = getattr(self.dispatcher, "counters", None)
        if counters:
            for name, count in sorted(counters.items()):
                registry.counter(f"engine.service.{name}").value = count
        return registry
