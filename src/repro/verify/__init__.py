"""Verification harnesses: contract sweeps, the Section-5.1 monitor, the
parallel verification engine, and the chaos/resilience suite."""

from repro.verify.cache import (
    CacheIntegrityError,
    DRF0VerdictCache,
    SCVerdictCache,
    program_fingerprint,
)
from repro.verify.chaos import ChaosReport, PlanOutcome, chaos_sweep
from repro.verify.conditions import ConditionReport, check_conditions
from repro.verify.engine import (
    Failpoint,
    InjectedTaskError,
    RunSummary,
    VerificationEngine,
)
from repro.verify.fuzz import FuzzReport, SeedOutcome, fuzz, fuzz_one_seed
from repro.verify.journal import (
    CheckpointJournal,
    JournalError,
    JournalState,
    sweep_signature,
)
from repro.verify.store import (
    SEMANTICS_VERSION,
    AuditReport,
    StoreStats,
    VerdictStore,
)
from repro.verify.sweeps import (
    Definition2Evidence,
    SweepReport,
    contract_sweep,
    definition2_sweep,
)

__all__ = [
    "AuditReport",
    "CacheIntegrityError",
    "ChaosReport",
    "CheckpointJournal",
    "ConditionReport",
    "DRF0VerdictCache",
    "Definition2Evidence",
    "Failpoint",
    "FuzzReport",
    "InjectedTaskError",
    "JournalError",
    "JournalState",
    "PlanOutcome",
    "RunSummary",
    "SCVerdictCache",
    "SEMANTICS_VERSION",
    "SeedOutcome",
    "StoreStats",
    "SweepReport",
    "VerdictStore",
    "VerificationEngine",
    "chaos_sweep",
    "check_conditions",
    "contract_sweep",
    "definition2_sweep",
    "fuzz",
    "fuzz_one_seed",
    "program_fingerprint",
    "sweep_signature",
]
