"""Verification harnesses: contract sweeps, the Section-5.1 monitor, and
the parallel verification engine."""

from repro.verify.cache import (
    CacheIntegrityError,
    DRF0VerdictCache,
    SCVerdictCache,
    program_fingerprint,
)
from repro.verify.conditions import ConditionReport, check_conditions
from repro.verify.engine import RunSummary, VerificationEngine
from repro.verify.fuzz import FuzzReport, SeedOutcome, fuzz, fuzz_one_seed
from repro.verify.sweeps import (
    Definition2Evidence,
    SweepReport,
    contract_sweep,
    definition2_sweep,
)

__all__ = [
    "CacheIntegrityError",
    "ConditionReport",
    "DRF0VerdictCache",
    "Definition2Evidence",
    "FuzzReport",
    "RunSummary",
    "SCVerdictCache",
    "SeedOutcome",
    "SweepReport",
    "VerificationEngine",
    "check_conditions",
    "contract_sweep",
    "definition2_sweep",
    "fuzz",
    "fuzz_one_seed",
    "program_fingerprint",
]
