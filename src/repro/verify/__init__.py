"""Verification harnesses: contract sweeps and the Section-5.1 monitor."""

from repro.verify.conditions import ConditionReport, check_conditions
from repro.verify.fuzz import FuzzReport, fuzz
from repro.verify.sweeps import (
    Definition2Evidence,
    SweepReport,
    contract_sweep,
    definition2_sweep,
)

__all__ = [
    "ConditionReport",
    "Definition2Evidence",
    "FuzzReport",
    "SweepReport",
    "check_conditions",
    "contract_sweep",
    "definition2_sweep",
    "fuzz",
]
