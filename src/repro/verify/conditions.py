"""Runtime monitor for the five sufficient conditions of Section 5.1.

Appendix B proves these conditions sufficient for weak ordering with
respect to DRF0.  This monitor checks them *post hoc* on the timestamped
access records of a hardware run, giving an executable counterpart to the
proof: if an implementation claims to satisfy Section 5.1, every run must
pass; a violation pinpoints the offending accesses.

Condition 1 (intra-processor dependencies preserved) holds by construction
of the in-order front end (operands are evaluated at request time, reads
block for their values); the monitor re-checks its observable shadow --
that each processor's accesses are generated in program order.

Note on condition 3's globally-performed clause and condition 5: both
quantify over *commit* events of other processors' synchronization
operations, so the monitor checks them pairwise over the per-location
commit order of sync operations.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.access import AccessRecord
from repro.sim.system import MachineRun


@dataclass
class ConditionReport:
    """Violations found per Section-5.1 condition (empty lists = clean)."""

    run: MachineRun
    violations: Dict[str, List[str]] = field(default_factory=lambda: defaultdict(list))

    @property
    def ok(self) -> bool:
        """True when every checked condition held for this run."""
        return not any(self.violations.values())

    def add(self, condition: str, message: str) -> None:
        """Record one violation."""
        self.violations[condition].append(message)


def check_conditions(
    run: MachineRun, drf1_optimized: bool = False
) -> ConditionReport:
    """Check the Section-5.1 conditions on one hardware run.

    With ``drf1_optimized``, read-only synchronization operations are
    treated as data reads throughout: the Section-6 optimization
    deliberately removes them from the sync-serialization conditions
    (they spin on shared cached copies), which is sound under the DRF1
    software model but *not* under plain DRF0.
    """
    report = ConditionReport(run)
    if drf1_optimized:
        run = _demote_read_syncs(run)
    _check_condition1(run, report)
    _check_condition2(run, report)
    _check_condition3(run, report)
    _check_condition4(run, report)
    _check_condition5(run, report)
    return report


def _demote_read_syncs(run: MachineRun):
    """A view of the run where SYNC_READ accesses count as data reads."""
    import copy

    from repro.core.types import OpKind

    view = copy.copy(run)
    view.raw_accesses = []
    for per_proc in run.raw_accesses:
        demoted = []
        for access in per_proc:
            if access.kind is OpKind.SYNC_READ:
                clone = copy.copy(access)
                clone.kind = OpKind.DATA_READ
                demoted.append(clone)
            else:
                demoted.append(access)
        view.raw_accesses.append(demoted)
    return view


def _all_accesses(run: MachineRun) -> List[AccessRecord]:
    return [a for per_proc in run.raw_accesses for a in per_proc]


def _check_condition1(run: MachineRun, report: ConditionReport) -> None:
    """Program-order generation (observable shadow of dependency preservation)."""
    for proc, accesses in enumerate(run.raw_accesses):
        times = [a.generate_time for a in accesses if a.generated]
        if any(t2 < t1 for t1, t2 in zip(times, times[1:])):
            report.add(
                "condition1",
                f"P{proc} generated accesses out of program order: {times}",
            )


def _check_condition2(run: MachineRun, report: ConditionReport) -> None:
    """Writes to one location are totally ordered by commit times."""
    by_location: Dict[str, List[AccessRecord]] = defaultdict(list)
    for access in _all_accesses(run):
        if access.has_write and access.committed:
            by_location[access.location].append(access)
    for location, writes in by_location.items():
        writes.sort(key=lambda a: a.commit_time)
        for w1, w2 in zip(writes, writes[1:]):
            if w1.proc != w2.proc and w1.commit_time == w2.commit_time:
                report.add(
                    "condition2",
                    f"writes to {location} by P{w1.proc} and P{w2.proc} "
                    f"committed at the same cycle {w1.commit_time}",
                )


def _check_condition3(run: MachineRun, report: ConditionReport) -> None:
    """Per-location sync ops: commit order == globally-performed order,
    and an earlier sync is fully done before a later one starts."""
    by_location: Dict[str, List[AccessRecord]] = defaultdict(list)
    for access in _all_accesses(run):
        if access.is_sync and access.committed:
            by_location[access.location].append(access)
    for location, syncs in by_location.items():
        syncs.sort(key=lambda a: a.commit_time)
        for s1, s2 in zip(syncs, syncs[1:]):
            if s1.proc == s2.proc:
                continue
            if s1.globally_performed and s2.globally_performed:
                if s1.gp_time > s2.gp_time:
                    report.add(
                        "condition3",
                        f"sync ops on {location}: commit order P{s1.proc}"
                        f"@{s1.commit_time} < P{s2.proc}@{s2.commit_time} but "
                        f"gp order reversed ({s1.gp_time} > {s2.gp_time})",
                    )
            if s1.globally_performed and s1.gp_time > s2.commit_time:
                report.add(
                    "condition3",
                    f"sync {location}: P{s1.proc}'s op globally performed at "
                    f"{s1.gp_time}, after P{s2.proc}'s committed at "
                    f"{s2.commit_time}",
                )


def _check_condition4(run: MachineRun, report: ConditionReport) -> None:
    """No access generated until all previous sync ops committed."""
    for proc, accesses in enumerate(run.raw_accesses):
        for i, access in enumerate(accesses):
            if not access.generated:
                continue
            for earlier in accesses[:i]:
                if earlier.is_sync and (
                    not earlier.committed
                    or earlier.commit_time > access.generate_time
                ):
                    report.add(
                        "condition4",
                        f"P{proc} generated access #{access.uid} at "
                        f"{access.generate_time} before sync #{earlier.uid} "
                        f"committed ({earlier.commit_time})",
                    )


def _check_condition5(run: MachineRun, report: ConditionReport) -> None:
    """After Pi's sync S commits, no other processor's sync on the same
    location commits until Pi's pre-S reads committed and writes globally
    performed."""
    by_location: Dict[str, List[AccessRecord]] = defaultdict(list)
    for access in _all_accesses(run):
        if access.is_sync and access.committed:
            by_location[access.location].append(access)
    for location, syncs in by_location.items():
        syncs.sort(key=lambda a: a.commit_time)
        for i, s1 in enumerate(syncs):
            owner = run.raw_accesses[s1.proc]
            before = [
                a
                for a in owner
                if a.generated
                and a.generate_time is not None
                and a.po_index < s1.po_index
            ]
            for s2 in syncs[i + 1 :]:
                if s2.proc == s1.proc:
                    continue
                for a in before:
                    if a.has_read and (
                        not a.committed or a.commit_time > s2.commit_time
                    ):
                        report.add(
                            "condition5",
                            f"{location}: P{s2.proc} sync committed at "
                            f"{s2.commit_time} before P{s1.proc}'s earlier "
                            f"read #{a.uid} committed",
                        )
                    if a.has_write and (
                        not a.globally_performed or a.gp_time > s2.commit_time
                    ):
                        report.add(
                            "condition5",
                            f"{location}: P{s2.proc} sync committed at "
                            f"{s2.commit_time} before P{s1.proc}'s earlier "
                            f"write #{a.uid} was globally performed",
                        )
