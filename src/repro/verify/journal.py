"""Checkpoint journal: crash-tolerant resume for interrupted sweeps.

A Definition-2 sweep is a pure function of its inputs, so any prefix of
its work can be replayed from a log instead of recomputed.  The journal
is an append-only JSONL file:

* line 1 is a ``meta`` record carrying a **signature** -- a content hash
  of everything the sweep's output depends on (program fingerprints,
  policy names, the hardware config, the seed lists, the DRF0 mode).
  ``jobs`` is deliberately excluded: a sweep journaled under ``--jobs 4``
  resumes correctly under ``--jobs 1`` because the engine's output is
  independent of parallelism;
* each subsequent line records one completed unit of work -- a hardware
  run (keyed by *cell index* and *seed position*, so duplicate seed
  values cannot collide), a DRF0 program verdict, or an SC-membership
  judgment -- and is flushed as soon as the unit completes.

Every line carries a truncated SHA-256 checksum of its own payload.  A
process killed mid-write leaves a partial last line; loading is
**tolerant**: unparsable or checksum-failing lines are dropped (counted),
never fatal, so a resumed sweep recomputes exactly the units that did not
make it to disk.  A journal whose signature does not match the requested
sweep is refused -- resuming someone else's checkpoint would splice wrong
results into the output.

Continuation segments: a resuming writer never appends to the base file.
A SIGKILLed predecessor usually leaves a torn final line, and ``open(...,
"a")`` would weld the first new record onto that partial line --
corrupting *both* records (the torn one was already unrecoverable; the
new one is collateral).  Instead each writer that continues an existing
journal claims a fresh ``<path>.seg-N`` sibling with ``O_CREAT|O_EXCL``
(so two daemons resuming the same campaign can never interleave writes
in one file) and appends there; :meth:`CheckpointJournal.load` merges the
base file and every segment in claim order.  Segment records win over
base records for the same unit key -- they are strictly newer -- though
for a pure sweep both carry identical values anyway.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, IO, List, Optional, Sequence, Tuple

from repro.core.execution import Result
from repro.obs.tracer import OBS_CLOCK, now_us


class JournalError(RuntimeError):
    """The journal cannot be used for this sweep (missing / mismatched)."""


def segment_paths(path: str) -> List[str]:
    """Existing ``<path>.seg-N`` continuation segments, in claim order."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    prefix = os.path.basename(path) + ".seg-"
    found: List[Tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        if not name.startswith(prefix):
            continue
        suffix = name[len(prefix):]
        if suffix.isdigit():
            found.append((int(suffix), os.path.join(directory, name)))
    return [p for _, p in sorted(found)]


def journal_files(path: str) -> List[str]:
    """Every file belonging to the journal at ``path`` (base + segments),
    existing ones only -- the unit retention GC deletes exactly these."""
    files = [path] if os.path.exists(path) else []
    files.extend(segment_paths(path))
    return files


def _line_checksum(payload: str) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def encode_result(result: Result) -> dict:
    return {
        "reads": [list(reads) for reads in result.reads],
        "mem": [list(pair) for pair in result.final_memory],
    }


def decode_result(data: dict) -> Result:
    return Result(
        reads=tuple(tuple(reads) for reads in data["reads"]),
        final_memory=tuple(
            (loc, value) for loc, value in data["mem"]
        ),
    )


def sweep_signature(
    program_fingerprints: Sequence[str],
    policy_names: Sequence[str],
    config_repr: str,
    seeds: Sequence[int],
    drf0_seeds: Sequence[int],
    exhaustive_drf0: bool,
    check_51_conditions: bool,
) -> str:
    """Content hash of a sweep's output-determining inputs."""
    h = hashlib.sha256()
    h.update(
        repr(
            (
                tuple(program_fingerprints),
                tuple(policy_names),
                config_repr,
                tuple(seeds),
                tuple(drf0_seeds),
                bool(exhaustive_drf0),
                bool(check_51_conditions),
            )
        ).encode()
    )
    return h.hexdigest()


@dataclass
class JournalState:
    """Everything recovered from a journal file."""

    signature: Optional[str] = None
    #: (cell_index, seed_position) -> encoded RunSummary dict.
    runs: Dict[Tuple[int, int], dict] = field(default_factory=dict)
    #: program index -> DRF0 verdict.
    drf0: Dict[int, bool] = field(default_factory=dict)
    #: (program fingerprint, Result) -> SC verdict.
    judgments: Dict[Tuple[str, Result], bool] = field(default_factory=dict)
    #: Lines dropped by the tolerant loader (truncated tail, corruption).
    dropped_lines: int = 0

    @property
    def units(self) -> int:
        """Completed work units recovered."""
        return len(self.runs) + len(self.drf0) + len(self.judgments)


class CheckpointJournal:
    """Append-only JSONL work log for one sweep invocation."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: Optional[IO[str]] = None
        self.records_written = 0

    # -- loading -----------------------------------------------------------

    @staticmethod
    def load(path: str) -> JournalState:
        """Tolerantly parse ``path`` and its continuation segments
        (missing file = empty state)."""
        state = JournalState()
        for part in [path] + segment_paths(path):
            if not os.path.exists(part):
                continue
            with open(part, "r", encoding="utf-8") as fh:
                CheckpointJournal._absorb(state, fh)
        return state

    @staticmethod
    def _absorb(state: JournalState, fh: IO[str]) -> None:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                checksum = record.pop("c")
                payload = json.dumps(record, sort_keys=True)
                if checksum != _line_checksum(payload):
                    raise ValueError("checksum mismatch")
                kind = record["kind"]
                if kind == "meta":
                    state.signature = record["signature"]
                elif kind == "run":
                    state.runs[(record["cell"], record["pos"])] = (
                        record["summary"]
                    )
                elif kind == "drf0":
                    state.drf0[record["index"]] = record["verdict"]
                elif kind == "judge":
                    result = decode_result(record["result"])
                    state.judgments[(record["fp"], result)] = (
                        record["verdict"]
                    )
                else:
                    raise ValueError(f"unknown record kind {kind!r}")
            except (ValueError, KeyError, TypeError):
                state.dropped_lines += 1

    # -- writing -----------------------------------------------------------

    def open(self, signature: str, fresh: bool = False) -> None:
        """Open for writing; write the meta line when starting fresh.

        Continuing an existing journal claims a new ``.seg-N`` sibling
        (O_CREAT|O_EXCL) instead of appending to the base file -- see the
        module docstring for why appending after a SIGKILL corrupts the
        first new record.
        """
        if fresh:
            for stale in segment_paths(self.path):
                os.unlink(stale)
        write_meta = fresh or not os.path.exists(self.path)
        if write_meta:
            self._fh = open(self.path, "w", encoding="utf-8")
        else:
            self._fh = self._claim_segment()
        if write_meta:
            # ts_us/clock stamp the journal onto the shared obs timebase
            # (comparable with heartbeat and snapshot timestamps); the
            # loader reads by key, so older journals without them load.
            self._write(
                {
                    "kind": "meta",
                    "signature": signature,
                    "ts_us": now_us(),
                    "clock": OBS_CLOCK,
                }
            )

    def _claim_segment(self) -> IO[str]:
        """Exclusively create the next free ``<path>.seg-N``."""
        n = 1
        while True:
            candidate = f"{self.path}.seg-{n}"
            try:
                fd = os.open(
                    candidate, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                n += 1
                continue
            return os.fdopen(fd, "w", encoding="utf-8")

    def _write(self, record: dict) -> None:
        assert self._fh is not None, "journal not open"
        payload = json.dumps(record, sort_keys=True)
        record["c"] = _line_checksum(payload)
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self.records_written += 1

    def record_run(self, cell_index: int, pos: int, summary: dict) -> None:
        """Journal one completed hardware run (encoded RunSummary)."""
        self._write(
            {"kind": "run", "cell": cell_index, "pos": pos, "summary": summary}
        )

    def record_drf0(self, index: int, verdict: bool) -> None:
        """Journal one DRF0 program verdict."""
        self._write({"kind": "drf0", "index": index, "verdict": bool(verdict)})

    def record_judgment(
        self, fingerprint: str, result: Result, verdict: bool
    ) -> None:
        """Journal one SC-membership judgment."""
        self._write(
            {
                "kind": "judge",
                "fp": fingerprint,
                "result": encode_result(result),
                "verdict": bool(verdict),
            }
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
