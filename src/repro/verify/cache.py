"""Memoization for the verification engine: verdict caches keyed by program.

The guided SC-membership search (:func:`repro.core.contract.is_sc_result`)
is the expensive half of every contract sweep, and the same (program,
result) pair recurs constantly: across nondeterminism seeds, across
policies run on the same program, and across workers of a parallel sweep.
The caches here make each judgment happen exactly once.

Keys are *content* keys, not identity keys: :func:`program_fingerprint`
hashes the program's instruction streams, labels, and initial memory (the
name is deliberately excluded -- two structurally identical programs share
verdicts), and :class:`~repro.core.execution.Result` is already canonical
(per-processor read tuples plus sorted final memory).  Content keys are
what make verdicts portable across worker processes.

Every stored entry carries a checksum over (key, verdict), so an entry
that is corrupted in place -- a worker writing through shared memory it
should not own, a bad merge, a bit flip in a persisted cache -- is caught
at lookup time (:class:`CacheIntegrityError`) rather than silently turning
a non-SC result into "appears SC".  :meth:`SCVerdictCache.audit` goes
further and re-derives every cached verdict from the oracle, catching
entries that were poisoned *consistently* (checksum rewritten to match a
wrong verdict).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.contract import is_sc_result
from repro.core.execution import Result
from repro.machine.program import Program


class CacheIntegrityError(RuntimeError):
    """A cached verdict's checksum no longer matches its key and value."""


def program_fingerprint(program: Program) -> str:
    """Deterministic content hash of a program's semantics.

    Covers the instruction tuples, branch labels, and initial memory;
    excludes the display name so renamed-but-identical programs share
    cache entries.  Stable across processes (unlike ``hash()``, which is
    salted per interpreter).

    Memoized per instance: a sweep looks the same program up once per
    (seed, policy) pair, and :class:`Program` is frozen, so the hash is
    computed once and parked on the instance (``object.__setattr__``
    bypasses the frozen-dataclass guard; fork-inherited copies carry the
    memo with them).
    """
    cached = program.__dict__.get("_content_fingerprint")
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for code in program.threads:
        h.update(repr(code.instructions).encode())
        h.update(repr(sorted(code.labels.items())).encode())
        h.update(b"\x00")
    h.update(repr(sorted(program.initial_memory.items())).encode())
    fingerprint = h.hexdigest()
    object.__setattr__(program, "_content_fingerprint", fingerprint)
    return fingerprint


def _checksum(key: object, verdict: bool) -> str:
    return hashlib.sha256(repr((key, verdict)).encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters, for reporting and for asserting reuse in tests.

    ``quarantined`` counts entries that failed their integrity check and
    were evicted by a quarantining lookup (the hardened engine path) so
    the verdict was recomputed instead of served or fatally raised.
    """

    hits: int = 0
    misses: int = 0
    quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def add(self, hits: int = 0, misses: int = 0, quarantined: int = 0) -> None:
        """Fold in counters observed elsewhere (worker-process memos
        report their per-task deltas back to the parent through this)."""
        self.hits += hits
        self.misses += misses
        self.quarantined += quarantined


class SCVerdictCache:
    """Memo of guided SC-membership verdicts, keyed by (program, result)."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, Result], Tuple[bool, str]] = {}
        self._programs: Dict[str, Program] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, program: Program, result: Result) -> Tuple[str, Result]:
        """The content key a verdict is filed under."""
        return (program_fingerprint(program), result)

    def lookup(self, program: Program, result: Result) -> Optional[bool]:
        """Cached verdict for (program, result), or None when unjudged.

        Raises :class:`CacheIntegrityError` if the stored entry fails its
        checksum -- a poisoned entry must never be served as a verdict.
        """
        key = self.key(program, result)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        verdict, checksum = entry
        if checksum != _checksum(key, verdict):
            raise CacheIntegrityError(
                f"SC verdict cache entry for {key[0][:12]}.../{result} failed "
                "its integrity check"
            )
        self.stats.hits += 1
        return verdict

    def lookup_or_quarantine(
        self, program: Program, result: Result
    ) -> Optional[bool]:
        """Like :meth:`lookup`, but a corrupted entry is evicted (counted
        in ``stats.quarantined``) and reported as a miss instead of
        raising -- the hardened engine recomputes the verdict and the
        sweep keeps its exact output."""
        try:
            return self.lookup(program, result)
        except CacheIntegrityError:
            self._entries.pop(self.key(program, result), None)
            self.stats.quarantined += 1
            self.stats.misses += 1
            return None

    def store(self, program: Program, result: Result, verdict: bool) -> None:
        """File a verdict (idempotent; later stores overwrite)."""
        key = self.key(program, result)
        self._entries[key] = (bool(verdict), _checksum(key, bool(verdict)))
        self._programs.setdefault(key[0], program)

    def store_by_fingerprint(
        self,
        fingerprint: str,
        result: Result,
        verdict: bool,
        program: Optional[Program] = None,
    ) -> None:
        """File a verdict under an already-computed content key.

        This is how verdicts computed *elsewhere* -- a worker process, a
        persistent store segment -- enter the cache without the original
        :class:`Program` object in hand.  ``program``, when available,
        is registered so :meth:`audit` can re-derive the entry.
        """
        key = (fingerprint, result)
        self._entries[key] = (bool(verdict), _checksum(key, bool(verdict)))
        if program is not None:
            self._programs.setdefault(fingerprint, program)

    def entries(self) -> List[Tuple[str, Result, bool]]:
        """Every (fingerprint, result, verdict) currently cached, in
        insertion order (used to warm worker memos and flush to disk)."""
        return [
            (fingerprint, result, verdict)
            for (fingerprint, result), (verdict, _) in self._entries.items()
        ]

    def program_for(self, fingerprint: str) -> Optional[Program]:
        """The program registered for ``fingerprint``, if any."""
        return self._programs.get(fingerprint)

    def judge(
        self, program: Program, result: Result, quarantine: bool = False
    ) -> bool:
        """Cached :func:`is_sc_result`: judge once, remember forever.

        With ``quarantine`` a corrupted entry is evicted and re-judged
        rather than raising :class:`CacheIntegrityError`.
        """
        if quarantine:
            verdict = self.lookup_or_quarantine(program, result)
        else:
            verdict = self.lookup(program, result)
        if verdict is None:
            verdict = is_sc_result(program, result)
            self.store(program, result, verdict)
        return verdict

    def audit(
        self,
        oracle: Callable[[Program, Result], bool] = is_sc_result,
    ) -> List[Tuple[str, Result]]:
        """Re-derive every cached verdict from the oracle.

        Returns the keys whose stored verdict disagrees with a fresh
        oracle run (or whose checksum is broken).  Empty list == cache
        sound.  This catches poisonings the lookup-time checksum cannot:
        an entry rewritten wholesale with a consistent checksum.
        """
        bad: List[Tuple[str, Result]] = []
        for (fingerprint, result), (verdict, checksum) in self._entries.items():
            key = (fingerprint, result)
            if checksum != _checksum(key, verdict):
                bad.append(key)
                continue
            if oracle(self._programs[fingerprint], result) != verdict:
                bad.append(key)
        return bad


class DRF0VerdictCache:
    """Memo of Definition-3 program verdicts.

    Keyed by (program fingerprint, mode): the exhaustive verdict is a pure
    function of the program, the sampled verdict also of the seed set, so
    the sampled key includes the seeds it was derived from.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, object], Tuple[bool, str]] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(program: Program, exhaustive: bool, seeds: Tuple[int, ...]) -> Tuple[str, object]:
        mode: object = "exhaustive" if exhaustive else ("sampled", seeds)
        return (program_fingerprint(program), mode)

    def lookup(
        self, program: Program, exhaustive: bool, seeds: Tuple[int, ...] = ()
    ) -> Optional[bool]:
        key = self._key(program, exhaustive, seeds)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        verdict, checksum = entry
        if checksum != _checksum(key, verdict):
            raise CacheIntegrityError(
                f"DRF0 verdict cache entry for {key[0][:12]}... failed its "
                "integrity check"
            )
        self.stats.hits += 1
        return verdict

    def lookup_or_quarantine(
        self, program: Program, exhaustive: bool, seeds: Tuple[int, ...] = ()
    ) -> Optional[bool]:
        """Quarantining :meth:`lookup`: evict-and-miss on corruption."""
        try:
            return self.lookup(program, exhaustive, seeds)
        except CacheIntegrityError:
            self._entries.pop(self._key(program, exhaustive, seeds), None)
            self.stats.quarantined += 1
            self.stats.misses += 1
            return None

    def store(
        self,
        program: Program,
        exhaustive: bool,
        seeds: Tuple[int, ...],
        verdict: bool,
    ) -> None:
        key = self._key(program, exhaustive, seeds)
        self._entries[key] = (bool(verdict), _checksum(key, bool(verdict)))

    def store_by_key(
        self, fingerprint: str, mode: object, verdict: bool
    ) -> None:
        """File a verdict computed elsewhere (worker / persistent store).

        ``mode`` is the cache's own mode token: ``"exhaustive"`` or
        ``("sampled", seeds_tuple)``.
        """
        key = (fingerprint, mode)
        self._entries[key] = (bool(verdict), _checksum(key, bool(verdict)))

    def entries(self) -> List[Tuple[str, object, bool]]:
        """Every (fingerprint, mode, verdict) currently cached."""
        return [
            (fingerprint, mode, verdict)
            for (fingerprint, mode), (verdict, _) in self._entries.items()
        ]
