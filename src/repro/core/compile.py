"""Program-specialized compiled execution: the explorers' fast inner loop.

E10 left a real regression: the in-place do/undo engine *lost to the
legacy snapshot explorers* on small DPOR/contract runs, because every
:meth:`~repro.core.engine_state.EngineState.step` still paid
``ThreadState`` snapshot/restore (a dict copy), ``run_to_memory_op``
isinstance-dispatch over the ISA, and nested-tuple key hash-consing --
costs that dwarf the useful work of a 6-op litmus test.  Those tiny runs
are exactly what every Definition-2/DRF0 verdict bottoms out in.

This module compiles each :class:`~repro.machine.program.Program` once
into program-specialized execution:

* **Packed state.**  The whole configuration lives in one flat ``list``
  of ints ``S``: per thread a segment ``[pc, reg0, reg1, ...]`` (that
  thread's registers in sorted name order), then the shared memory values
  in sorted-location order.  The packed configuration key is simply the
  interned ``tuple(S)`` -- a flat int tuple, hashed once, instead of the
  interpreter's nested (thread-keys, memory-key) tuples.  The flat key
  induces exactly the same equivalence classes: registers a thread never
  writes stay 0 forever, and the pc stored in ``S`` is the pc of the
  pending memory instruction, i.e. the same (pc, registers, memory)
  triple the interpreted keys encode.

* **Generated step closures.**  Each thread's code is compiled (via
  ``exec`` of generated source) into one ``advance(S)`` function that
  runs the thread's local instructions as direct array reads/writes and
  returns ``(pc, write_value)`` of the next memory instruction -- or
  ``None`` when the thread halts.  No instruction dispatch, no operand
  boxing, no ``ThreadState``.

* **Static descriptors.**  Everything else a step needs -- op kind,
  location, the memory slot index, the destination register slot -- is
  precomputed per (thread, pc) at compile time, so
  :meth:`CompiledEngine.step` is a few list writes plus an undo-frame
  append, and :meth:`CompiledEngine.undo` is a slice assignment.

:func:`make_engine` is the factory every explorer routes through.  It
returns a :class:`CompiledEngine` when compilation is enabled and
succeeds, and falls back to the interpreted
:class:`~repro.core.engine_state.EngineState` otherwise (unknown future
instructions, or the ``REPRO_INTERPRETED_ENGINE=1`` escape hatch /
:func:`interpreted_engine` context manager used by the differential
tests).  Both engines expose the same interface and produce bit-identical
results, executions, and :class:`~repro.core.engine_state.ExplorerStats`
counts -- pinned by ``tests/test_explorer_equivalence.py`` against the
frozen :mod:`repro.core._legacy` oracles.
"""

from __future__ import annotations

import os
import weakref
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.core.engine_state import EngineState, _program_meta
from repro.core.execution import Execution, Result
from repro.core.ops import Operation
from repro.core.types import Location, OpKind, Value
from repro.machine.interpreter import MAX_LOCAL_STEPS, InterpreterError
from repro.machine.isa import (
    Add,
    BranchIf,
    Delay,
    Div,
    Fence,
    Halt,
    Jump,
    Load,
    MemoryInstruction,
    Mov,
    Mul,
    Store,
    Sub,
    SyncLoad,
    SyncStore,
    TestAndSet,
    Unset,
)
from repro.machine.program import Program, registers_used

__all__ = [
    "CompiledEngine",
    "CompiledProgram",
    "CompiledRequest",
    "compiled_enabled",
    "compiled_program",
    "interpreted_engine",
    "make_engine",
    "use_compiled",
]


class CompiledRequest:
    """Static stand-in for a pending :class:`~repro.machine.interpreter.MemRequest`.

    One immutable instance per (thread, pc) memory instruction, built at
    compile time and returned by :meth:`CompiledEngine.pending`.  It
    carries what schedulers inspect -- the instruction, its kind, its
    location.  It deliberately has **no** ``write_value`` attribute: the
    compiled engine resolves write values internally (they can depend on
    registers), so reading one here would be silently stale.
    """

    __slots__ = ("instr", "kind", "location")

    def __init__(self, instr: MemoryInstruction) -> None:
        self.instr = instr
        self.kind = instr.kind
        self.location = instr.location

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompiledRequest {self.kind.value} {self.location}>"


def _operand(value, reg_slot: Dict[str, int]) -> str:
    """Source expression for an operand: register slot read or literal."""
    if isinstance(value, str):
        return f"S[{reg_slot[value]}]"
    return repr(value)


def _has_backward_branch(code) -> bool:
    return any(
        isinstance(instr, (Jump, BranchIf))
        and code.target(instr.label) <= index
        for index, instr in enumerate(code.instructions)
    )


def _thread_source(
    code, base: int, reg_slot: Dict[str, int], fname: str
) -> str:
    """Generate the ``advance`` function source for one thread.

    The function resumes from ``pc = S[base]``, runs local instructions
    as direct array operations, and returns ``(pc, write_value)`` at the
    next memory instruction (storing its pc back into ``S``) or ``None``
    on halt.  Control flow is a flat ``if pc == i`` chain: fall-through
    handles straight-line code and forward branches (later tests simply
    skip), backward branches restart the chain with ``continue``.
    Threads with a backward branch also carry the interpreter's
    local-step guard so a local infinite loop raises instead of hanging.
    """
    guarded = _has_backward_branch(code)
    n = len(code.instructions)
    lines = [f"def {fname}(S):", f"    pc = S[{base}]"]
    if guarded:
        lines.append("    n_local = 0")
    lines.append("    while True:")

    def guard(out: List[str], indent: str) -> None:
        if not guarded:
            return
        out.append(f"{indent}n_local += 1")
        out.append(f"{indent}if n_local > {MAX_LOCAL_STEPS}:")
        out.append(
            f"{indent}    raise InterpreterError("
            "'thread executed too many local steps without reaching "
            "memory; likely a local infinite loop')"
        )

    for i, instr in enumerate(code.instructions):
        lines.append(f"        if pc == {i}:")
        b = "            "
        if isinstance(instr, MemoryInstruction):
            if isinstance(instr, (Store, SyncStore)):
                wv = _operand(instr.src, reg_slot)
            elif isinstance(instr, Unset):
                wv = "0"
            elif isinstance(instr, TestAndSet):
                wv = repr(instr.set_value)
            else:  # Load / SyncLoad: no write component
                wv = "0"
            lines.append(f"{b}S[{base}] = {i}")
            lines.append(f"{b}return ({i}, {wv})")
        elif isinstance(instr, Mov):
            lines.append(f"{b}S[{reg_slot[instr.dst]}] = {_operand(instr.src, reg_slot)}")
            lines.append(f"{b}pc = {i + 1}")
        elif isinstance(instr, (Add, Sub, Mul)):
            op = {Add: "+", Sub: "-", Mul: "*"}[type(instr)]
            a = _operand(instr.a, reg_slot)
            c = _operand(instr.b, reg_slot)
            lines.append(f"{b}S[{reg_slot[instr.dst]}] = {a} {op} {c}")
            lines.append(f"{b}pc = {i + 1}")
        elif isinstance(instr, Div):
            a = _operand(instr.a, reg_slot)
            c = _operand(instr.b, reg_slot)
            lines.append(f"{b}_den = {c}")
            lines.append(
                f"{b}S[{reg_slot[instr.dst]}] = {a} // _den if _den else 0"
            )
            lines.append(f"{b}pc = {i + 1}")
        elif isinstance(instr, Jump):
            target = code.target(instr.label)
            if target <= i:
                guard(lines, b)
                lines.append(f"{b}pc = {target}")
                lines.append(f"{b}continue")
            else:
                lines.append(f"{b}pc = {target}")
        elif isinstance(instr, BranchIf):
            target = code.target(instr.label)
            cond = (
                f"{_operand(instr.a, reg_slot)} {instr.cond.value} "
                f"{_operand(instr.b, reg_slot)}"
            )
            if target <= i:
                lines.append(f"{b}if {cond}:")
                guard(lines, b + "    ")
                lines.append(f"{b}    pc = {target}")
                lines.append(f"{b}    continue")
                lines.append(f"{b}pc = {i + 1}")
            else:
                lines.append(f"{b}pc = {target} if {cond} else {i + 1}")
        elif isinstance(instr, (Delay, Fence)):
            # No-ops on the idealized architecture (matching the
            # interpreter's skip_delays=True mode).
            lines.append(f"{b}pc = {i + 1}")
        elif isinstance(instr, Halt):
            lines.append(f"{b}S[{base}] = {n}")
            lines.append(f"{b}return None")
        else:
            raise NotImplementedError(
                f"cannot compile instruction {instr!r}"
            )
    # pc ran past the last instruction: implicit halt.
    lines.append(f"        S[{base}] = pc")
    lines.append("        return None")
    return "\n".join(lines)


class CompiledProgram:
    """Immutable compile-time artifacts of one program.

    Holds only *derived* data (no strong reference to the
    :class:`~repro.machine.program.Program` itself, so the weakref cache
    can evict it).
    """

    __slots__ = (
        "num_procs",
        "straightline",
        "locs",
        "loc_index",
        "mem_base",
        "bases",
        "ends",
        "initial",
        "advance",
        "descs",
    )

    def __init__(self, program: Program) -> None:
        straightline, locs, loc_index, _ = _program_meta(program)
        self.num_procs = program.num_procs
        self.straightline = straightline
        self.locs: Tuple[Location, ...] = locs
        self.loc_index = loc_index
        bases: List[int] = []
        ends: List[int] = []
        reg_slots: List[Dict[str, int]] = []
        offset = 0
        for code in program.threads:
            bases.append(offset)
            regs = registers_used(code.instructions)
            reg_slots.append(
                {r: offset + 1 + k for k, r in enumerate(regs)}
            )
            offset += 1 + len(regs)
            ends.append(offset)
        self.bases = tuple(bases)
        self.ends = tuple(ends)
        self.mem_base = offset
        self.initial = tuple(
            [0] * offset + [program.initial_memory[loc] for loc in locs]
        )

        sources = []
        fnames = []
        for proc, code in enumerate(program.threads):
            fname = f"_advance_{proc}"
            fnames.append(fname)
            sources.append(
                _thread_source(code, bases[proc], reg_slots[proc], fname)
            )
        namespace: Dict[str, object] = {"InterpreterError": InterpreterError}
        exec(  # noqa: S102 - source is generated from a closed ISA
            compile(
                "\n".join(sources), f"<compiled {program.name}>", "exec"
            ),
            namespace,
        )
        self.advance = tuple(namespace[f] for f in fnames)

        #: Per (thread, pc) static step descriptors:
        #: (kind, location, memory slot, has_read, has_write,
        #:  destination register slot or -1, CompiledRequest, kind id).
        #: The kind id is a small int standing in for the OpKind member in
        #: op-cache keys (enum hashing is a Python-level call).
        kind_ids = {kind: index for index, kind in enumerate(OpKind)}
        descs: List[List[Optional[tuple]]] = []
        for proc, code in enumerate(program.threads):
            row: List[Optional[tuple]] = []
            for instr in code.instructions:
                if not isinstance(instr, MemoryInstruction):
                    row.append(None)
                    continue
                kind = instr.kind
                dst = getattr(instr, "dst", None)
                row.append(
                    (
                        kind,
                        instr.location,
                        offset + loc_index[instr.location],
                        kind.has_read,
                        kind.has_write,
                        reg_slots[proc][dst] if dst is not None else -1,
                        CompiledRequest(instr),
                        kind_ids[kind],
                    )
                )
            descs.append(row)
        self.descs = tuple(tuple(row) for row in descs)


class CompiledEngine:
    """Drop-in :class:`~repro.core.engine_state.EngineState` replacement
    running a :class:`CompiledProgram`.

    Same interface, same observable behaviour (results, executions,
    stats counts), different inner loop: state is the flat int list
    ``S``, a step is a handful of list writes plus a generated
    ``advance`` call, an undo is a slice assignment, and the
    configuration key is the interned ``tuple(S)``.

    ``record_trace=False`` skips building :class:`Operation` objects and
    the trace list entirely -- for searches that never read the trace
    (the guided Definition-2 membership search), this removes the last
    allocation from the hot loop.  :meth:`execution` then refuses rather
    than returning a truncated trace.
    """

    __slots__ = (
        "program",
        "cp",
        "S",
        "straightline",
        "transitions",
        "max_depth",
        "reads",
        "trace",
        "po_counts",
        "tracer",
        "_pending",
        "_log",
        "_key",
        "_interned",
        "_op_cache",
        "_depth",
        "_record_trace",
        "_advance",
        "_descs",
        "_bases",
        "_ends",
    )

    def __init__(
        self, program: Program, cp: CompiledProgram, record_trace: bool = True
    ) -> None:
        self.program = program
        self.cp = cp
        self.straightline = cp.straightline
        # Hot tables rebound as instance attributes: one load in step()
        # instead of two.
        self._advance = cp.advance
        self._descs = cp.descs
        self._bases = cp.bases
        self._ends = cp.ends
        S = list(cp.initial)
        self.S = S
        advance = cp.advance
        #: Per thread, the ``(pc, write_value)`` of its pending memory
        #: instruction, or ``None`` once halted.
        self._pending: List[Optional[Tuple[int, Value]]] = [
            advance[proc](S) for proc in range(cp.num_procs)
        ]
        self.po_counts = [0] * cp.num_procs
        self.trace: List[Operation] = []
        self.reads: List[Tuple[Value, ...]] = [
            () for _ in range(cp.num_procs)
        ]
        self.transitions = 0
        self.max_depth = 0
        self._depth = 0
        self._log: List[tuple] = []
        self._interned: Dict[tuple, tuple] = {}
        self._op_cache: Dict[tuple, Operation] = {}
        self._key: Optional[tuple] = None
        self.tracer = None
        self._record_trace = record_trace

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Current undo-log depth == number of executed operations."""
        return self._depth

    def runnable(self) -> List[int]:
        """Processors with a pending memory request, in processor order."""
        return [
            proc
            for proc, pend in enumerate(self._pending)
            if pend is not None
        ]

    def pending(self, proc: int) -> Optional[CompiledRequest]:
        """The request ``proc`` is blocked on (``None`` = halted)."""
        pend = self._pending[proc]
        if pend is None:
            return None
        return self._descs[proc][pend[0]][6]

    def read_value(self, location: Location) -> Value:
        """Current memory value at ``location``."""
        cp = self.cp
        return self.S[cp.mem_base + cp.loc_index[location]]

    # ------------------------------------------------------------------
    # Packed keys
    # ------------------------------------------------------------------

    def config_key(self) -> tuple:
        """The packed configuration key: interned flat ``tuple(S)``."""
        key = self._key
        if key is None:
            key = tuple(self.S)
            key = self._key = self._interned.setdefault(key, key)
        return key

    def reads_key(self) -> tuple:
        """Per-processor read-history tuple (the observation component)."""
        return tuple(self.reads)

    def read_counts(self) -> Tuple[int, ...]:
        """How many reads each processor has completed."""
        return tuple(len(r) for r in self.reads)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def step(self, proc: int) -> Optional[Operation]:
        """Execute ``proc``'s pending operation in place; push an undo frame.

        Returns the executed :class:`Operation`, or ``None`` when the
        engine was built with ``record_trace=False``.
        """
        S = self.S
        pend = self._pending[proc]
        mem_pc, write_value = pend
        kind, location, mloc, has_read, has_write, dst, _request, kind_id = (
            self._descs[proc][mem_pc]
        )
        lo = self._bases[proc]
        hi = self._ends[proc]
        reads = self.reads
        old_reads = reads[proc]
        # The undo frame: the thread segment (pc + registers), the one
        # overwritten memory value, the read history, the key cache.
        self._log.append(
            (proc, pend, S[lo:hi], S[mloc], old_reads, self._key)
        )
        value_read: Optional[Value] = None
        if has_read:
            value_read = S[mloc]
            reads[proc] = old_reads + (value_read,)
            if dst >= 0:
                S[dst] = value_read
        if has_write:
            S[mloc] = write_value
        S[lo] = mem_pc + 1
        self._pending[proc] = self._advance[proc](S)
        self._key = None
        po_index = self.po_counts[proc]
        self.po_counts[proc] = po_index + 1
        self.transitions += 1
        depth = self._depth + 1
        self._depth = depth
        if depth > self.max_depth:
            self.max_depth = depth
        op = None
        if self._record_trace:
            trace = self.trace
            # The cache key uses the small-int kind id (enum hashing is a
            # Python-level __hash__ call); the Operation itself carries
            # the real OpKind member.
            op_key = (
                len(trace),
                proc,
                po_index,
                kind_id,
                location,
                value_read,
                write_value if has_write else None,
            )
            op = self._op_cache.get(op_key)
            if op is None:
                op = self._op_cache[op_key] = Operation(
                    len(trace),
                    proc,
                    po_index,
                    kind,
                    location,
                    value_read,
                    write_value if has_write else None,
                )
            trace.append(op)
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "engine", "step", f"T{proc}", self.transitions,
                args={
                    "depth": depth,
                    "op": f"{kind.value} {location}",
                },
            )
        return op

    def undo(self) -> None:
        """Reverse the most recent :meth:`step` exactly."""
        proc, pend, frame_regs, old_mem, old_reads, key = self._log.pop()
        S = self.S
        # Restoring the memory slot unconditionally is safe: for a pure
        # read it rewrites the value already there.
        S[self._descs[proc][pend[0]][2]] = old_mem
        S[self._bases[proc] : self._ends[proc]] = frame_regs
        self._pending[proc] = pend
        self.po_counts[proc] -= 1
        self.reads[proc] = old_reads
        self._key = key
        self._depth -= 1
        if self._record_trace:
            self.trace.pop()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "engine", "undo", f"T{proc}", self.transitions,
                args={"depth": self._depth},
            )

    def reset(self) -> None:
        """Return to the initial configuration, dropping caches and counters.

        Equivalent to constructing a fresh engine: the flat state, the
        pending requests, the trace, the read histories, the undo log,
        and both memo dicts (``_interned``/``_op_cache``) are all
        restored/cleared, so a long-lived engine reused across
        explorations cannot retain unbounded state.
        """
        cp = self.cp
        S = self.S
        S[:] = cp.initial
        self._pending = [
            cp.advance[proc](S) for proc in range(cp.num_procs)
        ]
        self.po_counts = [0] * cp.num_procs
        self.trace.clear()
        self.reads = [() for _ in range(cp.num_procs)]
        self.transitions = 0
        self.max_depth = 0
        self._depth = 0
        self._log.clear()
        self._interned.clear()
        self._op_cache.clear()
        self._key = None

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------

    def final_memory(self) -> Tuple[Tuple[Location, Value], ...]:
        """Canonical (sorted-tuple) form of the current memory contents."""
        cp = self.cp
        return tuple(zip(cp.locs, self.S[cp.mem_base :]))

    def result(self) -> Result:
        """The observable :class:`Result` of the current (finished) path."""
        return Result(tuple(self.reads), self.final_memory())

    def execution(self) -> Execution:
        """The current (finished) path as an :class:`Execution`."""
        if not self._record_trace and self._depth:
            raise RuntimeError(
                "engine was built with record_trace=False; no trace to return"
            )
        return Execution(self.program, tuple(self.trace), self.final_memory())


# ---------------------------------------------------------------------------
# Factory and cache
# ---------------------------------------------------------------------------

#: Compiled programs, cached per live Program object (the guided
#: Definition-2 search builds one engine per judged result; sweeps build
#: thousands for one program).  Keyed by id() with a weakref guard, like
#: ``engine_state._PROGRAM_META``; a failed compilation is remembered as
#: ``None`` so the fallback does not retry per engine.
_COMPILED: Dict[int, tuple] = {}

_ENABLED = os.environ.get("REPRO_INTERPRETED_ENGINE", "") not in (
    "1",
    "true",
    "yes",
)


def compiled_enabled() -> bool:
    """Whether :func:`make_engine` currently returns compiled engines."""
    return _ENABLED


def use_compiled(enabled: bool = True) -> None:
    """Globally enable/disable the compiled engine (see also the
    ``REPRO_INTERPRETED_ENGINE=1`` environment variable)."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def interpreted_engine():
    """Force the interpreted engine within the block (differential tests)."""
    previous = _ENABLED
    use_compiled(False)
    try:
        yield
    finally:
        use_compiled(previous)


def compiled_program(program: Program) -> Optional[CompiledProgram]:
    """The cached :class:`CompiledProgram`, or ``None`` if not compilable."""
    key = id(program)
    entry = _COMPILED.get(key)
    if entry is not None:
        ref, cp = entry
        if ref() is program:
            return cp
    try:
        cp: Optional[CompiledProgram] = CompiledProgram(program)
    except Exception:
        # Unknown instruction or malformed codegen input: fall back to
        # the interpreted engine (and remember, per program).
        cp = None
    _COMPILED[key] = (
        weakref.ref(program, lambda _ref, _key=key: _COMPILED.pop(_key, None)),
        cp,
    )
    return cp


def make_engine(program: Program, record_trace: bool = True):
    """An execution engine for ``program``: compiled when possible.

    This is the factory every explorer (`sc.explore`, the Definition-2
    membership search, the DRF0 checker, DPOR) goes through.  The
    returned object is either a :class:`CompiledEngine` or an interpreted
    :class:`~repro.core.engine_state.EngineState`; both expose the same
    interface and identical observable behaviour.  ``record_trace`` only
    affects the compiled engine (the interpreter always records).
    """
    if _ENABLED:
        cp = compiled_program(program)
        if cp is not None:
            return CompiledEngine(program, cp, record_trace)
    return EngineState(program)
