"""Fundamental value types shared by every layer of the library.

The paper models a shared-memory MIMD multiprocessor in which processors
issue *memory operations* (data reads, data writes, and synchronization
operations) against named shared locations.  This module pins down the
vocabulary used everywhere else:

* a :class:`Location` is a named shared-memory cell,
* a value is a plain ``int``,
* a processor is identified by a small ``int`` index,
* :class:`OpKind` classifies operations exactly the way Section 5.1 of the
  paper does -- data reads/writes plus read-only, write-only and read-write
  synchronization operations.
"""

from __future__ import annotations

import enum

# A shared-memory location.  Locations are plain strings ("x", "y", "lock")
# so programs and traces stay human-readable.
Location = str

# A processor (equivalently: thread) index, 0-based.
ProcId = int

# Values stored in memory and registers.
Value = int

#: Value every location holds before the program starts (the paper's
#: hypothetical "initializing write to every memory location").
INITIAL_VALUE: Value = 0


class OpKind(enum.Enum):
    """Classification of memory operations.

    Section 5.1 of the paper distinguishes data (ordinary) operations from
    synchronization operations, and further splits synchronization into
    read-only (e.g. ``Test``), write-only (e.g. ``Unset``) and read-write
    (e.g. ``TestAndSet``) operations.  Section 6 exploits exactly this split
    to define the DRF1-style refinement of DRF0.
    """

    DATA_READ = "data_read"
    DATA_WRITE = "data_write"
    SYNC_READ = "sync_read"          # read-only synchronization (Test)
    SYNC_WRITE = "sync_write"        # write-only synchronization (Unset)
    SYNC_RMW = "sync_rmw"            # read-write synchronization (TestAndSet)

    # ``is_sync`` / ``has_read`` / ``has_write`` are plain per-member
    # attributes (assigned below): the exploration engine reads them on
    # every transition, and property dispatch showed up in its profiles.
    is_sync: bool
    has_read: bool
    has_write: bool


for _kind in OpKind:
    #: True for operations recognizable by hardware as synchronization.
    _kind.is_sync = _kind in (OpKind.SYNC_READ, OpKind.SYNC_WRITE, OpKind.SYNC_RMW)
    #: True if the operation has a read component (paper's convention).
    _kind.has_read = _kind in (OpKind.DATA_READ, OpKind.SYNC_READ, OpKind.SYNC_RMW)
    #: True if the operation has a write component (paper's convention).
    _kind.has_write = _kind in (OpKind.DATA_WRITE, OpKind.SYNC_WRITE, OpKind.SYNC_RMW)
del _kind


class Condition(enum.Enum):
    """Comparison conditions used by conditional branches in the ISA."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def evaluate(self, lhs: Value, rhs: Value) -> bool:
        """Apply the comparison to two integer values."""
        if self is Condition.EQ:
            return lhs == rhs
        if self is Condition.NE:
            return lhs != rhs
        if self is Condition.LT:
            return lhs < rhs
        if self is Condition.LE:
            return lhs <= rhs
        if self is Condition.GT:
            return lhs > rhs
        return lhs >= rhs
