"""Order relations: program order, synchronization order, happens-before.

The paper defines, for an execution on the idealized architecture:

* ``po`` (program order): ``op1 po op2`` iff ``op1`` occurs before ``op2``
  in program order for some process;
* ``so`` (synchronization order): ``op1 so op2`` iff both are
  synchronization operations accessing the same location and ``op1``
  completes before ``op2``;
* ``hb`` (happens-before): the irreflexive transitive closure of
  ``po ∪ so``.

This module provides a small generic :class:`Relation` toolkit plus
constructors for those three relations.  Synchronization-order edge
selection is parameterized by a :class:`~repro.core.models.SynchronizationModel`
so the DRF1-style refinement of Section 6 (read-only synchronization does
not "release" the issuing processor's previous accesses) reuses the same
machinery.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.execution import Execution
from repro.core.ops import Operation


class Relation:
    """A binary relation over hashable nodes with closure/query helpers."""

    def __init__(self, nodes: Iterable = ()) -> None:
        self._succ: Dict[object, Set[object]] = defaultdict(set)
        self._nodes: Set[object] = set(nodes)

    # -- construction --------------------------------------------------------

    def add_node(self, node) -> None:
        """Ensure ``node`` is part of the relation's carrier set."""
        self._nodes.add(node)

    def add(self, a, b) -> None:
        """Add the edge ``a -> b``."""
        self._nodes.add(a)
        self._nodes.add(b)
        self._succ[a].add(b)

    def update(self, other: "Relation") -> None:
        """In-place union with another relation."""
        self._nodes |= other._nodes
        for a, succs in other._succ.items():
            self._succ[a] |= succs

    def union(self, other: "Relation") -> "Relation":
        """New relation containing the edges of both."""
        result = Relation(self._nodes)
        result.update(self)
        result.update(other)
        return result

    # -- queries -------------------------------------------------------------

    @property
    def nodes(self) -> Set[object]:
        """The carrier set."""
        return set(self._nodes)

    def edges(self) -> List[Tuple[object, object]]:
        """All edges as (source, target) pairs."""
        return [(a, b) for a, succs in self._succ.items() for b in succs]

    def successors(self, node) -> Set[object]:
        """Direct successors of ``node``."""
        return set(self._succ.get(node, ()))

    def has_edge(self, a, b) -> bool:
        """True if the direct edge ``a -> b`` exists."""
        return b in self._succ.get(a, ())

    def ordered(self, a, b) -> bool:
        """True if ``b`` is reachable from ``a`` (one or more edges)."""
        if a == b:
            return False
        seen = {a}
        stack = [a]
        while stack:
            node = stack.pop()
            for succ in self._succ.get(node, ()):
                if succ == b:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return False

    def ordered_either_way(self, a, b) -> bool:
        """True if ``a`` and ``b`` are comparable in either direction."""
        return self.ordered(a, b) or self.ordered(b, a)

    def transitive_closure(self) -> "Relation":
        """The irreflexive transitive closure as a new relation."""
        closure = Relation(self._nodes)
        for node in self._nodes:
            seen: Set[object] = set()
            stack = list(self._succ.get(node, ()))
            while stack:
                succ = stack.pop()
                if succ in seen:
                    continue
                seen.add(succ)
                stack.extend(self._succ.get(succ, ()))
            for succ in seen:
                if succ != node:
                    closure.add(node, succ)
        return closure

    def is_acyclic(self) -> bool:
        """True when the relation has no directed cycle."""
        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[object, int] = defaultdict(int)

        for root in self._nodes:
            if color[root] != WHITE:
                continue
            stack: List[Tuple[object, Optional[Iterable]]] = [(root, None)]
            while stack:
                node, iterator = stack[-1]
                if iterator is None:
                    color[node] = GREY
                    iterator = iter(self._succ.get(node, ()))
                    stack[-1] = (node, iterator)
                advanced = False
                for succ in iterator:
                    if color[succ] == GREY:
                        return False
                    if color[succ] == WHITE:
                        stack.append((succ, None))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return True

    def topological_order(self) -> List[object]:
        """A total order consistent with the relation; raises on cycles."""
        if not self.is_acyclic():
            raise ValueError("relation is cyclic")
        indegree: Dict[object, int] = {node: 0 for node in self._nodes}
        for _, b in self.edges():
            indegree[b] += 1
        ready = sorted(
            (node for node, deg in indegree.items() if deg == 0),
            key=repr,
        )
        order: List[object] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in sorted(self._succ.get(node, ()), key=repr):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        return order

    def __len__(self) -> int:
        return sum(len(s) for s in self._succ.values())


# ---------------------------------------------------------------------------
# The paper's relations
# ---------------------------------------------------------------------------


def program_order(execution: Execution) -> Relation:
    """The paper's ``po``: per-processor order of memory operations."""
    relation = Relation(execution.ops)
    for proc in range(execution.program.num_procs):
        ops = execution.ops_of(proc)
        for earlier, later in zip(ops, ops[1:]):
            relation.add(earlier, later)
    return relation


def synchronization_order(execution: Execution, model=None) -> Relation:
    """The paper's ``so``: same-location synchronization pairs by completion.

    With ``model`` given, only edges the model treats as ordering (for DRF0:
    all of them; for DRF1: release -> acquire pairs) are included.
    """
    relation = Relation(execution.ops)
    by_location: Dict[str, List[Operation]] = defaultdict(list)
    for op in execution.ops:  # completion order
        if op.is_sync:
            by_location[op.location].append(op)
    for ops in by_location.values():
        for i, earlier in enumerate(ops):
            for later in ops[i + 1 :]:
                if model is None or model.orders(earlier, later):
                    relation.add(earlier, later)
    return relation


def happens_before(execution: Execution, model=None) -> Relation:
    """``hb = (po ∪ so)+`` -- the irreflexive transitive closure.

    ``model`` selects which synchronization edges exist (see
    :func:`synchronization_order`); the paper's DRF0 corresponds to
    ``model=None`` (or the DRF0 model object).
    """
    po = program_order(execution)
    so = synchronization_order(execution, model)
    return po.union(so).transitive_closure()


def completion_order_index(execution: Execution) -> Dict[Operation, int]:
    """Map each operation to its completion index (its uid by convention)."""
    return {op: index for index, op in enumerate(execution.ops)}
