"""The shared in-place transition engine behind every interleaving search.

Three searches bottom out in the same inner loop -- the naive enumerator
(:func:`repro.core.sc.explore`), the guided SC-membership search
(:func:`repro.core.contract.is_sc_result`), and the DPOR explorer
(:func:`repro.core.dpor.explore_dpor`).  Historically each DFS node paid a
deep copy of every thread state, a ``dict(memory)`` copy, and a
``tuple(sorted(memory.items()))`` key -- O(procs + |memory| log |memory|)
per node.  :class:`EngineState` replaces all of that with *in-place
execution plus an undo log*, the standard stateless-search technique from
the DPOR literature (Flanagan & Godefroid, POPL 2005):

* :meth:`step` executes one memory operation directly against the live
  configuration and pushes a small undo frame (the stepping thread's
  pre-state, the single overwritten memory value, the pre-step key caches);
* :meth:`undo` pops the frame and restores the configuration exactly;
* configuration keys are **incremental**: per-thread keys are re-derived
  only for the thread that moved, the canonical memory key is a tuple of
  values in fixed sorted-location order (the location set is closed under
  :meth:`repro.machine.program.Program.make`) rebuilt only after a write
  invalidates it, and all keys are hash-consed so the visited set shares
  one object per distinct key.

The engine also carries the execution trace, the per-processor read
histories, and the program-order counters, so explorers read finished
:class:`~repro.core.execution.Execution`/:class:`~repro.core.execution.Result`
values straight off it at leaves.

:class:`ExplorerStats` is the profiling layer every explorer fills in:
states, transitions, undo depth, sleep-set cuts, peak visited-set size.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.execution import Execution, Result
from repro.core.ops import Operation
from repro.core.types import Location, Value
from repro.machine.isa import BranchIf, Jump
from repro.machine.interpreter import (
    MemRequest,
    ThreadState,
    complete,
    run_to_memory_op,
)
from repro.machine.program import Program


@dataclass
class ExplorerStats:
    """Counters every exploration fills in (the E10 profiling layer).

    Attributes:
        states: Configurations expanded (with dedup: *distinct* ones).
        transitions: Memory operations executed (:meth:`EngineState.step`
            calls), i.e. undo-log pushes.
        executions: Complete executions reached.
        max_depth: Peak undo-log depth (longest execution prefix held).
        sleep_cuts: Branches pruned by the DPOR sleep set.
        peak_visited: Final size of the dedup set (it only grows, so this
            is also its peak).
    """

    states: int = 0
    transitions: int = 0
    executions: int = 0
    max_depth: int = 0
    sleep_cuts: int = 0
    peak_visited: int = 0

    def merge(self, other: "ExplorerStats") -> None:
        """Accumulate another exploration's counters into this one."""
        self.states += other.states
        self.transitions += other.transitions
        self.executions += other.executions
        self.max_depth = max(self.max_depth, other.max_depth)
        self.sleep_cuts += other.sleep_cuts
        self.peak_visited = max(self.peak_visited, other.peak_visited)

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form for JSON reports."""
        return {
            "states": self.states,
            "transitions": self.transitions,
            "executions": self.executions,
            "max_depth": self.max_depth,
            "sleep_cuts": self.sleep_cuts,
            "peak_visited": self.peak_visited,
        }


class _Thread:
    """Exploration-time view of one thread: state plus pending request."""

    __slots__ = ("state", "pending")

    def __init__(self, state: ThreadState, pending: Optional[MemRequest]) -> None:
        self.state = state
        self.pending = pending

    def copy(self) -> "_Thread":
        return _Thread(self.state.copy(), self.pending)


def _advance(program: Program, proc: int, thread: _Thread) -> None:
    """Run thread ``proc`` to its next memory operation (skipping delays)."""
    pending, _ = run_to_memory_op(
        program.threads[proc], thread.state, skip_delays=True
    )
    assert pending is None or isinstance(pending, MemRequest)
    thread.pending = pending


def _initial_threads(program: Program) -> List[_Thread]:
    threads = []
    for proc in range(program.num_procs):
        thread = _Thread(ThreadState(), None)
        _advance(program, proc, thread)
        threads.append(thread)
    return threads


def execute_atomically(
    memory: Dict[Location, Value], request: MemRequest
) -> Tuple[Optional[Value], Optional[Value]]:
    """Perform one memory operation atomically against ``memory``.

    Returns ``(value_read, value_written)`` with ``None`` for the missing
    component.  This tiny function is the entire memory semantics of the
    idealized architecture.  (:class:`EngineState` inlines the same
    semantics against its fixed-order value array; this dict form remains
    for callers that carry plain memory mappings.)
    """
    value_read: Optional[Value] = None
    value_written: Optional[Value] = None
    if request.kind.has_read:
        value_read = memory[request.location]
    if request.kind.has_write:
        assert request.write_value is not None
        memory[request.location] = request.write_value
        value_written = request.write_value
    return value_read, value_written


def _is_straightline(program: Program) -> bool:
    """True when no thread has a backward branch (hence no loops)."""
    for code in program.threads:
        for index, instr in enumerate(code.instructions):
            if isinstance(instr, (Jump, BranchIf)) and (
                code.target(instr.label) <= index
            ):
                return False
    return True


#: Program-derived immutables, cached per live Program object so callers
#: that build many engines for one program (the guided SC-membership
#: search constructs one per judged result) do not rescan the code each
#: time.  Keyed by id() with a weakref guard -- Program is weakref-able
#: but not hashable -- and evicted when the program is collected.
_PROGRAM_META: Dict[int, tuple] = {}


def _program_meta(program: Program) -> tuple:
    """``(straightline, locs, loc_index, reg_orders)`` for ``program``."""
    key = id(program)
    entry = _PROGRAM_META.get(key)
    if entry is not None:
        ref, meta = entry
        if ref() is program:
            return meta
    locs = tuple(sorted(program.initial_memory))
    meta = (
        _is_straightline(program),
        locs,
        {loc: i for i, loc in enumerate(locs)},
        tuple(
            tuple(
                sorted(
                    {
                        instr.dst
                        for instr in code.instructions
                        if hasattr(instr, "dst")
                    }
                )
            )
            for code in program.threads
        ),
    )
    _PROGRAM_META[key] = (
        weakref.ref(program, lambda _ref, _key=key: _PROGRAM_META.pop(_key, None)),
        meta,
    )
    return meta


class EngineState:
    """One live configuration of the idealized architecture, with undo.

    The engine owns the mutable configuration -- thread states, pending
    requests, memory, program-order counters, the trace so far, and the
    per-processor read histories -- and exposes :meth:`step`/:meth:`undo`
    so a DFS explores the whole tree on a *single* configuration instead
    of copying it at every node.
    """

    __slots__ = (
        "program",
        "threads",
        "po_counts",
        "trace",
        "reads",
        "transitions",
        "max_depth",
        "straightline",
        "_locs",
        "_loc_index",
        "_mem_values",
        "_mem_key",
        "_reg_orders",
        "_thread_keys",
        "_log",
        "_interned",
        "_op_cache",
        "tracer",
    )

    def __init__(self, program: Program) -> None:
        self.program = program
        self.threads = _initial_threads(program)
        self.po_counts = [0] * program.num_procs
        self.trace: List[Operation] = []
        #: Per processor, the tuple of values its reads returned so far (in
        #: program order).  Tuples, so key construction is allocation-only.
        self.reads: List[Tuple[Value, ...]] = [() for _ in self.threads]
        self.transitions = 0
        self.max_depth = 0
        #: ``straightline`` is True when no thread has a backward branch.
        #: Then every step strictly advances the stepping thread's pc, a DFS
        #: path can never revisit a configuration, and explorers skip
        #: livelock-cycle bookkeeping (and, without dedup, key maintenance
        #: entirely).  ``_reg_orders`` gives, per processor, the registers
        #: its code can write in fixed sorted order: the thread key is
        #: (pc, values in this order), no per-step ``sorted(regs.items())``.
        #: Registers never written read as 0, the same default
        #: :meth:`ThreadState.read_reg` applies.
        self.straightline, self._locs, self._loc_index, self._reg_orders = (
            _program_meta(program)
        )
        self._mem_values: List[Value] = [
            program.initial_memory[loc] for loc in self._locs
        ]
        self._interned: Dict[object, object] = {}
        self._mem_key: Optional[Tuple[Value, ...]] = self._intern(
            tuple(self._mem_values)
        )
        self._thread_keys: List[object] = [
            self._intern(self._thread_key(proc))
            for proc in range(program.num_procs)
        ]
        #: Undo frames: (proc, request, pc, regs, thread_key, mem_key,
        #: old_value_or_None_marker, old_reads_tuple).
        self._log: List[tuple] = []
        #: Hash-consed dynamic operations: the same (uid, proc, po_index,
        #: kind, location, values) access recurs across sibling branches,
        #: and a dict probe beats a frozen-dataclass construction ~5x.
        #: Operations are immutable, so sharing is safe.
        self._op_cache: Dict[tuple, Operation] = {}
        #: Optional observability tracer.  ``None`` (the default) keeps the
        #: hot loop free of even an attribute call on a null object; the
        #: explorers set it from their configuration when tracing is on.
        self.tracer = None

    def _thread_key(self, proc: int) -> tuple:
        """Hashable state key for one thread: pc plus register file."""
        state = self.threads[proc].state
        regs = state.regs
        return (state.pc,) + tuple(
            regs.get(r, 0) for r in self._reg_orders[proc]
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Current undo-log depth == number of executed operations."""
        return len(self.trace)

    def runnable(self) -> List[int]:
        """Processors with a pending memory request, in processor order.

        Built fresh per call (a scan over ``num_procs`` pending slots);
        callers iterate it while stepping the engine.  A scan beats the
        incrementally-maintained sorted list it replaced: maintaining one
        costs an O(n) ``list.remove`` on every halting step and a sorted
        re-insert on every undo of one, and those fire once per thread per
        explored interleaving.
        """
        return [
            proc
            for proc, thread in enumerate(self.threads)
            if thread.pending is not None
        ]

    def pending(self, proc: int) -> Optional[MemRequest]:
        """The request processor ``proc`` is blocked on (``None`` = halted)."""
        return self.threads[proc].pending

    def read_value(self, location: Location) -> Value:
        """Current memory value at ``location`` (what a read would return)."""
        return self._mem_values[self._loc_index[location]]

    # ------------------------------------------------------------------
    # Incremental keys
    # ------------------------------------------------------------------

    def _intern(self, key):
        """Hash-cons ``key`` so equal keys share one object in visited sets."""
        return self._interned.setdefault(key, key)

    def memory_key(self) -> Tuple[Value, ...]:
        """Canonical memory key: values in fixed sorted-location order.

        The location set is closed (every accessed location is in
        ``initial_memory``), so this tuple determines ``sorted(items())``
        bijectively -- no per-node sort needed.  Cached until a write
        invalidates it.
        """
        key = self._mem_key
        if key is None:
            key = self._mem_key = self._intern(tuple(self._mem_values))
        return key

    def threads_key(self) -> tuple:
        """Tuple of per-thread keys.

        Maintained lazily: :meth:`step` only marks the moved thread's key
        dirty, so explorers that never read keys (straight-line programs
        without dedup) pay nothing, and key readers re-derive at most the
        one thread that moved since the last read.
        """
        keys = self._thread_keys
        for proc, key in enumerate(keys):
            if key is None:
                keys[proc] = self._intern(self._thread_key(proc))
        return self._intern(tuple(keys))

    def config_key(self) -> tuple:
        """(thread states, memory) key -- the livelock-cycle/dedup core."""
        return (self.threads_key(), self.memory_key())

    def reads_key(self) -> tuple:
        """Per-processor read-history tuple (the observation component)."""
        return tuple(self.reads)

    def read_counts(self) -> Tuple[int, ...]:
        """How many reads each processor has completed."""
        return tuple(len(r) for r in self.reads)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def step(self, proc: int) -> Operation:
        """Execute ``proc``'s pending operation in place; push an undo frame.

        Returns the executed :class:`Operation` (uid = completion index).
        """
        thread = self.threads[proc]
        request = thread.pending
        assert request is not None
        state = thread.state
        kind = request.kind
        mem_values = self._mem_values
        index = self._loc_index[request.location]
        has_write = kind.has_write
        old_value = mem_values[index] if has_write else None
        reads = self.reads
        self._log.append(
            (
                proc,
                request,
                state.snapshot(),
                self._thread_keys[proc],
                self._mem_key,
                old_value,
                reads[proc],
            )
        )
        value_read: Optional[Value] = None
        value_written: Optional[Value] = None
        if kind.has_read:
            value_read = mem_values[index]
            reads[proc] = reads[proc] + (value_read,)
        if has_write:
            assert request.write_value is not None
            value_written = request.write_value
            mem_values[index] = value_written
            self._mem_key = None
        trace = self.trace
        op_key = (
            len(trace),
            proc,
            self.po_counts[proc],
            kind,
            request.location,
            value_read,
            value_written,
        )
        op = self._op_cache.get(op_key)
        if op is None:
            op = self._op_cache[op_key] = Operation(*op_key)
        trace.append(op)
        self.po_counts[proc] += 1
        complete(self.program.threads[proc], state, request, value_read)
        _advance(self.program, proc, thread)
        self._thread_keys[proc] = None  # dirty; re-derived on next key read
        self.transitions += 1
        if len(trace) > self.max_depth:
            self.max_depth = len(trace)
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "engine", "step", f"T{proc}", self.transitions,
                args={
                    "depth": len(trace),
                    "op": f"{kind.value} {request.location}",
                },
            )
        return op

    def undo(self) -> None:
        """Reverse the most recent :meth:`step` exactly."""
        proc, request, snapshot, thread_key, mem_key, old_value, old_reads = (
            self._log.pop()
        )
        thread = self.threads[proc]
        thread.state.restore(snapshot)
        thread.pending = request
        self.po_counts[proc] -= 1
        self.trace.pop()
        self.reads[proc] = old_reads
        if request.kind.has_write:
            self._mem_values[self._loc_index[request.location]] = old_value
        self._mem_key = mem_key
        self._thread_keys[proc] = thread_key
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "engine", "undo", f"T{proc}", self.transitions,
                args={"depth": len(self.trace)},
            )

    def reset(self) -> None:
        """Return to the initial configuration, dropping caches and counters.

        Equivalent to constructing a fresh engine: the thread states, the
        memory, the trace, the read histories, the undo log, and both memo
        dicts (``_interned``/``_op_cache``) are all restored/cleared, so a
        long-lived engine reused across explorations cannot retain
        unbounded state.
        """
        program = self.program
        self.threads = _initial_threads(program)
        self.po_counts = [0] * program.num_procs
        self.trace.clear()
        self.reads = [() for _ in self.threads]
        self.transitions = 0
        self.max_depth = 0
        self._mem_values = [
            program.initial_memory[loc] for loc in self._locs
        ]
        self._log.clear()
        self._interned.clear()
        self._op_cache.clear()
        self._mem_key = self._intern(tuple(self._mem_values))
        self._thread_keys = [
            self._intern(self._thread_key(proc))
            for proc in range(program.num_procs)
        ]

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------

    def final_memory(self) -> Tuple[Tuple[Location, Value], ...]:
        """Canonical (sorted-tuple) form of the current memory contents."""
        return tuple(zip(self._locs, self._mem_values))

    def result(self) -> Result:
        """The observable :class:`Result` of the current (finished) path."""
        return Result(tuple(self.reads), self.final_memory())

    def execution(self) -> Execution:
        """The current (finished) path as an :class:`Execution`."""
        return Execution(self.program, tuple(self.trace), self.final_memory())
