"""DRF0: data-race detection and the Definition-3 program verdict.

A program obeys DRF0 (paper, Definition 3) iff for *any* execution on the
idealized architecture, all conflicting accesses are ordered by the
happens-before relation corresponding to that execution.  This module
provides:

* :func:`races_in_execution` -- ground-truth race detection on one execution
  via the explicit transitive closure of ``po ∪ so``;
* :func:`races_in_execution_vc` -- an equivalent vector-clock detector
  (in the style the paper cites from Netzer & Miller) that scales to long
  traces; the two are property-tested against each other;
* :func:`check_program` -- the exhaustive Definition-3 verdict, enumerating
  every idealized interleaving (with livelock-cycle pruning so spin loops
  terminate) and race-checking each;
* :func:`check_program_sampled` -- a dynamic-detection fallback for programs
  too large to enumerate: monitors random SC executions.

Both detectors are parameterized by a synchronization model, so the same
code answers "does this program obey DRF0?" and "does it obey the DRF1
refinement?".

A note on the paper's augmented executions: Definition 3 augments each
execution with hypothetical initializing writes (ordered before everything
via synchronization) and final reads (ordered after everything).  Those
hypothetical operations are hb-ordered with respect to every real access by
construction, so they can never participate in a race; the detectors
therefore operate on the un-augmented trace without loss.  (The
augmentation matters for *result equivalence*, which
:mod:`repro.core.contract` handles by comparing final memory.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.compile import make_engine
from repro.core.engine_state import ExplorerStats
from repro.core.execution import Execution
from repro.core.models import DRF0_MODEL, SynchronizationModel
from repro.core.ops import Operation, conflicts
from repro.core.relations import happens_before
from repro.core.sc import (
    ExplorationCapError,
    ExplorationConfig,
    random_sc_execution,
)
from repro.machine.program import Program


@dataclass(frozen=True)
class Race:
    """An unordered pair of conflicting accesses.

    ``first`` is the operation that completed earlier in the witnessing
    execution.
    """

    first: Operation
    second: Operation

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"race between {self.first} and {self.second}"


# ---------------------------------------------------------------------------
# Per-execution detection: explicit transitive closure (ground truth)
# ---------------------------------------------------------------------------


def races_in_execution(
    execution: Execution, model: SynchronizationModel = DRF0_MODEL
) -> List[Race]:
    """All races in one idealized execution, via explicit happens-before.

    Quadratic in trace length; intended for litmus-sized traces and as the
    oracle the vector-clock detector is tested against.
    """
    hb = happens_before(execution, model)
    races: List[Race] = []
    ops = execution.ops
    for i, a in enumerate(ops):
        for b in ops[i + 1 :]:
            if not model.race_relevant(a, b):
                continue
            if not hb.ordered_either_way(a, b):
                races.append(Race(a, b))
    return races


# ---------------------------------------------------------------------------
# Per-execution detection: vector clocks (fast path)
# ---------------------------------------------------------------------------


class _VectorClock:
    """Fixed-width integer vector clock."""

    __slots__ = ("times",)

    def __init__(self, width: int) -> None:
        self.times = [0] * width

    def copy(self) -> "_VectorClock":
        vc = _VectorClock(len(self.times))
        vc.times = list(self.times)
        return vc

    def join(self, other: "_VectorClock") -> None:
        self.times = [max(a, b) for a, b in zip(self.times, other.times)]


@dataclass
class _LocationHistory:
    """Per-location last-access bookkeeping for the vector-clock detector.

    For each processor we keep the timestamp and identity of its latest read
    and latest write of the location, split by data/sync class so model
    exemptions (DRF1's sync-sync exemption) can be applied.  Per-processor
    maxima suffice: processor-local times are monotone, so if the latest
    access is happens-before-ordered every earlier one is too.
    """

    width: int
    last_write_time: List[int] = field(default_factory=list)
    last_write_op: List[Optional[Operation]] = field(default_factory=list)
    last_read_time: List[int] = field(default_factory=list)
    last_read_op: List[Optional[Operation]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.last_write_time = [0] * self.width
        self.last_write_op = [None] * self.width
        self.last_read_time = [0] * self.width
        self.last_read_op = [None] * self.width


def races_in_execution_vc(
    execution: Execution, model: SynchronizationModel = DRF0_MODEL
) -> List[Race]:
    """Vector-clock race detection.

    Processes the trace in completion order, maintaining one clock per
    processor and one per synchronization location.  An acquire joins the
    location clock into the processor clock; a release joins the processor
    clock into the location clock -- with acquire/release membership decided
    by the synchronization model (under DRF0 every sync op is both).

    Completeness contract relative to :func:`races_in_execution`: every
    reported pair is a genuine race (soundness), and a race is reported for
    every (location, processor pair) that has one -- but because only
    per-processor *latest* accesses are remembered, an earlier access of the
    same processor racing the same opposite access is subsumed by the later
    one rather than reported separately.  In particular the two detectors
    always agree on whether an execution is race-free.
    """
    width = execution.program.num_procs
    proc_clock = [_VectorClock(width) for _ in range(width)]
    for proc, clock in enumerate(proc_clock):
        clock.times[proc] = 1
    loc_clock: Dict[str, _VectorClock] = {}
    history: Dict[str, _LocationHistory] = {}
    races: List[Race] = []

    for op in execution.ops:
        clock = proc_clock[op.proc]
        if op.is_sync:
            lc = loc_clock.setdefault(op.location, _VectorClock(width))
            if model.is_acquire(op):
                clock.join(lc)
        hist = history.setdefault(op.location, _LocationHistory(width))
        _check_op(op, clock, hist, model, races)
        _record_op(op, clock, hist)
        if op.is_sync and model.is_release(op):
            loc_clock[op.location].join(clock)
        clock.times[op.proc] += 1
    return races


def _check_op(
    op: Operation,
    clock: _VectorClock,
    hist: _LocationHistory,
    model: SynchronizationModel,
    races: List[Race],
) -> None:
    """Race-check ``op`` against the location history."""
    for other_proc in range(len(clock.times)):
        if other_proc == op.proc:
            continue
        write_op = hist.last_write_op[other_proc]
        if (
            write_op is not None
            and hist.last_write_time[other_proc] > clock.times[other_proc]
            and model.race_relevant(write_op, op)
        ):
            races.append(Race(write_op, op))
        if op.has_write:
            read_op = hist.last_read_op[other_proc]
            if (
                read_op is not None
                and hist.last_read_time[other_proc] > clock.times[other_proc]
                and model.race_relevant(read_op, op)
            ):
                races.append(Race(read_op, op))


def _record_op(op: Operation, clock: _VectorClock, hist: _LocationHistory) -> None:
    """Record ``op`` as the issuing processor's latest access."""
    now = clock.times[op.proc]
    if op.has_read:
        hist.last_read_time[op.proc] = now
        hist.last_read_op[op.proc] = op
    if op.has_write:
        hist.last_write_time[op.proc] = now
        hist.last_write_op[op.proc] = op


class _PathRaceDetector:
    """The vector-clock detector of :func:`races_in_execution_vc`,
    maintained *incrementally* along a DFS path.

    :meth:`push` applies one operation exactly the way the batch
    detector's loop body does (same ``_check_op``/``_record_op`` helpers,
    same acquire/release joins) after saving the touched state in an undo
    frame; :meth:`pop` restores it.  At any point the detector state --
    and in particular :attr:`races` -- is identical to running the batch
    detector over the current path prefix, so the exhaustive checker
    race-checks every interleaving in O(1) amortized per *transition*
    instead of O(depth) per *execution* (shared prefixes are checked
    once).
    """

    __slots__ = ("model", "width", "proc_clock", "loc_clock", "history",
                 "races", "_frames")

    def __init__(self, width: int, model: SynchronizationModel) -> None:
        self.model = model
        self.width = width
        self.proc_clock = [_VectorClock(width) for _ in range(width)]
        for proc, clock in enumerate(self.proc_clock):
            clock.times[proc] = 1
        self.loc_clock: Dict[str, _VectorClock] = {}
        self.history: Dict[str, _LocationHistory] = {}
        self.races: List[Race] = []
        self._frames: List[tuple] = []

    def push(self, op: Operation) -> None:
        """Apply ``op``; push an undo frame."""
        model = self.model
        proc = op.proc
        clock = self.proc_clock[proc]
        old_times = clock.times[:]
        loc = op.location
        # op.is_sync is a Python-level property; the OpKind member carries
        # the same flag as a plain attribute.
        is_sync = op.kind.is_sync
        loc_frame = None  # None = no sync clock touched
        if is_sync:
            lc = self.loc_clock.get(loc)
            if lc is None:
                lc = self.loc_clock[loc] = _VectorClock(self.width)
                loc_frame = (loc, None)  # created now: delete on pop
            else:
                loc_frame = (loc, lc.times[:])
            if model.is_acquire(op):
                clock.join(lc)
        hist = self.history.get(loc)
        if hist is None:
            hist = self.history[loc] = _LocationHistory(self.width)
        hist_frame = (
            hist.last_read_time[proc],
            hist.last_read_op[proc],
            hist.last_write_time[proc],
            hist.last_write_op[proc],
        )
        races_len = len(self.races)
        _check_op(op, clock, hist, model, self.races)
        _record_op(op, clock, hist)
        if is_sync and model.is_release(op):
            self.loc_clock[loc].join(clock)
        clock.times[proc] += 1
        self._frames.append((op, old_times, loc_frame, hist_frame, races_len))

    def pop(self) -> None:
        """Undo the most recent :meth:`push` exactly."""
        op, old_times, loc_frame, hist_frame, races_len = self._frames.pop()
        proc = op.proc
        self.proc_clock[proc].times = old_times
        if loc_frame is not None:
            loc, saved = loc_frame
            if saved is None:
                del self.loc_clock[loc]
            else:
                self.loc_clock[loc].times = saved
        hist = self.history[op.location]
        (
            hist.last_read_time[proc],
            hist.last_read_op[proc],
            hist.last_write_time[proc],
            hist.last_write_op[proc],
        ) = hist_frame
        del self.races[races_len:]


class _LiteOp:
    """A value-free stand-in for :class:`Operation` in race detection.

    Race relevance, acquire/release membership, and history recording
    only read ``(proc, kind, location)`` and the kind flags -- never the
    values -- so the exhaustive checker can drive the vector-clock
    detector without materializing real operations (``record_trace=False``
    engines return ``None`` from ``step``).  One instance per distinct
    ``(proc, kind, location)`` triple serves a whole exploration.
    """

    __slots__ = ("proc", "kind", "location", "is_sync", "has_read", "has_write")

    def __init__(self, proc: int, kind, location) -> None:
        self.proc = proc
        self.kind = kind
        self.location = location
        self.is_sync = kind.is_sync
        self.has_read = kind.has_read
        self.has_write = kind.has_write


def _lite_op(engine, proc: int, cache: Dict[tuple, _LiteOp]) -> _LiteOp:
    """The lite operation ``proc`` is about to execute (pre-step)."""
    request = engine.pending(proc)
    key = (proc, request.kind, request.location)
    op = cache.get(key)
    if op is None:
        op = cache[key] = _LiteOp(proc, request.kind, request.location)
    return op


def _replay_execution(program: Program, path) -> Execution:
    """Materialize the execution of a proc-choice ``path`` on a fresh
    recording engine.

    Operation uids are completion indices, so the replayed execution is
    bit-identical to what a trace-recording engine would have held at
    that leaf -- this is how verdict-only explorations produce witnesses
    on demand.
    """
    engine = make_engine(program)
    for proc in path:
        engine.step(proc)
    return engine.execution()


# ---------------------------------------------------------------------------
# Whole-program verdicts
# ---------------------------------------------------------------------------


@dataclass
class DRF0Report:
    """Outcome of a Definition-3 program check."""

    program: Program
    model_name: str
    obeys: bool
    executions_checked: int
    race: Optional[Race] = None
    witness: Optional[Execution] = None
    complete: bool = True
    stats: Optional[ExplorerStats] = None

    def __bool__(self) -> bool:
        return self.obeys


def check_program(
    program: Program,
    model: SynchronizationModel = DRF0_MODEL,
    config: Optional[ExplorationConfig] = None,
) -> DRF0Report:
    """Exhaustive Definition-3 verdict over all idealized interleavings.

    Enumerates every interleaving (livelock cycles are explored once: a
    branch that revisits a thread-states+memory configuration already on the
    current path is pruned, since the first visit explores every scheduling
    alternative from that configuration).  Executions are race-checked as
    they are produced -- the exploration stops at the first race without
    expanding the rest of the tree, and no execution list is materialized.
    """
    cfg = config or ExplorationConfig(max_ops=400)
    if cfg.explore_jobs != 1:
        from repro.core import parallel

        jobs = parallel.resolve_jobs(cfg.explore_jobs)
        if jobs > 1 and cfg.tracer is None and parallel.can_fork():
            return parallel.parallel_check_program(program, model, cfg, jobs)
    stats = ExplorerStats()
    # This is a verdict-only exploration: the trace is never read on the
    # hot path.  The detector runs on cached value-free lite operations,
    # and the racy witness (the cold path) is materialized by replaying
    # the current proc-choice path on a recording engine -- operation
    # uids are completion indices, so the replayed witness is
    # bit-identical to the trace the engine would have recorded.
    engine = make_engine(program, record_trace=False)
    if cfg.tracer is not None and cfg.tracer.enabled:
        engine.tracer = cfg.tracer
    detector = _PathRaceDetector(program.num_procs, model)
    races = detector.races
    lite_cache: Dict[tuple, _LiteOp] = {}
    path: List[int] = []
    on_path: Set[object] = set()
    track_cycles = not engine.straightline

    # The race check rides the exploration itself: the vector-clock
    # detector is pushed/popped in lockstep with the engine's step/undo,
    # so at every leaf ``detector.races`` equals what the batch detector
    # would report for that execution -- without re-scanning the shared
    # prefix of sibling interleavings.  DFS order matches
    # :func:`_all_interleavings` exactly, so verdicts, witnesses, and
    # stats counts are unchanged.
    def dfs() -> Optional[DRF0Report]:
        runnable = engine.runnable()
        if not runnable:
            stats.executions += 1
            if races:
                witness = _replay_execution(program, path)
                return DRF0Report(
                    program=program,
                    model_name=model.name,
                    obeys=False,
                    executions_checked=stats.executions,
                    race=races_in_execution_vc(witness, model)[0],
                    witness=witness,
                    stats=stats,
                )
            return None
        if engine.depth >= cfg.max_ops:
            if cfg.allow_incomplete:
                return None
            raise ExplorationCapError(
                f"interleaving exceeded {cfg.max_ops} operations",
                states=stats.states,
            )
        key = None
        if track_cycles:
            key = engine.config_key()
            if key in on_path:
                return None  # livelock cycle: explored from its first visit
        stats.states += 1
        if track_cycles:
            on_path.add(key)
        try:
            for proc in runnable:
                op = _lite_op(engine, proc, lite_cache)
                engine.step(proc)
                detector.push(op)
                path.append(proc)
                try:
                    report = dfs()
                    if report is not None:
                        return report
                finally:
                    path.pop()
                    detector.pop()
                    engine.undo()
        finally:
            if track_cycles:
                on_path.remove(key)
        return None

    try:
        report = dfs()
    finally:
        stats.transitions = engine.transitions
        stats.max_depth = engine.max_depth
    if report is not None:
        return report
    return DRF0Report(
        program=program, model_name=model.name, obeys=True,
        executions_checked=stats.executions, stats=stats,
    )


def check_program_sampled(
    program: Program,
    model: SynchronizationModel = DRF0_MODEL,
    seeds: Sequence[int] = range(50),
) -> DRF0Report:
    """Dynamic detection over random idealized executions.

    A found race is definitive; a clean report is only evidence (the
    standard dynamic race-detection trade-off the paper's Section 4 cites).
    """
    checked = 0
    for seed in seeds:
        execution = random_sc_execution(program, seed)
        checked += 1
        races = races_in_execution_vc(execution, model)
        if races:
            return DRF0Report(
                program=program,
                model_name=model.name,
                obeys=False,
                executions_checked=checked,
                race=races[0],
                witness=execution,
                complete=False,
            )
    return DRF0Report(
        program=program,
        model_name=model.name,
        obeys=True,
        executions_checked=checked,
        complete=False,
    )


def _all_interleavings(
    program: Program,
    cfg: ExplorationConfig,
    stats: Optional[ExplorerStats] = None,
):
    """Yield every interleaving as an execution, pruning livelock cycles.

    Unlike :func:`repro.core.sc.explore` with ``dedup=False``, this
    generator prunes branches that revisit a (thread states, memory)
    configuration already on the current DFS path, so programs with spin
    loops have a finite exploration.  Runs on the in-place do/undo engine;
    consumers that stop early abandon the generator and the rest of the
    tree is never expanded.
    """
    engine = make_engine(program)
    if cfg.tracer is not None and cfg.tracer.enabled:
        engine.tracer = cfg.tracer
    stats = stats if stats is not None else ExplorerStats()
    on_path: Set[object] = set()
    # Straight-line programs cannot revisit a configuration on a DFS path:
    # skip cycle tracking (and with it all key maintenance).
    track_cycles = not engine.straightline

    def dfs():
        runnable = engine.runnable()
        if not runnable:
            stats.executions += 1
            yield engine.execution()
            return
        if engine.depth >= cfg.max_ops:
            if cfg.allow_incomplete:
                return
            raise ExplorationCapError(
                f"interleaving exceeded {cfg.max_ops} operations",
                states=stats.states,
            )
        key = None
        if track_cycles:
            key = engine.config_key()
            if key in on_path:
                return  # livelock cycle: already explored from its first visit
        stats.states += 1
        if track_cycles:
            on_path.add(key)
        try:
            for proc in runnable:
                engine.step(proc)
                try:
                    yield from dfs()
                finally:
                    engine.undo()
        finally:
            if track_cycles:
                on_path.remove(key)

    try:
        yield from dfs()
    finally:
        stats.transitions = engine.transitions
        stats.max_depth = engine.max_depth


def obeys_drf0(program: Program, **kwargs) -> bool:
    """Convenience wrapper: exhaustive DRF0 verdict as a boolean."""
    return check_program(program, DRF0_MODEL, **kwargs).obeys
