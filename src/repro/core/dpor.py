"""Dynamic partial-order reduction (DPOR) for the idealized architecture.

The naive Definition-3 checker enumerates *every* interleaving, which is
factorial in the operation count.  Two interleavings that differ only in
the order of independent (non-conflicting, different-thread) operations
have the same happens-before relation -- hence the same races -- and the
same result.  DPOR (Flanagan & Godefroid, POPL 2005) explores at least one
interleaving per such equivalence class (Mazurkiewicz trace) by adding
backtracking points only where dependent operations could be reordered.

Two operations are **dependent** here iff they are by the same processor,
or access the same location with at least one write component (which for
this ISA is exactly the conflict relation plus program order).

Scope: programs whose executions are bounded (no unbounded spin loops) --
the algorithm's completeness argument assumes a finite, acyclic state
space.  `max_ops` guards against spinning; the naive explorer with
livelock-cycle pruning (`repro.core.drf0.check_program`) remains the tool
for spin programs.

The module provides:

* :func:`explore_dpor` -- representative executions (one or more per
  trace);
* :func:`check_program_dpor` -- the DRF0/DRF1 verdict over them (sound and
  complete for bounded programs, since races are trace-invariants);
* :func:`sc_results_dpor` -- the SC result set (also a trace-invariant).

Equivalence with the naive enumerators is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.drf0 import DRF0Report, races_in_execution_vc
from repro.core.execution import Execution, Result, final_memory_from_dict
from repro.core.models import DRF0_MODEL, SynchronizationModel
from repro.core.ops import Operation
from repro.core.sc import (
    ExplorationConfig,
    ExplorationIncomplete,
    _Thread,
    _advance,
    _initial_threads,
    execute_atomically,
)
from repro.machine.interpreter import complete
from repro.machine.program import Program


@dataclass
class _StackEntry:
    """One executed transition plus the exploration bookkeeping at its
    pre-state."""

    proc: int
    op: Operation
    threads: List[_Thread]            # pre-state snapshot
    memory: Dict[str, int]            # pre-state snapshot
    enabled: Set[int]
    backtrack: Set[int]
    done: Set[int] = field(default_factory=set)


def _dependent(a: Operation, b: Operation) -> bool:
    if a.proc == b.proc:
        return True
    if a.location != b.location:
        return False
    return a.has_write or b.has_write


def _dependent_with_pending(op: Operation, proc: int, request) -> bool:
    """Dependency between an executed op and a *pending* request of ``proc``.

    Dependency is decidable from (processor, location, write-ness) alone,
    so the pending transition need not be executed to test it.
    """
    if op.proc == proc:
        return True
    if op.location != request.location:
        return False
    return op.has_write or request.kind.has_write


def explore_dpor(
    program: Program, config: Optional[ExplorationConfig] = None
) -> List[Execution]:
    """Representative executions covering every Mazurkiewicz trace."""
    cfg = config or ExplorationConfig()
    executions: List[Execution] = []
    stack: List[_StackEntry] = []

    def snapshot(threads, memory):
        return [t.copy() for t in threads], dict(memory)

    def enabled_procs(threads) -> Set[int]:
        return {i for i, t in enumerate(threads) if t.pending is not None}

    def run_one(threads, memory, proc, po_counts) -> Operation:
        thread = threads[proc]
        request = thread.pending
        value_read, value_written = execute_atomically(memory, request)
        op = Operation(
            uid=len(stack),
            proc=proc,
            po_index=po_counts[proc],
            kind=request.kind,
            location=request.location,
            value_read=value_read,
            value_written=value_written,
        )
        po_counts[proc] += 1
        complete(program.threads[proc], thread.state, request, value_read)
        _advance(program, proc, thread)
        return op

    def add_backtrack_points(threads, enabled: Set[int]) -> None:
        """Flanagan-Godefroid: for every transition enabled here, find the
        most recent dependent transition in the current sequence and make
        its pre-state explore this processor too (or, if it was not enabled
        there, everything that was)."""
        for proc in enabled:
            request = threads[proc].pending
            for entry in reversed(stack):
                if entry.proc != proc and _dependent_with_pending(
                    entry.op, proc, request
                ):
                    if proc in entry.enabled:
                        entry.backtrack.add(proc)
                    else:
                        entry.backtrack |= entry.enabled
                    break

    def explore(threads, memory, po_counts) -> None:
        enabled = enabled_procs(threads)
        if not enabled:
            ops = tuple(e.op for e in stack)
            executions.append(
                Execution(program, ops, final_memory_from_dict(memory))
            )
            return
        if len(stack) >= cfg.max_ops:
            if cfg.allow_incomplete:
                return
            raise ExplorationIncomplete(
                f"DPOR execution exceeded {cfg.max_ops} operations; use the "
                "naive explorer for programs with spin loops"
            )
        add_backtrack_points(threads, enabled)
        entry = _StackEntry(
            proc=-1,
            op=None,  # filled per branch
            threads=None,
            memory=None,
            enabled=enabled,
            backtrack={min(enabled)},
        )
        stack.append(entry)
        pre_threads, pre_memory = snapshot(threads, memory)
        pre_po = list(po_counts)
        while True:
            choice = next(
                (p for p in sorted(entry.backtrack) if p not in entry.done), None
            )
            if choice is None:
                break
            entry.done.add(choice)
            branch_threads, branch_memory = snapshot(pre_threads, pre_memory)
            branch_po = list(pre_po)
            op = run_one(branch_threads, branch_memory, choice, branch_po)
            entry.proc = choice
            entry.op = op
            entry.threads = pre_threads
            entry.memory = pre_memory
            explore(branch_threads, branch_memory, branch_po)
        stack.pop()

    threads = _initial_threads(program)
    memory = dict(program.initial_memory)
    explore(threads, memory, [0] * program.num_procs)
    return executions


def check_program_dpor(
    program: Program,
    model: SynchronizationModel = DRF0_MODEL,
    config: Optional[ExplorationConfig] = None,
) -> DRF0Report:
    """Definition-3 verdict via DPOR (bounded programs).

    Sound and complete: a race is a property of the Mazurkiewicz trace
    (conflicting + hb-unordered is invariant under commuting independent
    operations), and DPOR covers every trace.
    """
    checked = 0
    for execution in explore_dpor(program, config):
        checked += 1
        races = races_in_execution_vc(execution, model)
        if races:
            return DRF0Report(
                program=program,
                model_name=model.name,
                obeys=False,
                executions_checked=checked,
                race=races[0],
                witness=execution,
            )
    return DRF0Report(
        program=program, model_name=model.name, obeys=True,
        executions_checked=checked,
    )


def sc_results_dpor(
    program: Program, config: Optional[ExplorationConfig] = None
) -> FrozenSet[Result]:
    """The SC result set via DPOR (bounded programs).

    A result is determined by the trace: every read's value is fixed by
    the nearest dependent (same-location write) predecessors, which
    commuting independent operations cannot change.
    """
    return frozenset(e.result() for e in explore_dpor(program, config))
