"""Dynamic partial-order reduction (DPOR) for the idealized architecture.

The naive Definition-3 checker enumerates *every* interleaving, which is
factorial in the operation count.  Two interleavings that differ only in
the order of independent (non-conflicting, different-thread) operations
have the same happens-before relation -- hence the same races -- and the
same result.  DPOR (Flanagan & Godefroid, POPL 2005) explores at least one
interleaving per such equivalence class (Mazurkiewicz trace) by adding
backtracking points only where dependent operations could be reordered.

Two operations are **dependent** here iff they are by the same processor,
or access the same location with at least one write component (which for
this ISA is exactly the conflict relation plus program order).

The explorer runs on the shared in-place do/undo transition engine
(:class:`repro.core.engine_state.EngineState`): each branch is executed
directly on the live configuration and reversed through the undo log, so
the per-node pre-state snapshots of the original implementation are gone.

To layer **sleep sets** soundly the algorithm follows *source-DPOR*
(Abdulla, Aronis, Jonsson & Sagonas, POPL 2014 -- the modern form of
Flanagan-Godefroid):

* every executed event carries a vector clock of its happens-before
  predecessors, maintained incrementally (and unwound with the undo log);
* when an event ``e'`` executes, each *direct race* -- a dependent
  earlier event ``e`` of another processor with no happens-before
  intermediary -- asks the state ``e`` was executed from to also explore
  some process from the race's **initials** (the first hb-minimal
  processes of the reversed sequence), unless one is already scheduled;
* after a branch ``p`` is fully explored at a node, ``p`` goes to sleep
  there; a child inherits the sleeping processes whose pending transition
  is independent of the step taken, and a node whose enabled transitions
  are all asleep is cut entirely (counted in
  :attr:`~repro.core.engine_state.ExplorerStats.sleep_cuts`).

Inserting into the race's initials (rather than the raced process alone)
is what makes skipping sleeping backtrack choices sound; the combination
still reaches at least one representative of every Mazurkiewicz trace,
which the equivalence property tests check against the naive enumerators
over the litmus catalog and hundreds of generated programs.  Set
``ExplorationConfig.sleep_sets = False`` to keep the same race detection
without the sleep-set pruning.

Scope: programs whose executions are bounded (no unbounded spin loops) --
the algorithm's completeness argument assumes a finite, acyclic state
space.  `max_ops` guards against spinning; the naive explorer with
livelock-cycle pruning (`repro.core.drf0.check_program`) remains the tool
for spin programs.

The module provides:

* :func:`iter_dpor_executions` -- representative executions, streamed as
  they are produced;
* :func:`explore_dpor` -- the same, materialized in a list;
* :func:`check_program_dpor` -- the DRF0/DRF1 verdict over them (sound and
  complete for bounded programs, since races are trace-invariants),
  race-checking each execution as it is yielded;
* :func:`sc_results_dpor` -- the SC result set (also a trace-invariant),
  folded from the stream.

Equivalence with the naive enumerators is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from repro.core.compile import make_engine
from repro.core.drf0 import DRF0Report, races_in_execution_vc
from repro.core.engine_state import ExplorerStats
from repro.core.execution import Execution, Result
from repro.core.models import DRF0_MODEL, SynchronizationModel
from repro.core.ops import Operation
from repro.core.sc import ExplorationCapError, ExplorationConfig
from repro.machine.program import Program


@dataclass
class _StackEntry:
    """One node of the DPOR search: exploration bookkeeping only.

    The pre-state itself lives in the engine's undo log -- there are no
    snapshot fields to pin.
    """

    proc: int
    op: Optional[Operation]
    backtrack: Set[int]
    done: Set[int] = field(default_factory=set)


class _Event:
    """One executed transition with its happens-before vector clock.

    ``clock[q]`` counts the events of processor ``q`` that happen before
    or equal this event; ``pidx`` is this event's own (1-based) position
    within its processor, so ``e`` happens-before ``f`` iff
    ``f.clock[e.proc] >= e.pidx``.
    """

    __slots__ = ("proc", "pidx", "clock", "location", "has_write", "index")

    def __init__(self, proc, pidx, clock, location, has_write, index):
        self.proc = proc
        self.pidx = pidx
        self.clock = clock
        self.location = location
        self.has_write = has_write
        self.index = index


def _dependent(a: Operation, b: Operation) -> bool:
    if a.proc == b.proc:
        return True
    if a.location != b.location:
        return False
    return a.has_write or b.has_write


def _dependent_with_pending(op: Operation, proc: int, request) -> bool:
    """Dependency between an executed op and a *pending* request of ``proc``.

    Dependency is decidable from (processor, location, write-ness) alone,
    so the pending transition need not be executed to test it.
    """
    if op.proc == proc:
        return True
    if op.location != request.location:
        return False
    # op.has_write is a Python-level property; the OpKind member carries
    # the same flag as a plain attribute.
    return op.kind.has_write or request.kind.has_write


def iter_dpor_executions(
    program: Program,
    config: Optional[ExplorationConfig] = None,
    stats: Optional[ExplorerStats] = None,
) -> Iterator[Execution]:
    """Representative executions covering every Mazurkiewicz trace, streamed.

    Consumers that stop early (e.g. at the first race) abandon the
    generator and the remaining state space is never expanded.
    """
    cfg = config or ExplorationConfig()
    engine = make_engine(program)
    tracer = cfg.tracer if (cfg.tracer is not None and cfg.tracer.enabled) else None
    engine.tracer = tracer
    nprocs = program.num_procs
    stack: List[_StackEntry] = []
    stats = stats if stats is not None else ExplorerStats()
    use_sleep = cfg.sleep_sets

    # Happens-before bookkeeping, unwound in lockstep with the engine:
    events: List[_Event] = []
    proc_last: List[Optional[_Event]] = [None] * nprocs
    last_write: Dict[str, Optional[_Event]] = {}
    reads_since: Dict[str, List[_Event]] = {}

    def make_event(proc: int) -> tuple:
        """Build the next event of ``proc`` (before stepping the engine).

        Returns ``(event, deps)`` where ``deps`` are its *direct*
        happens-before predecessors: the program-order predecessor, the
        latest write to the location, and -- when this event writes --
        every read of the location since that write.
        """
        request = engine.pending(proc)
        loc = request.location
        has_write = request.kind.has_write
        deps: List[_Event] = []
        po_pred = proc_last[proc]
        if po_pred is not None:
            deps.append(po_pred)
        lw = last_write.get(loc)
        if lw is not None and lw is not po_pred:
            deps.append(lw)
        if has_write:
            deps.extend(
                r for r in reads_since.get(loc, ()) if r.proc != proc
            )
        # Seed the clock from the first predecessor (the common case is a
        # single dep) instead of max-merging into a zero vector.
        if deps:
            clock = list(deps[0].clock)
            for f in deps[1:]:
                fc = f.clock
                for i in range(nprocs):
                    if fc[i] > clock[i]:
                        clock[i] = fc[i]
        else:
            clock = [0] * nprocs
        pidx = (po_pred.pidx if po_pred else 0) + 1
        clock[proc] = pidx
        event = _Event(proc, pidx, tuple(clock), loc, has_write, len(events))
        return event, deps

    def record_event(event: _Event) -> tuple:
        """Apply ``event`` to the hb bookkeeping; returns its undo frame."""
        proc = event.proc
        loc = event.location
        events.append(event)
        frame_last = proc_last[proc]
        proc_last[proc] = event
        if event.has_write:
            frame = ("w", loc, last_write.get(loc), reads_since.get(loc))
            last_write[loc] = event
            reads_since[loc] = []
        else:
            frame = ("r", loc)
            reads_since.setdefault(loc, []).append(event)
        return (frame_last, frame)

    def unrecord_event(undo_frame: tuple) -> None:
        event = events.pop()
        frame_last, frame = undo_frame
        proc_last[event.proc] = frame_last
        if frame[0] == "w":
            _, loc, old_lw, old_reads = frame
            last_write[loc] = old_lw
            reads_since[loc] = old_reads if old_reads is not None else []
        else:
            reads_since[frame[1]].pop()

    def happens_before(e: _Event, f: _Event) -> bool:
        return f.clock[e.proc] >= e.pidx

    def add_backtracks_for_races(event: _Event, deps: List[_Event]) -> None:
        """Source-DPOR race processing for a just-executed event.

        For each direct race ``e <_hb event`` (no intermediary), the node
        ``e`` was executed from must explore some process from the
        initials of ``notdep(e) . event`` -- the hb-minimal first movers
        of the reversed ordering -- unless one is already scheduled there.
        """
        for e in deps:
            if e.proc == event.proc:
                continue  # program order, not a race
            if any(f is not e and happens_before(e, f) for f in deps):
                continue  # e reaches event through f: not a direct race
            entry = stack[e.index]
            # v = notdep(e).event: later events not ordered after e, then
            # the racing event itself.
            v = [f for f in events[e.index + 1 : -1] if not happens_before(e, f)]
            v.append(event)
            first: Dict[int, _Event] = {}
            for f in v:
                if f.proc not in first:
                    first[f.proc] = f
            initials = {
                q
                for q, fq in first.items()
                if not any(g is not fq and happens_before(g, fq) for g in v)
            }
            if initials & entry.backtrack:
                continue  # an equivalent first mover is already scheduled
            chosen = event.proc if event.proc in initials else min(initials)
            entry.backtrack.add(chosen)
            if tracer is not None:
                tracer.instant(
                    "dpor", "backtrack-insert", "explorer", engine.transitions,
                    args={
                        "at_depth": e.index,
                        "proc": chosen,
                        "race_loc": event.location,
                    },
                )

    def explore(sleep: Set[int]) -> Iterator[Execution]:
        enabled = engine.runnable()
        if not enabled:
            stats.executions += 1
            if tracer is not None:
                tracer.instant(
                    "dpor", "execution", "explorer", engine.transitions,
                    args={"n": stats.executions, "depth": engine.depth},
                )
            yield engine.execution()
            return
        if engine.depth >= cfg.max_ops:
            if cfg.allow_incomplete:
                return
            raise ExplorationCapError(
                f"DPOR execution exceeded {cfg.max_ops} operations; use the "
                "naive explorer for programs with spin loops",
                states=stats.states,
            )
        awake = [p for p in enabled if p not in sleep] if use_sleep else enabled
        if not awake:
            stats.sleep_cuts += 1
            if tracer is not None:
                tracer.instant(
                    "dpor", "sleep-cut", "explorer", engine.transitions,
                    args={"depth": engine.depth},
                )
            return  # every enabled transition is covered by an earlier branch
        stats.states += 1
        entry = _StackEntry(
            proc=-1,
            op=None,  # filled per branch
            backtrack={min(awake)},
        )
        stack.append(entry)
        sleeping = set(sleep) if use_sleep else set()
        try:
            while True:
                choice = None
                for p in sorted(entry.backtrack):
                    if p not in entry.done and p not in sleeping:
                        choice = p
                        break
                if choice is None:
                    break
                entry.done.add(choice)
                event, deps = make_event(choice)
                op = engine.step(choice)
                entry.proc = choice
                entry.op = op
                undo_frame = record_event(event)
                try:
                    add_backtracks_for_races(event, deps)
                    if use_sleep:
                        child_sleep = {
                            q
                            for q in sleeping
                            if not _dependent_with_pending(
                                op, q, engine.pending(q)
                            )
                        }
                    else:
                        child_sleep = sleeping
                    yield from explore(child_sleep)
                finally:
                    unrecord_event(undo_frame)
                    engine.undo()
                if use_sleep:
                    sleeping.add(choice)
            # Backtrack members never explored were each blocked by a
            # sleeping process: count them as sleep-set cuts.
            stats.sleep_cuts += len(entry.backtrack - entry.done)
        finally:
            stack.pop()

    try:
        yield from explore(set())
    finally:
        # Runs on abandonment too (consumers stopping at the first race),
        # so the stats reflect whatever was actually expanded.
        stats.transitions = engine.transitions
        stats.max_depth = engine.max_depth


def explore_dpor(
    program: Program,
    config: Optional[ExplorationConfig] = None,
    stats: Optional[ExplorerStats] = None,
) -> List[Execution]:
    """Representative executions covering every Mazurkiewicz trace."""
    return list(iter_dpor_executions(program, config, stats))


def check_program_dpor(
    program: Program,
    model: SynchronizationModel = DRF0_MODEL,
    config: Optional[ExplorationConfig] = None,
) -> DRF0Report:
    """Definition-3 verdict via DPOR (bounded programs).

    Sound and complete: a race is a property of the Mazurkiewicz trace
    (conflicting + hb-unordered is invariant under commuting independent
    operations), and DPOR covers every trace.  Executions are race-checked
    as they are produced, so a racy program stops the exploration at its
    first racy representative.
    """
    config = config or ExplorationConfig()
    if config.explore_jobs != 1:
        from repro.core import parallel

        jobs = parallel.resolve_jobs(config.explore_jobs)
        if jobs > 1 and config.tracer is None and parallel.can_fork():
            return parallel.parallel_check_program_dpor(
                program, model, config, jobs
            )
    stats = ExplorerStats()
    checked = 0
    for execution in iter_dpor_executions(program, config, stats):
        checked += 1
        races = races_in_execution_vc(execution, model)
        if races:
            return DRF0Report(
                program=program,
                model_name=model.name,
                obeys=False,
                executions_checked=checked,
                race=races[0],
                witness=execution,
                stats=stats,
            )
    return DRF0Report(
        program=program, model_name=model.name, obeys=True,
        executions_checked=checked, stats=stats,
    )


def sc_results_dpor(
    program: Program, config: Optional[ExplorationConfig] = None
) -> FrozenSet[Result]:
    """The SC result set via DPOR (bounded programs).

    A result is determined by the trace: every read's value is fixed by
    the nearest dependent (same-location write) predecessors, which
    commuting independent operations cannot change.  Results are folded
    from the execution stream; no execution list is materialized.
    """
    config = config or ExplorationConfig()
    if config.explore_jobs != 1:
        from repro.core import parallel

        jobs = parallel.resolve_jobs(config.explore_jobs)
        if jobs > 1 and config.tracer is None and parallel.can_fork():
            return parallel.parallel_sc_results_dpor(program, config, jobs)
    return frozenset(
        e.result() for e in iter_dpor_executions(program, config)
    )
