"""Dynamic memory operations and the paper's notion of *conflict*.

An :class:`Operation` is one dynamic memory access observed in an execution:
it knows which processor issued it, its position in that processor's program
order, its kind, the location touched, and the values read and/or written.

The paper (Definition 3) says: *"Two accesses are said to conflict if they
access the same location and they are not both reads."*  That predicate is
:func:`conflicts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.types import Location, OpKind, ProcId, Value


@dataclass(frozen=True)
class Operation:
    """One dynamic memory operation in an execution.

    Attributes:
        uid: Unique id within the execution (also the completion index for
            executions produced by the idealized architecture).
        proc: Issuing processor.
        po_index: Position among the issuing processor's memory operations,
            i.e. its rank in program order.
        kind: Operation classification (data/sync, read/write/rmw).
        location: Shared location accessed.
        value_read: Value returned by the read component (``None`` when the
            operation has no read component).
        value_written: Value stored by the write component (``None`` when the
            operation has no write component).
    """

    uid: int
    proc: ProcId
    po_index: int
    kind: OpKind
    location: Location
    value_read: Optional[Value] = None
    value_written: Optional[Value] = None

    @property
    def is_sync(self) -> bool:
        """True for synchronization operations."""
        return self.kind.is_sync

    @property
    def has_read(self) -> bool:
        """True if the operation has a read component."""
        return self.kind.has_read

    @property
    def has_write(self) -> bool:
        """True if the operation has a write component."""
        return self.kind.has_write

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        tag = {
            OpKind.DATA_READ: "R",
            OpKind.DATA_WRITE: "W",
            OpKind.SYNC_READ: "Sr",
            OpKind.SYNC_WRITE: "Sw",
            OpKind.SYNC_RMW: "Srw",
        }[self.kind]
        parts = [f"{tag}(P{self.proc},{self.location}"]
        if self.value_read is not None:
            parts.append(f",r={self.value_read}")
        if self.value_written is not None:
            parts.append(f",w={self.value_written}")
        return "".join(parts) + ")"


def conflicts(a: Operation, b: Operation) -> bool:
    """Return True if two operations conflict (paper, Definition 3).

    Two accesses conflict iff they access the same location and they are not
    both reads.  An operation "is a read" here when it has *only* a read
    component; read-write synchronization operations count as writers.
    """
    if a.location != b.location:
        return False
    return a.has_write or b.has_write


def same_location_syncs(a: Operation, b: Operation) -> bool:
    """True if both operations are synchronization ops on the same location.

    Such pairs are exactly the ones related by the paper's synchronization
    order (so) when one completes before the other.
    """
    return a.is_sync and b.is_sync and a.location == b.location
