"""Synchronization models: DRF0 and the DRF1-style refinement of Section 6.

The paper defines a *synchronization model* as "a set of constraints on
memory accesses that specify how and when synchronization needs to be done".
A program obeys the model when (Definition 3, adapted):

1. all synchronization operations are recognizable by the hardware and each
   accesses exactly one memory location, and
2. for any execution on the idealized architecture, all conflicting accesses
   (that the model does not exempt) are ordered by the happens-before
   relation corresponding to the execution.

Condition (1) holds by construction in this library: the ISA's sync
instructions are typed and single-location, so hardware recognizability is
structural.  Condition (2) is what :mod:`repro.core.drf0` checks.

Two models are provided:

* :class:`DRF0` -- the paper's model: every synchronization operation both
  *acquires* (observes prior releases on the location) and *releases*
  (publishes the issuing processor's prior accesses); every pair of
  conflicting accesses must be hb-ordered.
* :class:`DRF1` -- the refinement sketched in Section 6 and formalized in
  the authors' follow-up work: a read-only synchronization operation (the
  ``Test`` of a Test-and-TestAndSet) only acquires -- it cannot be used to
  order the issuing processor's previous accesses with respect to subsequent
  synchronization of other processors.  Synchronization order carries
  ordering only from an operation with a write component (release) to an
  operation with a read component (acquire), and conflicting pairs of
  synchronization operations are exempt from the race requirement (hardware
  executes them atomically anyway).
"""

from __future__ import annotations

import abc

from repro.core.ops import Operation, conflicts


class SynchronizationModel(abc.ABC):
    """A synchronization model in the sense of Section 3 of the paper."""

    #: Short identifier used in reports.
    name: str = "abstract"

    @abc.abstractmethod
    def is_acquire(self, op: Operation) -> bool:
        """True if ``op`` observes (joins) prior releases on its location."""

    @abc.abstractmethod
    def is_release(self, op: Operation) -> bool:
        """True if ``op`` publishes the issuing processor's prior accesses."""

    def orders(self, earlier: Operation, later: Operation) -> bool:
        """Whether a synchronization-order edge ``earlier -> later`` exists.

        Both arguments are synchronization operations on the same location
        with ``earlier`` completing first.
        """
        return self.is_release(earlier) and self.is_acquire(later)

    def race_relevant(self, a: Operation, b: Operation) -> bool:
        """Whether an unordered conflicting pair counts as a race."""
        return conflicts(a, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SynchronizationModel {self.name}>"


class DRF0(SynchronizationModel):
    """Data-Race-Free-0: the paper's example synchronization model."""

    name = "DRF0"

    def is_acquire(self, op: Operation) -> bool:
        """Every synchronization operation acquires under DRF0."""
        return op.is_sync

    def is_release(self, op: Operation) -> bool:
        """Every synchronization operation releases under DRF0."""
        return op.is_sync


class DRF1(SynchronizationModel):
    """The Section-6 refinement: read-only sync acquires but does not release."""

    name = "DRF1"

    def is_acquire(self, op: Operation) -> bool:
        """Operations with a read component acquire."""
        return op.is_sync and op.has_read

    def is_release(self, op: Operation) -> bool:
        """Only operations with a write component release."""
        return op.is_sync and op.has_write

    def race_relevant(self, a: Operation, b: Operation) -> bool:
        """Sync-sync conflicts are exempt; they execute atomically in hardware."""
        if a.is_sync and b.is_sync:
            return False
        return conflicts(a, b)


#: Shared singletons -- the models are stateless.
DRF0_MODEL = DRF0()
DRF1_MODEL = DRF1()
