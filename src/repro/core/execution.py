"""Executions and results.

Following the paper's reading of Lamport's definition, the *result* of an
execution is "the union of the values returned by all the read operations in
the execution and the final state of memory".  Two executions are equivalent
exactly when they have the same :class:`Result`; a hardware system *appears
sequentially consistent* on a program when every result it can produce is
the result of some execution of the idealized architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.ops import Operation
from repro.core.types import Location, ProcId, Value
from repro.machine.program import Program


@dataclass(frozen=True)
class Result:
    """The observable outcome of one execution.

    Attributes:
        reads: Per processor, the tuple of values returned by that
            processor's operations with a read component, in program order.
            (Program order is well defined per processor, so this encodes
            "the values returned by all the read operations".)
        final_memory: Final value of every shared location, sorted by
            location name.
    """

    reads: Tuple[Tuple[Value, ...], ...]
    final_memory: Tuple[Tuple[Location, Value], ...]

    @staticmethod
    def build(
        reads_by_proc: Sequence[Sequence[Value]],
        memory: Mapping[Location, Value],
    ) -> "Result":
        """Normalize read lists and a memory mapping into a Result."""
        return Result(
            tuple(tuple(values) for values in reads_by_proc),
            tuple(sorted(memory.items())),
        )

    def memory_value(self, location: Location) -> Value:
        """Final value of one location."""
        for loc, value in self.final_memory:
            if loc == location:
                return value
        raise KeyError(location)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        reads = "; ".join(
            f"P{p}:{list(values)}" for p, values in enumerate(self.reads)
        )
        memory = ", ".join(f"{loc}={value}" for loc, value in self.final_memory)
        return f"Result(reads=[{reads}], mem={{{memory}}})"


@dataclass(frozen=True)
class Execution:
    """One complete execution: the operations in their completion order.

    For executions of the idealized architecture the completion order *is*
    the single total order in which operations atomically executed; for
    hardware executions it is the commit order reported by the simulator.

    Attributes:
        program: The program this execution belongs to.
        ops: Operations in completion order.  ``ops[i].uid == i``.
        final_memory: Memory contents when the execution finished.
    """

    program: Program
    ops: Tuple[Operation, ...]
    final_memory: Tuple[Tuple[Location, Value], ...]

    def result(self) -> Result:
        """The observable :class:`Result` of this execution."""
        reads: List[List[Value]] = [[] for _ in range(self.program.num_procs)]
        for op in self.by_program_order():
            if op.has_read:
                assert op.value_read is not None
                reads[op.proc].append(op.value_read)
        return Result(
            tuple(tuple(values) for values in reads),
            self.final_memory,
        )

    def by_program_order(self) -> List[Operation]:
        """Operations sorted by (processor, program-order index)."""
        return sorted(self.ops, key=lambda op: (op.proc, op.po_index))

    def ops_of(self, proc: ProcId) -> List[Operation]:
        """One processor's operations in program order."""
        return sorted(
            (op for op in self.ops if op.proc == proc), key=lambda op: op.po_index
        )

    def sync_ops(self) -> List[Operation]:
        """All synchronization operations, in completion order."""
        return [op for op in self.ops if op.is_sync]

    def writes_to(self, location: Location) -> List[Operation]:
        """Operations with a write component on ``location``, completion order."""
        return [
            op for op in self.ops if op.location == location and op.has_write
        ]

    def __len__(self) -> int:
        return len(self.ops)


def final_memory_from_dict(memory: Mapping[Location, Value]) -> Tuple[Tuple[Location, Value], ...]:
    """Canonical (sorted-tuple) form of a final-memory mapping."""
    return tuple(sorted(memory.items()))
