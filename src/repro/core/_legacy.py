"""The pre-engine snapshot-based enumerators, frozen as a differential oracle.

These are verbatim copies of the interleaving searches as they existed
before the in-place do/undo transition engine
(:mod:`repro.core.engine_state`) replaced them: every DFS node deep-copies
every thread state, copies the whole memory dict, and re-derives
``tuple(sorted(memory.items()))`` keys from scratch.

They are **not** part of the public API and are kept for two purposes only:

* the equivalence property tests (``tests/test_explorer_equivalence.py``)
  check the fast engine against them on the litmus catalog and hundreds of
  generated programs -- same result sets, same executions, same DRF0
  verdicts, same ``complete`` flags, including cap-hit paths;
* the explorer benchmark (``benchmarks/bench_e10_explorer.py``) measures
  the before/after speedup against them and asserts bit-identical outputs.

Do not "fix" or optimize this module; its value is being the old code.
(One deliberate deviation: ``legacy_explore`` counts ``states`` outside the
dedup branch, mirroring the satellite bugfix in the live code, so cap-hit
``complete`` flags stay comparable between the two in ``dedup=False`` mode.
The old aliasing bug -- mutating the caller's config -- is likewise not
reproduced in the wrappers.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.engine_state import (
    _Thread,
    _advance,
    _initial_threads,
    execute_atomically,
)
from repro.core.execution import Execution, Result, final_memory_from_dict
from repro.core.ops import Operation
from repro.core.types import Location, Value
from repro.machine.interpreter import complete
from repro.machine.program import Program
from repro.core.sc import (  # noqa: F401 -- shared config/exception types
    Exploration,
    ExplorationConfig,
    ExplorationIncomplete,
)


def legacy_explore(
    program: Program, config: Optional[ExplorationConfig] = None
) -> Exploration:
    """The original copy-per-node :func:`repro.core.sc.explore`."""
    cfg = config or ExplorationConfig()
    executions: List[Execution] = []
    results: Set[Result] = set()
    visited: Set[object] = set()
    stats = {"states": 0, "complete": True}

    def config_key(
        threads: Sequence[_Thread],
        memory: Dict[Location, Value],
        reads: Sequence[Tuple[Value, ...]],
    ) -> object:
        return (
            tuple(t.state.key() for t in threads),
            tuple(sorted(memory.items())),
            tuple(reads),
        )

    def emit(
        threads: Sequence[_Thread],
        memory: Dict[Location, Value],
        trace: List[Operation],
    ) -> bool:
        execution = Execution(program, tuple(trace), final_memory_from_dict(memory))
        executions.append(execution)
        results.add(execution.result())
        if cfg.max_executions is not None and len(executions) >= cfg.max_executions:
            stats["complete"] = False
            return False
        return True

    def dfs(
        threads: List[_Thread],
        memory: Dict[Location, Value],
        trace: List[Operation],
        reads: List[Tuple[Value, ...]],
        po_counts: List[int],
        on_path: Set[object],
    ) -> bool:
        runnable = [i for i, t in enumerate(threads) if t.pending is not None]
        if not runnable:
            return emit(threads, memory, trace)
        if len(trace) >= cfg.max_ops:
            stats["complete"] = False
            if cfg.allow_incomplete:
                return True
            raise ExplorationIncomplete(
                f"execution exceeded {cfg.max_ops} operations; "
                "the program may spin forever under some schedule"
            )
        cycle_key = (
            tuple(t.state.key() for t in threads),
            tuple(sorted(memory.items())),
        )
        if cycle_key in on_path:
            return True
        if cfg.dedup:
            key = config_key(threads, memory, reads)
            if key in visited:
                return True
            visited.add(key)
        stats["states"] += 1
        if stats["states"] > cfg.max_states:
            stats["complete"] = False
            if cfg.allow_incomplete:
                return True
            raise ExplorationIncomplete(
                f"visited more than {cfg.max_states} configurations"
            )
        on_path.add(cycle_key)
        try:
            for proc in runnable:
                new_threads = [t.copy() for t in threads]
                new_memory = dict(memory)
                new_reads = list(reads)
                new_po = list(po_counts)
                thread = new_threads[proc]
                request = thread.pending
                assert request is not None
                value_read, value_written = execute_atomically(new_memory, request)
                op = Operation(
                    uid=len(trace),
                    proc=proc,
                    po_index=new_po[proc],
                    kind=request.kind,
                    location=request.location,
                    value_read=value_read,
                    value_written=value_written,
                )
                new_po[proc] += 1
                if value_read is not None:
                    new_reads[proc] = new_reads[proc] + (value_read,)
                complete(program.threads[proc], thread.state, request, value_read)
                _advance(program, proc, thread)
                if not dfs(
                    new_threads, new_memory, trace + [op], new_reads, new_po, on_path
                ):
                    return False
        finally:
            on_path.remove(cycle_key)
        return True

    threads = _initial_threads(program)
    memory = dict(program.initial_memory)
    dfs(threads, memory, [], [() for _ in threads], [0] * program.num_procs, set())
    return Exploration(
        program=program,
        executions=executions,
        results=results,
        complete=stats["complete"],
        states_visited=stats["states"],
    )


def legacy_sc_results(
    program: Program, config: Optional[ExplorationConfig] = None
) -> FrozenSet[Result]:
    """Old result-set entry point (without the caller-config mutation)."""
    from dataclasses import replace

    cfg = replace(config, dedup=True) if config else ExplorationConfig()
    return legacy_explore(program, cfg).result_set


def legacy_sc_executions(
    program: Program, config: Optional[ExplorationConfig] = None
) -> List[Execution]:
    """Old every-interleaving entry point (without the config mutation)."""
    from dataclasses import replace

    cfg = (
        replace(config, dedup=False)
        if config
        else ExplorationConfig(dedup=False)
    )
    return legacy_explore(program, cfg).executions


def legacy_is_sc_result(
    program: Program, result: Result, max_states: int = 2_000_000
) -> bool:
    """The original copy-per-node guided SC-membership search."""
    from repro.core.contract import ContractSearchLimit

    if len(result.reads) != program.num_procs:
        return False
    expected_reads = [list(values) for values in result.reads]
    expected_memory = dict(result.final_memory)
    if set(expected_memory) != set(program.initial_memory):
        return False

    visited: Set[object] = set()
    states = 0

    def key(threads, memory, pos):
        return (
            tuple(t.state.key() for t in threads),
            tuple(sorted(memory.items())),
            tuple(pos),
        )

    def dfs(threads: List[_Thread], memory: Dict[Location, Value], pos: List[int]) -> bool:
        nonlocal states
        runnable = [i for i, t in enumerate(threads) if t.pending is not None]
        if not runnable:
            if any(p != len(expected_reads[i]) for i, p in enumerate(pos)):
                return False
            return dict(memory) == expected_memory
        k = key(threads, memory, pos)
        if k in visited:
            return False
        visited.add(k)
        states += 1
        if states > max_states:
            raise ContractSearchLimit(
                f"guided SC search exceeded {max_states} configurations"
            )
        for proc in runnable:
            request = threads[proc].pending
            assert request is not None
            if request.kind.has_read:
                if pos[proc] >= len(expected_reads[proc]):
                    continue
                if memory[request.location] != expected_reads[proc][pos[proc]]:
                    continue
            new_threads = [t.copy() for t in threads]
            new_memory = dict(memory)
            new_pos = list(pos)
            thread = new_threads[proc]
            value_read, _ = execute_atomically(new_memory, request)
            if value_read is not None:
                new_pos[proc] += 1
            complete(program.threads[proc], thread.state, request, value_read)
            _advance(program, proc, thread)
            if dfs(new_threads, new_memory, new_pos):
                return True
        return False

    threads = _initial_threads(program)
    memory = dict(program.initial_memory)
    return dfs(threads, memory, [0] * program.num_procs)


@dataclass
class _LegacyStackEntry:
    """Old DPOR stack entry, pre-state snapshots and all."""

    proc: int
    op: Optional[Operation]
    threads: Optional[List[_Thread]]
    memory: Optional[Dict[str, int]]
    enabled: Set[int]
    backtrack: Set[int]
    done: Set[int] = field(default_factory=set)


def legacy_explore_dpor(
    program: Program, config: Optional[ExplorationConfig] = None
) -> List[Execution]:
    """The original snapshot-per-branch DPOR explorer (no sleep sets)."""
    from repro.core.dpor import _dependent_with_pending

    cfg = config or ExplorationConfig()
    executions: List[Execution] = []
    stack: List[_LegacyStackEntry] = []

    def snapshot(threads, memory):
        return [t.copy() for t in threads], dict(memory)

    def enabled_procs(threads) -> Set[int]:
        return {i for i, t in enumerate(threads) if t.pending is not None}

    def run_one(threads, memory, proc, po_counts) -> Operation:
        thread = threads[proc]
        request = thread.pending
        value_read, value_written = execute_atomically(memory, request)
        op = Operation(
            uid=len(stack),
            proc=proc,
            po_index=po_counts[proc],
            kind=request.kind,
            location=request.location,
            value_read=value_read,
            value_written=value_written,
        )
        po_counts[proc] += 1
        complete(program.threads[proc], thread.state, request, value_read)
        _advance(program, proc, thread)
        return op

    def add_backtrack_points(threads, enabled: Set[int]) -> None:
        for proc in enabled:
            request = threads[proc].pending
            for entry in reversed(stack):
                if entry.proc != proc and _dependent_with_pending(
                    entry.op, proc, request
                ):
                    if proc in entry.enabled:
                        entry.backtrack.add(proc)
                    else:
                        entry.backtrack |= entry.enabled
                    break

    def explore(threads, memory, po_counts) -> None:
        enabled = enabled_procs(threads)
        if not enabled:
            ops = tuple(e.op for e in stack)
            executions.append(
                Execution(program, ops, final_memory_from_dict(memory))
            )
            return
        if len(stack) >= cfg.max_ops:
            if cfg.allow_incomplete:
                return
            raise ExplorationIncomplete(
                f"DPOR execution exceeded {cfg.max_ops} operations; use the "
                "naive explorer for programs with spin loops"
            )
        add_backtrack_points(threads, enabled)
        entry = _LegacyStackEntry(
            proc=-1,
            op=None,
            threads=None,
            memory=None,
            enabled=enabled,
            backtrack={min(enabled)},
        )
        stack.append(entry)
        pre_threads, pre_memory = snapshot(threads, memory)
        pre_po = list(po_counts)
        while True:
            choice = next(
                (p for p in sorted(entry.backtrack) if p not in entry.done), None
            )
            if choice is None:
                break
            entry.done.add(choice)
            branch_threads, branch_memory = snapshot(pre_threads, pre_memory)
            branch_po = list(pre_po)
            op = run_one(branch_threads, branch_memory, choice, branch_po)
            entry.proc = choice
            entry.op = op
            entry.threads = pre_threads
            entry.memory = pre_memory
            explore(branch_threads, branch_memory, branch_po)
        stack.pop()

    threads = _initial_threads(program)
    memory = dict(program.initial_memory)
    explore(threads, memory, [0] * program.num_procs)
    return executions


def legacy_all_interleavings(
    program: Program, cfg: ExplorationConfig
) -> Iterator[Execution]:
    """The original copy-per-node path-pruned interleaving generator."""

    def path_key(threads, memory):
        return (
            tuple(t.state.key() for t in threads),
            tuple(sorted(memory.items())),
        )

    def dfs(threads, memory, trace, po_counts, on_path: Set[object]):
        runnable = [i for i, t in enumerate(threads) if t.pending is not None]
        if not runnable:
            yield Execution(program, tuple(trace), final_memory_from_dict(memory))
            return
        if len(trace) >= cfg.max_ops:
            if cfg.allow_incomplete:
                return
            raise ExplorationIncomplete(
                f"interleaving exceeded {cfg.max_ops} operations"
            )
        key = path_key(threads, memory)
        if key in on_path:
            return
        on_path.add(key)
        try:
            for proc in runnable:
                new_threads = [t.copy() for t in threads]
                new_memory = dict(memory)
                new_po = list(po_counts)
                thread = new_threads[proc]
                request = thread.pending
                value_read, value_written = execute_atomically(new_memory, request)
                op = Operation(
                    uid=len(trace),
                    proc=proc,
                    po_index=new_po[proc],
                    kind=request.kind,
                    location=request.location,
                    value_read=value_read,
                    value_written=value_written,
                )
                new_po[proc] += 1
                complete(program.threads[proc], thread.state, request, value_read)
                _advance(program, proc, thread)
                yield from dfs(new_threads, new_memory, trace + [op], new_po, on_path)
        finally:
            on_path.remove(key)

    threads = _initial_threads(program)
    memory = dict(program.initial_memory)
    yield from dfs(threads, memory, [], [0] * program.num_procs, set())


def legacy_check_program(program: Program, model=None, config=None):
    """Old exhaustive Definition-3 verdict over the legacy generator."""
    from repro.core.drf0 import DRF0Report, races_in_execution_vc
    from repro.core.models import DRF0_MODEL

    model = model or DRF0_MODEL
    cfg = config or ExplorationConfig(max_ops=400)
    checked = 0
    for execution in legacy_all_interleavings(program, cfg):
        checked += 1
        races = races_in_execution_vc(execution, model)
        if races:
            return DRF0Report(
                program=program,
                model_name=model.name,
                obeys=False,
                executions_checked=checked,
                race=races[0],
                witness=execution,
            )
    return DRF0Report(
        program=program, model_name=model.name, obeys=True, executions_checked=checked
    )


def legacy_check_program_dpor(program: Program, model=None, config=None):
    """Old DPOR Definition-3 verdict (list-materializing)."""
    from repro.core.drf0 import DRF0Report, races_in_execution_vc
    from repro.core.models import DRF0_MODEL

    model = model or DRF0_MODEL
    checked = 0
    for execution in legacy_explore_dpor(program, config):
        checked += 1
        races = races_in_execution_vc(execution, model)
        if races:
            return DRF0Report(
                program=program,
                model_name=model.name,
                obeys=False,
                executions_checked=checked,
                race=races[0],
                witness=execution,
            )
    return DRF0Report(
        program=program, model_name=model.name, obeys=True, executions_checked=checked
    )
