"""The idealized architecture: exhaustive sequentially consistent execution.

The paper defines happens-before relations over executions of "an abstract,
idealized architecture where all memory accesses are executed atomically and
in program order".  This module *is* that architecture: an explicit-state
enumerator that explores every interleaving of a program's memory
operations, executing each operation atomically.

Two exploration modes matter:

* ``dedup=True`` (default): configurations that agree on thread states,
  memory, and the observations made so far are explored once.  The set of
  :class:`~repro.core.execution.Result` values found is exactly the set of
  sequentially consistent results -- this is the right mode for the
  Definition-2 contract checker.
* ``dedup=False``: every interleaving is enumerated as a distinct
  :class:`~repro.core.execution.Execution` trace.  The DRF0 checker uses
  this mode because two interleavings with the same observable state can
  still have different happens-before relations.

Programs with synchronization spin loops have *unboundedly many* SC results
(every spin count is a distinct read history), so exploration prunes
**livelock cycles**: a branch that revisits a (thread states, memory)
configuration already on the current DFS path is cut, because the first
visit already explores every scheduling alternative from that
configuration.  The enumerated set is therefore the results of executions
without redundant spin pumping; membership of an *arbitrary* observed
result (with any spin count) is decided by
:func:`repro.core.contract.is_sc_result` instead.

Both modes are exponential in the worst case; :class:`ExplorationConfig`
caps keep them honest, and hitting a cap raises (never silently truncates)
unless ``allow_incomplete`` is set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.execution import Execution, Result, final_memory_from_dict
from repro.core.ops import Operation
from repro.core.types import Location, OpKind, Value
from repro.machine.interpreter import (
    MemRequest,
    ThreadState,
    complete,
    run_to_memory_op,
)
from repro.machine.program import Program


class ExplorationIncomplete(RuntimeError):
    """Raised when an exploration cap is hit without ``allow_incomplete``."""


@dataclass
class ExplorationConfig:
    """Caps and switches for state-space exploration.

    Attributes:
        max_executions: Stop after this many complete executions
            (``None`` = unbounded).
        max_ops: Bound on operations in a single execution; exceeding it
            means the program probably spins forever under some schedule.
        max_states: Bound on distinct configurations visited.
        dedup: Merge configurations with identical observable state.
        allow_incomplete: Return partial answers instead of raising when a
            cap is hit.
    """

    max_executions: Optional[int] = None
    max_ops: int = 400
    max_states: int = 2_000_000
    dedup: bool = True
    allow_incomplete: bool = False


@dataclass
class Exploration:
    """Outcome of :func:`explore`."""

    program: Program
    executions: List[Execution]
    results: Set[Result]
    complete: bool
    states_visited: int = 0

    @property
    def result_set(self) -> FrozenSet[Result]:
        """The sequentially consistent result set (frozen)."""
        return frozenset(self.results)


class _Thread:
    """Exploration-time view of one thread: state plus pending request."""

    __slots__ = ("state", "pending")

    def __init__(self, state: ThreadState, pending: Optional[MemRequest]) -> None:
        self.state = state
        self.pending = pending

    def copy(self) -> "_Thread":
        return _Thread(self.state.copy(), self.pending)


def _advance(program: Program, proc: int, thread: _Thread) -> None:
    """Run thread ``proc`` to its next memory operation (skipping delays)."""
    pending, _ = run_to_memory_op(
        program.threads[proc], thread.state, skip_delays=True
    )
    assert pending is None or isinstance(pending, MemRequest)
    thread.pending = pending


def _initial_threads(program: Program) -> List[_Thread]:
    threads = []
    for proc in range(program.num_procs):
        thread = _Thread(ThreadState(), None)
        _advance(program, proc, thread)
        threads.append(thread)
    return threads


def execute_atomically(
    memory: Dict[Location, Value], request: MemRequest
) -> Tuple[Optional[Value], Optional[Value]]:
    """Perform one memory operation atomically against ``memory``.

    Returns ``(value_read, value_written)`` with ``None`` for the missing
    component.  This tiny function is the entire memory semantics of the
    idealized architecture.
    """
    value_read: Optional[Value] = None
    value_written: Optional[Value] = None
    if request.kind.has_read:
        value_read = memory[request.location]
    if request.kind.has_write:
        assert request.write_value is not None
        memory[request.location] = request.write_value
        value_written = request.write_value
    return value_read, value_written


def explore(
    program: Program, config: Optional[ExplorationConfig] = None
) -> Exploration:
    """Enumerate executions of ``program`` on the idealized architecture."""
    cfg = config or ExplorationConfig()
    executions: List[Execution] = []
    results: Set[Result] = set()
    visited: Set[object] = set()
    stats = {"states": 0, "complete": True}

    def config_key(
        threads: Sequence[_Thread],
        memory: Dict[Location, Value],
        reads: Sequence[Tuple[Value, ...]],
    ) -> object:
        return (
            tuple(t.state.key() for t in threads),
            tuple(sorted(memory.items())),
            tuple(reads),
        )

    def emit(
        threads: Sequence[_Thread],
        memory: Dict[Location, Value],
        trace: List[Operation],
    ) -> bool:
        """Record a finished execution; returns False when capped."""
        execution = Execution(program, tuple(trace), final_memory_from_dict(memory))
        executions.append(execution)
        results.add(execution.result())
        if cfg.max_executions is not None and len(executions) >= cfg.max_executions:
            stats["complete"] = False
            return False
        return True

    def dfs(
        threads: List[_Thread],
        memory: Dict[Location, Value],
        trace: List[Operation],
        reads: List[Tuple[Value, ...]],
        po_counts: List[int],
        on_path: Set[object],
    ) -> bool:
        """Returns False to abort the whole exploration (cap hit)."""
        runnable = [i for i, t in enumerate(threads) if t.pending is not None]
        if not runnable:
            return emit(threads, memory, trace)
        if len(trace) >= cfg.max_ops:
            stats["complete"] = False
            if cfg.allow_incomplete:
                return True
            raise ExplorationIncomplete(
                f"execution exceeded {cfg.max_ops} operations; "
                "the program may spin forever under some schedule"
            )
        cycle_key = (
            tuple(t.state.key() for t in threads),
            tuple(sorted(memory.items())),
        )
        if cycle_key in on_path:
            return True  # livelock cycle: already explored from its first visit
        if cfg.dedup:
            key = config_key(threads, memory, reads)
            if key in visited:
                return True
            visited.add(key)
            stats["states"] += 1
            if stats["states"] > cfg.max_states:
                stats["complete"] = False
                if cfg.allow_incomplete:
                    return True
                raise ExplorationIncomplete(
                    f"visited more than {cfg.max_states} configurations"
                )
        on_path.add(cycle_key)
        try:
            for proc in runnable:
                new_threads = [t.copy() for t in threads]
                new_memory = dict(memory)
                new_reads = list(reads)
                new_po = list(po_counts)
                thread = new_threads[proc]
                request = thread.pending
                assert request is not None
                value_read, value_written = execute_atomically(new_memory, request)
                op = Operation(
                    uid=len(trace),
                    proc=proc,
                    po_index=new_po[proc],
                    kind=request.kind,
                    location=request.location,
                    value_read=value_read,
                    value_written=value_written,
                )
                new_po[proc] += 1
                if value_read is not None:
                    new_reads[proc] = new_reads[proc] + (value_read,)
                complete(program.threads[proc], thread.state, request, value_read)
                _advance(program, proc, thread)
                if not dfs(
                    new_threads, new_memory, trace + [op], new_reads, new_po, on_path
                ):
                    return False
        finally:
            on_path.remove(cycle_key)
        return True

    threads = _initial_threads(program)
    memory = dict(program.initial_memory)
    dfs(threads, memory, [], [() for _ in threads], [0] * program.num_procs, set())
    return Exploration(
        program=program,
        executions=executions,
        results=results,
        complete=stats["complete"],
        states_visited=stats["states"],
    )


def sc_results(
    program: Program, config: Optional[ExplorationConfig] = None
) -> FrozenSet[Result]:
    """The exact set of sequentially consistent results of ``program``."""
    cfg = config or ExplorationConfig()
    cfg.dedup = True
    return explore(program, cfg).result_set


def sc_executions(
    program: Program, config: Optional[ExplorationConfig] = None
) -> List[Execution]:
    """Every interleaving of ``program`` as a distinct execution trace."""
    cfg = config or ExplorationConfig(dedup=False)
    cfg.dedup = False
    return explore(program, cfg).executions


def random_sc_execution(program: Program, seed: int = 0) -> Execution:
    """One sequentially consistent execution under a random fair schedule."""
    rng = random.Random(seed)
    threads = _initial_threads(program)
    memory = dict(program.initial_memory)
    trace: List[Operation] = []
    po_counts = [0] * program.num_procs
    while True:
        runnable = [i for i, t in enumerate(threads) if t.pending is not None]
        if not runnable:
            break
        proc = rng.choice(runnable)
        thread = threads[proc]
        request = thread.pending
        assert request is not None
        value_read, value_written = execute_atomically(memory, request)
        trace.append(
            Operation(
                uid=len(trace),
                proc=proc,
                po_index=po_counts[proc],
                kind=request.kind,
                location=request.location,
                value_read=value_read,
                value_written=value_written,
            )
        )
        po_counts[proc] += 1
        complete(program.threads[proc], thread.state, request, value_read)
        _advance(program, proc, thread)
    return Execution(program, tuple(trace), final_memory_from_dict(memory))
