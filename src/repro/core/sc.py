"""The idealized architecture: exhaustive sequentially consistent execution.

The paper defines happens-before relations over executions of "an abstract,
idealized architecture where all memory accesses are executed atomically and
in program order".  This module *is* that architecture: an explicit-state
enumerator that explores every interleaving of a program's memory
operations, executing each operation atomically.

The search runs on the shared in-place do/undo transition engine
(:class:`repro.core.engine_state.EngineState`): one live configuration,
stepped forward and rewound via an undo log, with incrementally maintained
configuration keys -- no per-node copying of thread states or memory.

Two exploration modes matter:

* ``dedup=True`` (default): configurations that agree on thread states,
  memory, and the observations made so far are explored once.  The set of
  :class:`~repro.core.execution.Result` values found is exactly the set of
  sequentially consistent results -- this is the right mode for the
  Definition-2 contract checker.
* ``dedup=False``: every interleaving is enumerated as a distinct
  :class:`~repro.core.execution.Execution` trace.  The DRF0 checker uses
  this mode because two interleavings with the same observable state can
  still have different happens-before relations.

Result-set-only callers can additionally set
``collect_executions=False`` so finished executions are *consumed as they
are produced* (folded into the result set) instead of materialized in a
list -- :func:`sc_results` does.

Programs with synchronization spin loops have *unboundedly many* SC results
(every spin count is a distinct read history), so exploration prunes
**livelock cycles**: a branch that revisits a (thread states, memory)
configuration already on the current DFS path is cut, because the first
visit already explores every scheduling alternative from that
configuration.  The enumerated set is therefore the results of executions
without redundant spin pumping; membership of an *arbitrary* observed
result (with any spin count) is decided by
:func:`repro.core.contract.is_sc_result` instead.

Both modes are exponential in the worst case; :class:`ExplorationConfig`
caps keep them honest, and hitting a cap raises (never silently truncates)
unless ``allow_incomplete`` is set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import FrozenSet, List, Optional, Set

from repro.core.compile import make_engine
from repro.core.engine_state import (
    EngineState,
    ExplorerStats,
    _Thread,
    _advance,
    _initial_threads,
    execute_atomically,
)
from repro.core.execution import Execution, Result
from repro.machine.program import Program

__all__ = [
    "ExplorationCapError",
    "ExplorationConfig",
    "ExplorationIncomplete",
    "Exploration",
    "explore",
    "sc_results",
    "sc_executions",
    "random_sc_execution",
]


class ExplorationCapError(RuntimeError):
    """Raised when an exploration cap is hit without ``allow_incomplete``.

    Carries a snapshot of the exploration counters at the moment the cap
    fired -- states visited, and for sharded runs the frontier and shard
    counts -- so a capped run is diagnosable from the message alone.
    """

    def __init__(
        self,
        message: str,
        *,
        states: Optional[int] = None,
        frontier: Optional[int] = None,
        shards: Optional[int] = None,
    ) -> None:
        self.states = states
        self.frontier = frontier
        self.shards = shards
        parts = []
        if states is not None:
            parts.append(f"states={states}")
        if frontier is not None:
            parts.append(f"frontier={frontier}")
        if shards is not None:
            parts.append(f"shards={shards}")
        if parts:
            message = f"{message} [{', '.join(parts)}]"
        super().__init__(message)


#: Historical name, kept importable: every pre-E15 caller catches this.
ExplorationIncomplete = ExplorationCapError


@dataclass
class ExplorationConfig:
    """Caps and switches for state-space exploration.

    Attributes:
        max_executions: Stop after this many complete executions
            (``None`` = unbounded).
        max_ops: Bound on operations in a single execution; exceeding it
            means the program probably spins forever under some schedule.
        max_states: Bound on distinct configurations visited.
        dedup: Merge configurations with identical observable state.
        allow_incomplete: Return partial answers instead of raising when a
            cap is hit.
        collect_executions: Materialize every finished execution in
            :attr:`Exploration.executions`.  Result-set-only callers set
            this to ``False`` to stream executions into the result fold.
        sleep_sets: Let the DPOR explorer layer sleep sets over its
            backtrack sets (prunes redundant branches; no effect on the
            naive enumerator).
        tracer: Optional :class:`~repro.obs.tracer.Tracer` receiving
            engine step/undo and explorer events (timestamps are the
            engine's transition count).  ``None`` keeps the hot loop
            untouched.
        explore_jobs: Shard this single exploration across a fork pool
            of compiled engines (:mod:`repro.core.parallel`).  ``1``
            (default) stays serial; ``0`` means one worker per core.
            Only result-set/verdict-only paths shard (execution lists
            are order-dependent); unshardable configurations fall back
            to the serial path silently.
    """

    max_executions: Optional[int] = None
    max_ops: int = 400
    max_states: int = 2_000_000
    dedup: bool = True
    allow_incomplete: bool = False
    collect_executions: bool = True
    sleep_sets: bool = True
    tracer: Optional[object] = None
    explore_jobs: int = 1


@dataclass
class Exploration:
    """Outcome of :func:`explore`."""

    program: Program
    executions: List[Execution]
    results: Set[Result]
    complete: bool
    states_visited: int = 0
    stats: ExplorerStats = field(default_factory=ExplorerStats)

    @property
    def result_set(self) -> FrozenSet[Result]:
        """The sequentially consistent result set (frozen)."""
        return frozenset(self.results)


def explore(
    program: Program, config: Optional[ExplorationConfig] = None
) -> Exploration:
    """Enumerate executions of ``program`` on the idealized architecture."""
    cfg = config or ExplorationConfig()
    if cfg.explore_jobs != 1:
        from repro.core import parallel

        jobs = parallel.resolve_jobs(cfg.explore_jobs)
        if (
            jobs > 1
            and not cfg.collect_executions
            and cfg.max_executions is None
            and cfg.tracer is None
            and parallel.can_fork()
        ):
            return parallel.parallel_explore(program, cfg, jobs)
    # The trace is only read when executions are collected; skipping it
    # removes the Operation construction from the hot loop.
    engine = make_engine(program, record_trace=cfg.collect_executions)
    tracer = cfg.tracer if (cfg.tracer is not None and cfg.tracer.enabled) else None
    engine.tracer = tracer
    executions: List[Execution] = []
    results: Set[Result] = set()
    visited: Set[object] = set()
    stats = ExplorerStats()
    state = {"complete": True}
    collect = cfg.collect_executions

    # Straight-line programs cannot revisit a configuration on a DFS path,
    # so livelock-cycle tracking (and, without dedup, every key) is skipped.
    track_cycles = not engine.straightline

    def emit() -> bool:
        """Consume a finished execution; returns False when capped."""
        stats.executions += 1
        if tracer is not None:
            tracer.instant(
                "explore", "execution", "explorer", engine.transitions,
                args={"n": stats.executions, "depth": engine.depth},
            )
        if collect:
            execution = engine.execution()
            executions.append(execution)
            results.add(Result(tuple(engine.reads), execution.final_memory))
        else:
            results.add(engine.result())
        if cfg.max_executions is not None and stats.executions >= cfg.max_executions:
            state["complete"] = False
            return False
        return True

    def dfs() -> bool:
        """Returns False to abort the whole exploration (cap hit)."""
        runnable = engine.runnable()
        if not runnable:
            return emit()
        if engine.depth >= cfg.max_ops:
            state["complete"] = False
            if cfg.allow_incomplete:
                return True
            raise ExplorationCapError(
                f"execution exceeded {cfg.max_ops} operations; "
                "the program may spin forever under some schedule",
                states=stats.states,
            )
        cycle_key = None
        if track_cycles or cfg.dedup:
            cycle_key = engine.config_key()
        if track_cycles and cycle_key in on_path:
            return True  # livelock cycle: already explored from its first visit
        if cfg.dedup:
            key = (cycle_key, engine.reads_key())
            if key in visited:
                return True
            visited.add(key)
        stats.states += 1
        if stats.states > cfg.max_states:
            state["complete"] = False
            if cfg.allow_incomplete:
                return True
            raise ExplorationCapError(
                f"visited more than {cfg.max_states} configurations",
                states=stats.states,
            )
        if track_cycles:
            on_path.add(cycle_key)
        try:
            for proc in runnable:
                engine.step(proc)
                try:
                    if not dfs():
                        return False
                finally:
                    engine.undo()
        finally:
            if track_cycles:
                on_path.remove(cycle_key)
        return True

    on_path: Set[object] = set()
    dfs()
    stats.transitions = engine.transitions
    stats.max_depth = engine.max_depth
    stats.peak_visited = len(visited)
    return Exploration(
        program=program,
        executions=executions,
        results=results,
        complete=state["complete"],
        states_visited=stats.states,
        stats=stats,
    )


def sc_results(
    program: Program, config: Optional[ExplorationConfig] = None
) -> FrozenSet[Result]:
    """The exact set of sequentially consistent results of ``program``.

    The caller's config is copied, never mutated; executions are streamed
    into the result fold instead of being materialized.
    """
    if config is None:
        cfg = ExplorationConfig(dedup=True, collect_executions=False)
    else:
        cfg = replace(config, dedup=True, collect_executions=False)
    return explore(program, cfg).result_set


def sc_executions(
    program: Program, config: Optional[ExplorationConfig] = None
) -> List[Execution]:
    """Every interleaving of ``program`` as a distinct execution trace.

    The caller's config is copied, never mutated.
    """
    if config is None:
        cfg = ExplorationConfig(dedup=False)
    else:
        cfg = replace(config, dedup=False, collect_executions=True)
    return explore(program, cfg).executions


def random_sc_execution(program: Program, seed: int = 0) -> Execution:
    """One sequentially consistent execution under a random fair schedule."""
    rng = random.Random(seed)
    engine = make_engine(program)
    while True:
        runnable = engine.runnable()
        if not runnable:
            break
        engine.step(rng.choice(runnable))
    return engine.execution()
