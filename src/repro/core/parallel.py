"""Intra-cell parallel exploration: prefix-sharded state-space partitioning.

The sweep engine (:mod:`repro.verify.engine`) parallelizes *across* cells;
one deep exploration is still a serial wall-clock floor.  This module
shards a *single* exploration across a fork pool of compiled engines:

**Phase 1 — frontier enumeration (coordinator).**  The coordinator
enumerates execution prefixes deterministically down to a work-budget
frontier (a few shards per worker).  For the naive enumerators the
expansion is breadth-first and replicates the serial node semantics
exactly -- livelock-cycle pruning against the prefix path, dedup on the
interned packed ``(config_key, reads_key)`` pairs from
:mod:`repro.core.compile` (two prefixes reaching an identical packed
configuration collapse to one shard), cap accounting.  For source-DPOR
the frontier is grown lazily: one minimum-enabled chain per scheduled
backtrack branch (see phase 3).

**Phase 2 — subtree exploration (workers).**  Each worker inherits the
program through ``fork`` (nothing is pickled on the way in), builds its
own compiled engine, replays its prefix and explores the subtree below it
with the same algorithm the serial path uses.  Prefix replay rebuilds the
exact serial context at the subtree root: the livelock ``on_path`` keys,
the vector-clock race detector state (drf0), or the full happens-before
event history (DPOR).

**Phase 3 — deterministic merge (coordinator).**  Result sets are
order-independent and dedup-invariant -- the set of results reachable
from a configuration depends only on the configuration and the
observations made so far -- so the union of the per-shard result sets is
*bit-identical* to the serial result set, whatever the completion order
(``benchmarks/bench_e15_parallel.py`` asserts this per row).  Boolean
verdicts (drf0 race existence, SC membership) merge as "any shard hit".
:class:`~repro.core.engine_state.ExplorerStats` merge by summation; state
counts may differ from the serial run (shards cannot share a dedup set),
which is why the determinism contract is stated over *results*, not
counters.

For source-DPOR, workers return newly discovered backtrack points whose
target node lies inside their prefix; the coordinator owns the backtrack
sets of the top ``_DPOR_PREFIX_DEPTH`` levels and schedules each accepted
point as a new shard (work-stealing over backtrack nodes, with seen-key
dedup so no subtree is dispatched twice).  Existential queries
(:func:`repro.core.contract.is_sc_result` membership, drf0 first-race)
get an early-exit broadcast: a :class:`multiprocessing.Event` created
before the fork, set by the coordinator on the first hit and polled by
every worker between nodes, cancels in-flight shards.

The parallel path is only taken for callers that discard executions
(``collect_executions=False`` / verdict-only): execution *lists* are
order-dependent, so trace collectors stay serial.  Workers are assumed
crash-prone: the coordinator polls pool PIDs, resubmits shards lost to a
worker death (shard tasks are pure, so re-running is safe), and degrades
a repeatedly-lost shard to in-parent execution.  ``KeyboardInterrupt``
tears the pool down before propagating.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.compile import make_engine
from repro.core.engine_state import ExplorerStats
from repro.obs import stream as obs_stream
from repro.core.execution import Result
from repro.core.models import DRF0_MODEL, SynchronizationModel
from repro.machine.program import Program

__all__ = [
    "ShardStats",
    "can_fork",
    "resolve_jobs",
    "parallel_explore",
    "parallel_check_program",
    "parallel_check_program_dpor",
    "parallel_sc_results_dpor",
    "parallel_is_sc_result",
]

#: Target shards per worker: enough slack that an unlucky split keeps
#: every core busy, small enough that phase 1 stays negligible.
_SHARD_FACTOR = 4

#: Depth of the coordinator-owned top tree for DPOR work-stealing.
#: Backtrack insertions above this depth become steal reports; below it
#: they are handled worker-locally.
_DPOR_PREFIX_DEPTH = 8

#: Hard ceiling on naive frontier depth (the frontier normally saturates
#: after ``log_width(target)`` levels; this guards single-chain programs).
_MAX_FRONTIER_DEPTH = 24

#: Workers poll the early-exit broadcast every this many expanded nodes.
_STOP_CHECK_NODES = 256

#: Shard-stats snapshot of the most recent coordinator run (observability
#: convenience for callers that cannot thread an accumulator through).
LAST_SHARD_STATS: Optional["ShardStats"] = None


@dataclass
class ShardStats:
    """Counters for one (or an accumulation of) sharded exploration(s).

    Shard balance is reported as the min/max/total states explored per
    shard; ``cancel_latency_us`` measures the early-exit broadcast from
    the first hit to the last in-flight shard draining.
    """

    explorations: int = 0
    shards: int = 0
    frontier: int = 0
    steals: int = 0
    steal_reports: int = 0
    cancelled: int = 0
    resubmitted: int = 0
    cancel_latency_us: int = 0
    min_shard_states: int = 0
    max_shard_states: int = 0
    total_shard_states: int = 0

    def observe_shard(self, states: int) -> None:
        if self.max_shard_states == 0 and self.min_shard_states == 0:
            self.min_shard_states = states
        else:
            self.min_shard_states = min(self.min_shard_states, states)
        self.max_shard_states = max(self.max_shard_states, states)
        self.total_shard_states += states

    def merge(self, other: "ShardStats") -> None:
        self.explorations += other.explorations
        self.shards += other.shards
        self.frontier += other.frontier
        self.steals += other.steals
        self.steal_reports += other.steal_reports
        self.cancelled += other.cancelled
        self.resubmitted += other.resubmitted
        self.cancel_latency_us = max(
            self.cancel_latency_us, other.cancel_latency_us
        )
        if other.shards:
            if self.min_shard_states == 0 and self.max_shard_states == 0:
                self.min_shard_states = other.min_shard_states
            elif other.min_shard_states or other.max_shard_states:
                self.min_shard_states = min(
                    self.min_shard_states, other.min_shard_states
                )
            self.max_shard_states = max(
                self.max_shard_states, other.max_shard_states
            )
            self.total_shard_states += other.total_shard_states

    def as_dict(self) -> Dict[str, int]:
        return {
            "explorations": self.explorations,
            "shards": self.shards,
            "frontier": self.frontier,
            "steals": self.steals,
            "steal_reports": self.steal_reports,
            "cancelled": self.cancelled,
            "resubmitted": self.resubmitted,
            "cancel_latency_us": self.cancel_latency_us,
            "min_shard_states": self.min_shard_states,
            "max_shard_states": self.max_shard_states,
            "total_shard_states": self.total_shard_states,
        }


def can_fork() -> bool:
    """Whether prefix sharding is available here.

    False inside pool workers: they are daemonic and may not have
    children, so an ``explore_jobs`` knob that reaches one (e.g. via an
    :class:`~repro.core.sc.ExplorationConfig` pickled into a task) falls
    back to the serial path instead of crashing the task.
    """
    if multiprocessing.current_process().daemon:
        return False
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_jobs(explore_jobs: Optional[int]) -> int:
    """Normalize an ``explore_jobs`` knob: ``0`` means all cores."""
    if explore_jobs is None:
        return 1
    if explore_jobs == 0:
        return os.cpu_count() or 1
    return max(1, explore_jobs)


class _Cancelled(Exception):
    """Internal: a worker observed the early-exit broadcast."""


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _ShardContext:
    """Per-exploration context published before the fork.

    Workers read it from the module global they inherited by address
    space copy -- the program and model objects are never pickled (the
    same pattern as ``repro.verify.engine._TASK_CONTEXT``).
    """

    __slots__ = (
        "program",
        "cfg",
        "mode",
        "model",
        "expected_reads",
        "expected_memory",
        "max_states",
        "stop",
        "failpoints",
    )

    def __init__(
        self,
        program,
        cfg,
        mode,
        model,
        expected_reads,
        expected_memory,
        max_states,
        stop,
        failpoints,
    ):
        self.program = program
        self.cfg = cfg
        self.mode = mode
        self.model = model
        self.expected_reads = expected_reads
        self.expected_memory = expected_memory
        self.max_states = max_states
        self.stop = stop
        self.failpoints = failpoints


_SHARD_CONTEXT: Optional[_ShardContext] = None


def _fire_shard_failpoint(failpoints) -> None:
    """Duck-typed `repro.verify.engine.Failpoint` support for shard tasks.

    Same contract as the engine's ``_maybe_fire_failpoint``: fires once
    across all processes (atomic token claim) and only in forked workers.
    Duplicated here because :mod:`repro.core` must not import
    :mod:`repro.verify`.
    """
    if multiprocessing.parent_process() is None:
        return  # only forked workers fire; the coordinator must survive
    for fp in failpoints or ():
        if getattr(fp, "task_kind", None) not in ("shard", "*"):
            continue
        try:
            fd = os.open(fp.token_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        if fp.mode == "crash":
            os._exit(17)
        if fp.mode == "hang":
            time.sleep(3600)
            continue
        raise RuntimeError(f"injected {fp.mode} failpoint (shard)")


def _run_shard(task: tuple) -> tuple:
    """Pool entry point: explore the subtree below ``task``'s prefix.

    ``task`` is ``(prefix, seeds)`` -- ``seeds`` carries the sleep-set
    seeds for DPOR shards (``None`` elsewhere).  Returns
    ``(status, data, stats, complete, steal_reports)`` where
    ``status`` is ``"ok"``, ``"hit"`` (existential query satisfied;
    ``data`` is the witnessing proc path), ``"cancelled"`` (early-exit
    broadcast observed) or ``"capped"`` (a cap raised; ``data`` is the
    message).  Shard tasks are pure: re-running one is always safe.
    """
    ctx = _SHARD_CONTEXT
    prefix, seeds = task
    writer = obs_stream.worker_writer("shard")
    label = f"shard:{ctx.mode}@{'.'.join(map(str, prefix))}" if writer else None
    if writer is not None:
        writer.beat(task=label)
    _fire_shard_failpoint(ctx.failpoints)
    stats = ExplorerStats()
    try:
        if ctx.mode in ("dpor-results", "dpor-race"):
            payload = _dpor_shard(ctx, prefix, seeds, stats)
        elif ctx.mode == "member":
            payload = _member_shard(ctx, prefix, stats)
        elif ctx.mode == "drf0":
            payload = _drf0_shard(ctx, prefix, stats)
        else:
            payload = _results_shard(ctx, prefix, stats)
    except _Cancelled:
        payload = ("cancelled", None, stats, True, ())
    except Exception as exc:  # cap errors travel as data, not exceptions
        from repro.core.sc import ExplorationCapError

        if isinstance(exc, ExplorationCapError):
            payload = ("capped", str(exc), stats, False, ())
        else:
            if writer is not None:
                writer.stall(f"{type(exc).__name__}: {exc}", task=label)
                writer.beat(task=label, force=True)
            raise
    if writer is not None:
        writer.add(shards=1, states=payload[2].states)
        writer.beat(task=label)
    return payload


def _results_shard(ctx: _ShardContext, prefix, stats) -> tuple:
    """Naive enumeration below ``prefix``, folding results (sc mode)."""
    from repro.core.sc import ExplorationCapError

    cfg = ctx.cfg
    engine = make_engine(ctx.program, record_trace=False)
    track_cycles = not engine.straightline
    stop = ctx.stop
    dedup = cfg.dedup
    on_path: Set[object] = set()
    for proc in prefix:
        if track_cycles:
            on_path.add(engine.config_key())
        engine.step(proc)
    results: Set[Result] = set()
    visited: Set[object] = set()
    complete = [True]

    def dfs() -> None:
        runnable = engine.runnable()
        if not runnable:
            stats.executions += 1
            results.add(engine.result())
            return
        if engine.depth >= cfg.max_ops:
            complete[0] = False
            if cfg.allow_incomplete:
                return
            raise ExplorationCapError(
                f"execution exceeded {cfg.max_ops} operations; "
                "the program may spin forever under some schedule",
                states=stats.states,
            )
        cycle_key = None
        if track_cycles or dedup:
            cycle_key = engine.config_key()
        if track_cycles and cycle_key in on_path:
            return
        if dedup:
            key = (cycle_key, engine.reads_key())
            if key in visited:
                return
            visited.add(key)
        stats.states += 1
        if stats.states % _STOP_CHECK_NODES == 0 and stop.is_set():
            raise _Cancelled
        if stats.states > ctx.max_states:
            complete[0] = False
            if cfg.allow_incomplete:
                return
            raise ExplorationCapError(
                f"visited more than {ctx.max_states} configurations",
                states=stats.states,
            )
        if track_cycles:
            on_path.add(cycle_key)
        try:
            for proc in runnable:
                engine.step(proc)
                try:
                    dfs()
                finally:
                    engine.undo()
        finally:
            if track_cycles:
                on_path.remove(cycle_key)

    dfs()
    stats.transitions = engine.transitions
    stats.max_depth = engine.max_depth
    stats.peak_visited = len(visited)
    return ("ok", frozenset(results), stats, complete[0], ())


def _drf0_shard(ctx: _ShardContext, prefix, stats) -> tuple:
    """Exhaustive race search below ``prefix`` (drf0 first-race mode).

    The prefix replay pushes the incremental vector-clock detector so its
    state at the subtree root is exactly what the serial checker would
    hold there; a racy leaf returns the full proc path, from which the
    coordinator replays a recording engine to materialize the witness.
    """
    from repro.core.drf0 import _PathRaceDetector, _lite_op
    from repro.core.sc import ExplorationCapError

    cfg = ctx.cfg
    engine = make_engine(ctx.program, record_trace=False)
    track_cycles = not engine.straightline
    stop = ctx.stop
    detector = _PathRaceDetector(ctx.program.num_procs, ctx.model)
    races = detector.races
    lite_cache: Dict[tuple, object] = {}
    on_path: Set[object] = set()
    path: List[int] = list(prefix)
    for proc in prefix:
        if track_cycles:
            on_path.add(engine.config_key())
        detector.push(_lite_op(engine, proc, lite_cache))
        engine.step(proc)
    if races:
        # The race is entirely inside the prefix: the coordinator's
        # replay will find it at whatever leaf this shard reaches first.
        pass
    complete = [True]
    hit: List[Optional[Tuple[int, ...]]] = [None]

    def dfs() -> bool:
        """Returns True when a racy leaf was found (stop unwinding)."""
        runnable = engine.runnable()
        if not runnable:
            stats.executions += 1
            if races:
                hit[0] = tuple(path)
                return True
            return False
        if engine.depth >= cfg.max_ops:
            complete[0] = False
            if cfg.allow_incomplete:
                return False
            raise ExplorationCapError(
                f"interleaving exceeded {cfg.max_ops} operations",
                states=stats.states,
            )
        key = None
        if track_cycles:
            key = engine.config_key()
            if key in on_path:
                return False
        stats.states += 1
        if stats.states % _STOP_CHECK_NODES == 0 and stop.is_set():
            raise _Cancelled
        if track_cycles:
            on_path.add(key)
        try:
            for proc in runnable:
                op = _lite_op(engine, proc, lite_cache)
                engine.step(proc)
                detector.push(op)
                path.append(proc)
                try:
                    if dfs():
                        return True
                finally:
                    path.pop()
                    detector.pop()
                    engine.undo()
        finally:
            if track_cycles:
                on_path.remove(key)
        return False

    found = dfs()
    stats.transitions = engine.transitions
    stats.max_depth = engine.max_depth
    if found:
        return ("hit", hit[0], stats, complete[0], ())
    return ("ok", None, stats, complete[0], ())


def _member_shard(ctx: _ShardContext, prefix, stats) -> tuple:
    """Guided SC-membership search below ``prefix`` (contract mode)."""
    from repro.core.contract import ContractSearchLimit

    engine = make_engine(ctx.program, record_trace=False)
    stop = ctx.stop
    expected_reads = ctx.expected_reads
    expected_memory = ctx.expected_memory
    expected_counts = tuple(len(r) for r in expected_reads)
    for proc in prefix:
        engine.step(proc)
    visited: Set[object] = set()

    def dfs() -> bool:
        runnable = engine.runnable()
        if not runnable:
            if engine.read_counts() != expected_counts:
                return False
            return engine.final_memory() == expected_memory
        k = (engine.config_key(), engine.read_counts())
        if k in visited:
            return False
        visited.add(k)
        stats.states += 1
        if stats.states % _STOP_CHECK_NODES == 0 and stop.is_set():
            raise _Cancelled
        if stats.states > ctx.max_states:
            raise ContractSearchLimit(
                f"guided SC search exceeded {ctx.max_states} configurations",
                states=stats.states,
            )
        for proc in runnable:
            request = engine.pending(proc)
            if request.kind.has_read:
                pos = len(engine.reads[proc])
                if pos >= len(expected_reads[proc]):
                    continue
                if engine.read_value(request.location) != expected_reads[proc][pos]:
                    continue
            engine.step(proc)
            try:
                if dfs():
                    return True
            finally:
                engine.undo()
        return False

    found = dfs()
    stats.transitions = engine.transitions
    stats.max_depth = engine.max_depth
    stats.peak_visited = len(visited)
    if found:
        return ("hit", None, stats, True, ())
    return ("ok", None, stats, True, ())


def _dpor_shard(ctx: _ShardContext, prefix, seeds, stats) -> tuple:
    """Source-DPOR exploration of the subtree below ``prefix``.

    The replay rebuilds the full happens-before event history (vector
    clocks, last-write/reads-since maps) and race-processes every prefix
    event, so backtrack insertions targeting prefix nodes -- whether the
    race is prefix/prefix or subtree/prefix -- surface as steal reports
    ``(node, initials, preferred)`` for the coordinator to schedule.
    Insertions at subtree depth are handled locally, exactly as serial.

    ``seeds`` (one frozenset per prefix position) lists the siblings the
    coordinator dispatched *before* this shard's choice at each node.
    Serial source-DPOR sleeps a subtree on every already-explored
    sibling; dispatch order is a strict per-node total order, so seeding
    the replayed sleep set with earlier-dispatched siblings is the same
    discipline and keeps overlapping steal subtrees from being explored
    once per shard.  The sleep set is filtered through the same
    dependence rule as serial at every replay step, so the subtree
    root's sleep set is exactly what serial DFS would carry there under
    the dispatch order.
    """
    from repro.core.drf0 import races_in_execution_vc
    from repro.core.dpor import _Event, _StackEntry, _dependent_with_pending
    from repro.core.sc import ExplorationCapError

    cfg = ctx.cfg
    program = ctx.program
    engine = make_engine(program)  # leaves need real executions
    stop = ctx.stop
    nprocs = program.num_procs
    plen = len(prefix)
    race_mode = ctx.mode == "dpor-race"
    model = ctx.model
    use_sleep = cfg.sleep_sets

    events: List[_Event] = []
    proc_last: List[Optional[_Event]] = [None] * nprocs
    last_write: Dict[str, Optional[_Event]] = {}
    reads_since: Dict[str, List[_Event]] = {}
    stack: List[Optional[_StackEntry]] = [None] * plen
    steal_reports: List[tuple] = []
    seen_reports: Set[tuple] = set()
    results: Set[Result] = set()
    path: List[int] = list(prefix)
    hit: List[Optional[Tuple[int, ...]]] = [None]
    complete = [True]

    def make_event(proc: int) -> tuple:
        request = engine.pending(proc)
        loc = request.location
        has_write = request.kind.has_write
        deps: List[_Event] = []
        po_pred = proc_last[proc]
        if po_pred is not None:
            deps.append(po_pred)
        lw = last_write.get(loc)
        if lw is not None and lw is not po_pred:
            deps.append(lw)
        if has_write:
            deps.extend(r for r in reads_since.get(loc, ()) if r.proc != proc)
        if deps:
            clock = list(deps[0].clock)
            for f in deps[1:]:
                fc = f.clock
                for i in range(nprocs):
                    if fc[i] > clock[i]:
                        clock[i] = fc[i]
        else:
            clock = [0] * nprocs
        pidx = (po_pred.pidx if po_pred else 0) + 1
        clock[proc] = pidx
        event = _Event(proc, pidx, tuple(clock), loc, has_write, len(events))
        return event, deps

    def record_event(event: _Event) -> tuple:
        proc = event.proc
        loc = event.location
        events.append(event)
        frame_last = proc_last[proc]
        proc_last[proc] = event
        if event.has_write:
            frame = ("w", loc, last_write.get(loc), reads_since.get(loc))
            last_write[loc] = event
            reads_since[loc] = []
        else:
            frame = ("r", loc)
            reads_since.setdefault(loc, []).append(event)
        return (frame_last, frame)

    def unrecord_event(undo_frame: tuple) -> None:
        event = events.pop()
        frame_last, frame = undo_frame
        proc_last[event.proc] = frame_last
        if frame[0] == "w":
            _, loc, old_lw, old_reads = frame
            last_write[loc] = old_lw
            reads_since[loc] = old_reads if old_reads is not None else []
        else:
            reads_since[frame[1]].pop()

    def hb(e: _Event, f: _Event) -> bool:
        return f.clock[e.proc] >= e.pidx

    def add_backtracks(event: _Event, deps: List[_Event]) -> None:
        for e in deps:
            if e.proc == event.proc:
                continue
            if any(f is not e and hb(e, f) for f in deps):
                continue
            v = [f for f in events[e.index + 1 : -1] if not hb(e, f)]
            v.append(event)
            first: Dict[int, _Event] = {}
            for f in v:
                if f.proc not in first:
                    first[f.proc] = f
            initials = frozenset(
                q
                for q, fq in first.items()
                if not any(g is not fq and hb(g, fq) for g in v)
            )
            preferred = event.proc if event.proc in initials else min(initials)
            if e.index < plen:
                # The target node belongs to the coordinator's top tree:
                # report the full initials so the coordinator can apply
                # the serial skip rule against its global backtrack sets.
                node = tuple(prefix[: e.index])
                report = (node, initials)
                if report in seen_reports:
                    continue
                seen_reports.add(report)
                steal_reports.append((node, initials, preferred))
            else:
                entry = stack[e.index]
                if initials & entry.backtrack:
                    continue
                entry.backtrack.add(preferred)

    # Replay: rebuild the event history and race-process prefix events,
    # reconstructing the sleep set serial DFS would carry down this
    # path.  If the shard's own choice is already sleeping at some node,
    # an earlier-dispatched sibling covers the entire subtree: still
    # race-process the prefix (extra steal reports are sound -- the
    # coordinator's skip rule dedups them) but cut the subtree.
    sleep: Set[int] = set()
    redundant = False
    for i, proc in enumerate(prefix):
        if use_sleep and seeds is not None:
            sleeping = sleep | set(seeds[i])
            if proc in sleeping:
                redundant = True
            sleeping.discard(proc)
        else:
            sleeping = set()
        event, deps = make_event(proc)
        op = engine.step(proc)
        record_event(event)
        add_backtracks(event, deps)
        if use_sleep:
            sleep = {
                q
                for q in sleeping
                if not _dependent_with_pending(op, q, engine.pending(q))
            }

    def explore(sleep: Set[int]) -> bool:
        """Returns True on an early hit (race mode)."""
        enabled = engine.runnable()
        if not enabled:
            stats.executions += 1
            execution = engine.execution()
            if race_mode:
                if races_in_execution_vc(execution, model):
                    hit[0] = tuple(path)
                    return True
            else:
                results.add(execution.result())
            return False
        if engine.depth >= cfg.max_ops:
            if cfg.allow_incomplete:
                complete[0] = False
                return False
            raise ExplorationCapError(
                f"DPOR execution exceeded {cfg.max_ops} operations; use the "
                "naive explorer for programs with spin loops",
                states=stats.states,
            )
        awake = [p for p in enabled if p not in sleep] if use_sleep else enabled
        if not awake:
            stats.sleep_cuts += 1
            return False
        stats.states += 1
        if stats.states % _STOP_CHECK_NODES == 0 and stop.is_set():
            raise _Cancelled
        entry = _StackEntry(proc=-1, op=None, backtrack={min(awake)})
        stack.append(entry)
        sleeping = set(sleep) if use_sleep else set()
        try:
            while True:
                choice = None
                for p in sorted(entry.backtrack):
                    if p not in entry.done and p not in sleeping:
                        choice = p
                        break
                if choice is None:
                    break
                entry.done.add(choice)
                event, deps = make_event(choice)
                op = engine.step(choice)
                entry.proc = choice
                entry.op = op
                undo_frame = record_event(event)
                path.append(choice)
                try:
                    add_backtracks(event, deps)
                    if use_sleep:
                        child_sleep = {
                            q
                            for q in sleeping
                            if not _dependent_with_pending(
                                op, q, engine.pending(q)
                            )
                        }
                    else:
                        child_sleep = sleeping
                    if explore(child_sleep):
                        return True
                finally:
                    path.pop()
                    unrecord_event(undo_frame)
                    engine.undo()
                if use_sleep:
                    sleeping.add(choice)
            stats.sleep_cuts += len(entry.backtrack - entry.done)
        finally:
            stack.pop()
        return False

    if redundant:
        stats.sleep_cuts += 1
        found = False
    else:
        found = explore(sleep)
    stats.transitions = engine.transitions
    stats.max_depth = engine.max_depth
    steals = tuple(steal_reports)
    if race_mode:
        if found:
            return ("hit", hit[0], stats, complete[0], steals)
        return ("ok", None, stats, complete[0], steals)
    return ("ok", frozenset(results), stats, complete[0], steals)


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


class _Coordinator:
    """Phase 1-3 driver for one sharded exploration."""

    def __init__(
        self,
        program: Program,
        cfg,
        jobs: int,
        mode: str,
        model: Optional[SynchronizationModel] = None,
        expected_reads=None,
        expected_memory=None,
        max_states: Optional[int] = None,
        failpoints: Sequence[object] = (),
        shard_stats: Optional[ShardStats] = None,
    ) -> None:
        self.program = program
        self.cfg = cfg
        self.jobs = max(1, jobs)
        self.mode = mode
        self.model = model
        self.expected_reads = expected_reads
        self.expected_memory = expected_memory
        self.max_states = (
            max_states if max_states is not None else cfg.max_states
        )
        self.failpoints = tuple(failpoints or ())
        self.sstats = shard_stats if shard_stats is not None else ShardStats()
        self.stats = ExplorerStats()  # coordinator-side (phase-1) counters
        self.engine = make_engine(program, record_trace=False)
        self.target = max(2, self.jobs * _SHARD_FACTOR)
        self.prefix_depth = max(2, min(cfg.max_ops - 1, _DPOR_PREFIX_DEPTH))
        self.pending: deque = deque()
        self.dispatched: Set[Tuple[int, ...]] = set()
        self.nodes: Dict[Tuple[int, ...], Set[int]] = {}  # DPOR top tree
        #: Dispatch order of the choices at each top-tree node.  A shard
        #: sleeps on its earlier-dispatched siblings (the serial sleep
        #: discipline, with dispatch order standing in for exploration
        #: order), so overlapping subtrees are explored once, not once
        #: per steal.
        self.order: Dict[Tuple[int, ...], List[int]] = {}
        self.results: Set[Result] = set()
        self.hit = False
        self.hit_path: Optional[Tuple[int, ...]] = None
        self.complete = True
        self.capped_msg: Optional[str] = None

    # -- phase 1: frontier enumeration ---------------------------------

    def _replay(self, path: Tuple[int, ...], track_cycles: bool):
        """Reset the coordinator engine to ``path``; returns on-path keys."""
        eng = self.engine
        eng.reset()
        on_path: Set[object] = set()
        for proc in path:
            if track_cycles:
                on_path.add(eng.config_key())
            eng.step(proc)
        return on_path

    def _guided_children(self) -> List[int]:
        """Runnable procs filtered by the observed read histories."""
        eng = self.engine
        out = []
        for proc in eng.runnable():
            request = eng.pending(proc)
            if request.kind.has_read:
                pos = len(eng.reads[proc])
                if pos >= len(self.expected_reads[proc]):
                    continue
                if (
                    eng.read_value(request.location)
                    != self.expected_reads[proc][pos]
                ):
                    continue
            out.append(proc)
        return out

    def _phase1_naive(self) -> None:
        """BFS prefixes down to the work-budget frontier.

        Interior nodes replicate the serial node semantics (cycle
        pruning, interned-key dedup, cap accounting); every surviving
        frontier node -- including complete leaves, which a worker folds
        -- becomes one shard.
        """
        eng = self.engine
        guided = self.mode == "member"
        # The guided membership search has *no* livelock-cycle pruning:
        # a spin iteration revisits its configuration while consuming
        # observed reads, so an on-path cut would sever exactly the
        # paths a pumped read history needs.  Termination comes from the
        # read-position dedup key instead, as in the serial search.
        track_cycles = not eng.straightline and not guided
        dedup = guided or (self.mode == "results" and self.cfg.dedup)
        visited: Set[object] = set()

        def node_key(cycle_key):
            if guided:
                return (cycle_key, eng.read_counts())
            return (cycle_key, eng.reads_key())

        level: List[Tuple[int, ...]] = [()]
        depth = 0
        while level:
            if (
                len(level) + len(self.pending) >= self.target
                or depth >= min(self.cfg.max_ops, _MAX_FRONTIER_DEPTH)
            ):
                for path in level:
                    self._queue_frontier(
                        path, track_cycles, dedup, guided, visited, node_key
                    )
                return
            nxt: List[Tuple[int, ...]] = []
            for path in level:
                on_path = self._replay(path, track_cycles)
                children = (
                    self._guided_children() if guided else eng.runnable()
                )
                if not children:
                    # A leaf (or a guided dead end, which a worker
                    # rediscovers for free): dispatch as a trivial shard.
                    self._queue_shard(path)
                    continue
                cycle_key = None
                if track_cycles or dedup:
                    cycle_key = eng.config_key()
                if track_cycles and cycle_key in on_path:
                    continue  # livelock cycle: pruned, exactly as serial
                if dedup:
                    key = node_key(cycle_key)
                    if key in visited:
                        continue
                    visited.add(key)
                self.stats.states += 1
                nxt.extend(path + (p,) for p in children)
            level = nxt
            depth += 1

    def _queue_frontier(
        self, path, track_cycles, dedup, guided, visited, node_key
    ) -> None:
        """Cycle/dedup-check a frontier node, then dispatch it."""
        eng = self.engine
        on_path = self._replay(path, track_cycles)
        if track_cycles or dedup:
            cycle_key = eng.config_key()
            if track_cycles and cycle_key in on_path:
                return
            if dedup:
                key = node_key(cycle_key)
                if key in visited:
                    return  # an identical packed configuration is already a shard
                visited.add(key)
        self._queue_shard(path)

    def _grow_dpor(self, start: Tuple[int, ...]) -> None:
        """Extend the DPOR top tree below ``start`` with the minimum
        *awake* enabled choice, dispatching one chain shard at the
        prefix depth (or wherever the chain ends -- the worker still
        race-processes the whole prefix).

        The chain replay reconstructs the sleep set the shard's worker
        will derive from the dispatch order.  Serial seeds a node's
        backtrack set with the first awake proc; descending through a
        *sleeping* proc instead would make the worker cut the subtree
        as redundant with no other shard covering its awake siblings.
        When every enabled proc sleeps, the chain stops early: the
        dispatched shard replays the same prefix, race-processes it for
        steal reports, and re-derives the same sleep cut.
        """
        use_sleep = self.cfg.sleep_sets
        eng = getattr(self, "_dpor_engine", None)
        if eng is None:
            # The shared coordinator engine is trace-free; the sleep
            # filter needs executed ops, so DPOR growth records.
            eng = self._dpor_engine = make_engine(self.program)
        eng.reset()
        sleep: Set[int] = set()
        v: Tuple[int, ...] = ()
        for proc in start:
            sleep = self._step_with_sleep(eng, v, proc, sleep, use_sleep)
            v = v + (proc,)
        while len(v) < self.prefix_depth:
            enabled = eng.runnable()
            if not enabled:
                break
            awake = [p for p in enabled if p not in sleep]
            if not awake:
                break
            q = min(awake)
            self._schedule_choice(v, q)
            sleep = self._step_with_sleep(eng, v, q, sleep, use_sleep)
            v = v + (q,)
        self.nodes.setdefault(v, set())
        self._queue_shard(v)

    def _step_with_sleep(
        self, eng, node, proc, sleep: Set[int], use_sleep: bool
    ) -> Set[int]:
        """Step ``proc``, folding earlier-dispatched siblings into the
        sleep set and filtering by dependence -- the serial discipline,
        mirrored byte-for-byte by the shard worker's prefix replay."""
        from repro.core.dpor import _dependent_with_pending

        if not use_sleep:
            eng.step(proc)
            return sleep
        order = self.order.get(node, ())
        try:
            position = order.index(proc)
        except ValueError:
            sleeping = set(sleep)
        else:
            sleeping = sleep | set(order[:position])
        sleeping.discard(proc)
        op = eng.step(proc)
        return {
            q
            for q in sleeping
            if not _dependent_with_pending(op, q, eng.pending(q))
        }

    def _schedule_choice(self, node: Tuple[int, ...], choice: int) -> None:
        """Record ``choice`` at ``node``, fixing its dispatch position."""
        scheduled = self.nodes.setdefault(node, set())
        if choice not in scheduled:
            scheduled.add(choice)
            self.order.setdefault(node, []).append(choice)

    def _sleep_seeds(
        self, prefix: Tuple[int, ...]
    ) -> Optional[Tuple[FrozenSet[int], ...]]:
        """Earlier-dispatched siblings at every prefix node.

        The worker replays the prefix folding these in exactly as the
        serial explorer folds already-explored siblings into its sleep
        set, so a steal shard skips the subtrees its predecessors
        already cover instead of re-exploring them.
        """
        if not (
            self.mode in ("dpor-results", "dpor-race")
            and self.cfg.sleep_sets
        ):
            return None
        seeds = []
        for i in range(len(prefix)):
            order = self.order.get(prefix[:i], ())
            try:
                position = order.index(prefix[i])
            except ValueError:
                seeds.append(frozenset())
            else:
                seeds.append(frozenset(order[:position]))
        return tuple(seeds)

    def _queue_shard(self, prefix: Tuple[int, ...]) -> None:
        if prefix in self.dispatched:
            return  # seen-key dedup: no subtree runs twice
        self.dispatched.add(prefix)
        self.pending.append((prefix, self._sleep_seeds(prefix)))

    # -- phase 3: merging ----------------------------------------------

    def _take_steals(self, steals) -> None:
        for node, initials, preferred in steals:
            self.sstats.steal_reports += 1
            scheduled = self.nodes.setdefault(node, set())
            if initials & scheduled:
                continue  # an equivalent first mover is already scheduled
            self._schedule_choice(node, preferred)
            self.sstats.steals += 1
            self._grow_dpor(node + (preferred,))

    def _fold(self, prefix, payload) -> None:
        status, data, stats, complete, steals = payload
        self.stats.merge(stats)
        self.sstats.observe_shard(stats.states)
        if steals:
            self._take_steals(steals)
        if status == "cancelled":
            self.sstats.cancelled += 1
            return
        if status == "capped":
            self.capped_msg = data
            self.complete = False
            return
        if not complete:
            self.complete = False
        if status == "hit":
            self.hit = True
            if self.hit_path is None:
                self.hit_path = data
        elif data is not None:
            self.results |= data

    def _fire_coordinator_failpoint(self) -> None:
        """Parent-side failpoints (KeyboardInterrupt hygiene tests)."""
        for fp in self.failpoints:
            if getattr(fp, "task_kind", None) != "coordinator":
                continue
            try:
                fd = os.open(
                    fp.token_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                continue
            os.close(fd)
            if fp.mode == "interrupt":
                raise KeyboardInterrupt
            raise RuntimeError(f"injected {fp.mode} failpoint (coordinator)")

    # -- phase 2: dispatch ---------------------------------------------

    def _run_in_parent(self, task) -> tuple:
        """Degraded execution of a repeatedly-lost shard.

        ``_SHARD_CONTEXT`` is already published in the parent (it must be
        set before the fork), and worker-kind failpoints refuse to fire
        outside forked workers, so this is safe and failure-free modulo
        genuine cap errors.
        """
        return _run_shard(task)

    def run(self) -> None:
        global _SHARD_CONTEXT, LAST_SHARD_STATS
        dpor = self.mode in ("dpor-results", "dpor-race")
        if dpor:
            self._grow_dpor(())
        else:
            self._phase1_naive()
        self.sstats.explorations += 1
        self.sstats.frontier += len(self.pending)

        ctx = multiprocessing.get_context("fork")
        stop = ctx.Event()
        worker_cfg = replace(self.cfg, tracer=None, explore_jobs=1)
        _SHARD_CONTEXT = _ShardContext(
            self.program,
            worker_cfg,
            self.mode,
            self.model,
            self.expected_reads,
            self.expected_memory,
            self.max_states,
            stop,
            self.failpoints,
        )
        pool = ctx.Pool(processes=self.jobs)
        inflight: Dict[int, list] = {}
        next_id = 0
        stop_at: Optional[float] = None
        try:
            while self.pending or inflight:
                while (
                    self.pending
                    and len(inflight) < self.jobs * 2
                    and stop_at is None
                ):
                    task = self.pending.popleft()
                    handle = pool.apply_async(_run_shard, (task,))
                    inflight[next_id] = [task, handle, 0]
                    next_id += 1
                    self.sstats.shards += 1
                if not inflight:
                    continue
                obs_stream.parent_poll()
                done = [i for i, rec in inflight.items() if rec[1].ready()]
                if not done:
                    self._check_workers(pool, inflight)
                    time.sleep(0.002)
                    continue
                for i in done:
                    task, handle, _retries = inflight.pop(i)
                    try:
                        payload = handle.get()
                    except Exception:
                        # An injected task error (or an unpicklable
                        # result): the shard is pure, so redo it here.
                        payload = self._run_in_parent(task)
                    self._fold(task, payload)
                    self._fire_coordinator_failpoint()
                if stop_at is None and self._should_stop():
                    stop.set()
                    stop_at = time.monotonic()
                    self.pending.clear()
            if stop_at is not None:
                self.sstats.cancel_latency_us = int(
                    (time.monotonic() - stop_at) * 1e6
                )
        finally:
            stop.set()
            pool.terminate()
            pool.join()
            _SHARD_CONTEXT = None
        LAST_SHARD_STATS = self.sstats

    def _should_stop(self) -> bool:
        if self.hit or self.capped_msg is not None:
            return True
        if self.mode in ("results", "member") and (
            self.stats.states > self.max_states
        ):
            if not self.cfg_allows_incomplete():
                self.capped_msg = (
                    f"visited more than {self.max_states} configurations "
                    "across shards"
                )
            self.complete = False
            return True
        return False

    def cfg_allows_incomplete(self) -> bool:
        if self.mode == "member":
            return False  # the guided search has no allow_incomplete mode
        return bool(self.cfg.allow_incomplete)

    def _check_workers(self, pool, inflight) -> None:
        """Detect worker deaths; resubmit in-flight shards (they are pure)."""
        pids = {p.pid for p in pool._pool}
        known = getattr(self, "_worker_pids", None)
        if known is None:
            self._worker_pids = pids
            return
        if pids == known:
            return
        self._worker_pids = pids
        for rec in inflight.values():
            if rec[1].ready():
                continue
            task, _old, retries = rec
            if retries >= 2:
                rec[1] = _ImmediateResult(self._run_in_parent(task))
            else:
                rec[1] = pool.apply_async(_run_shard, (task,))
            rec[2] = retries + 1
            self.sstats.resubmitted += 1

    def raise_if_capped(self, error_cls) -> None:
        if self.capped_msg is None:
            return
        if self.cfg_allows_incomplete():
            return
        raise error_cls(
            self.capped_msg,
            states=self.stats.states,
            frontier=self.sstats.frontier,
            shards=self.sstats.shards,
        )


class _ImmediateResult:
    """AsyncResult shim for shards degraded to in-parent execution."""

    def __init__(self, value):
        self._value = value

    def ready(self) -> bool:
        return True

    def get(self):
        return self._value


# ---------------------------------------------------------------------------
# Public entry points (one per serial caller)
# ---------------------------------------------------------------------------


def parallel_explore(
    program: Program,
    cfg,
    jobs: int,
    failpoints: Sequence[object] = (),
    shard_stats: Optional[ShardStats] = None,
):
    """Sharded counterpart of :func:`repro.core.sc.explore` for
    result-set-only configurations.  Returns an ``Exploration`` whose
    result set is bit-identical to the serial one."""
    from repro.core.sc import Exploration, ExplorationCapError

    coord = _Coordinator(
        program,
        cfg,
        jobs,
        "results",
        failpoints=failpoints,
        shard_stats=shard_stats,
    )
    coord.run()
    coord.raise_if_capped(ExplorationCapError)
    stats = coord.stats
    stats.peak_visited = max(stats.peak_visited, len(coord.results))
    return Exploration(
        program=program,
        executions=[],
        results=coord.results,
        complete=coord.complete,
        states_visited=stats.states,
        stats=stats,
    )


def parallel_check_program(
    program: Program,
    model: SynchronizationModel,
    cfg,
    jobs: int,
    failpoints: Sequence[object] = (),
    shard_stats: Optional[ShardStats] = None,
):
    """Sharded counterpart of :func:`repro.core.drf0.check_program`.

    The ``obeys`` verdict is bit-identical to serial.  A racy program's
    witness is whichever shard hit first (re-validated here by replaying
    the winning path on a recording engine); the serial checker's witness
    is the DFS-first racy execution, so witness *identity* across the two
    paths is not guaranteed -- witness *validity* is.
    """
    from repro.core.drf0 import (
        DRF0Report,
        _replay_execution,
        races_in_execution_vc,
    )
    from repro.core.sc import ExplorationCapError

    coord = _Coordinator(
        program,
        cfg,
        jobs,
        "drf0",
        model=model,
        failpoints=failpoints,
        shard_stats=shard_stats,
    )
    coord.run()
    coord.raise_if_capped(ExplorationCapError)
    stats = coord.stats
    if coord.hit:
        witness = _replay_execution(program, coord.hit_path)
        races = races_in_execution_vc(witness, model)
        return DRF0Report(
            program=program,
            model_name=model.name,
            obeys=False,
            executions_checked=stats.executions,
            race=races[0],
            witness=witness,
            stats=stats,
        )
    return DRF0Report(
        program=program,
        model_name=model.name,
        obeys=True,
        executions_checked=stats.executions,
        complete=coord.complete,
        stats=stats,
    )


def parallel_check_program_dpor(
    program: Program,
    model: SynchronizationModel,
    cfg,
    jobs: int,
    failpoints: Sequence[object] = (),
    shard_stats: Optional[ShardStats] = None,
):
    """Sharded counterpart of :func:`repro.core.dpor.check_program_dpor`."""
    from repro.core.drf0 import (
        DRF0Report,
        _replay_execution,
        races_in_execution_vc,
    )
    from repro.core.sc import ExplorationCapError

    coord = _Coordinator(
        program,
        cfg,
        jobs,
        "dpor-race",
        model=model,
        failpoints=failpoints,
        shard_stats=shard_stats,
    )
    coord.run()
    coord.raise_if_capped(ExplorationCapError)
    stats = coord.stats
    if coord.hit:
        witness = _replay_execution(program, coord.hit_path)
        races = races_in_execution_vc(witness, model)
        return DRF0Report(
            program=program,
            model_name=model.name,
            obeys=False,
            executions_checked=stats.executions,
            race=races[0],
            witness=witness,
            stats=stats,
        )
    return DRF0Report(
        program=program,
        model_name=model.name,
        obeys=True,
        executions_checked=stats.executions,
        complete=coord.complete,
        stats=stats,
    )


def parallel_sc_results_dpor(
    program: Program,
    cfg,
    jobs: int,
    failpoints: Sequence[object] = (),
    shard_stats: Optional[ShardStats] = None,
) -> FrozenSet[Result]:
    """Sharded counterpart of :func:`repro.core.dpor.sc_results_dpor`."""
    from repro.core.sc import ExplorationCapError

    coord = _Coordinator(
        program,
        cfg,
        jobs,
        "dpor-results",
        model=DRF0_MODEL,
        failpoints=failpoints,
        shard_stats=shard_stats,
    )
    coord.run()
    coord.raise_if_capped(ExplorationCapError)
    return frozenset(coord.results)


def parallel_is_sc_result(
    program: Program,
    expected_reads,
    expected_memory,
    max_states: int,
    jobs: int,
    stats: Optional[ExplorerStats] = None,
    failpoints: Sequence[object] = (),
    shard_stats: Optional[ShardStats] = None,
) -> bool:
    """Sharded counterpart of the guided membership search in
    :func:`repro.core.contract.is_sc_result` (pre-validated inputs)."""
    from repro.core.contract import ContractSearchLimit
    from repro.core.sc import ExplorationConfig

    cfg = ExplorationConfig(max_states=max_states)
    coord = _Coordinator(
        program,
        cfg,
        jobs,
        "member",
        expected_reads=expected_reads,
        expected_memory=expected_memory,
        max_states=max_states,
        failpoints=failpoints,
        shard_stats=shard_stats,
    )
    coord.run()
    coord.raise_if_capped(ContractSearchLimit)
    if stats is not None:
        stats.states += coord.stats.states
        stats.transitions += coord.stats.transitions
        stats.max_depth = max(stats.max_depth, coord.stats.max_depth)
        stats.peak_visited = max(
            stats.peak_visited, coord.stats.peak_visited
        )
    return coord.hit
