"""The Definition-2 contract: "appears sequentially consistent".

Definition 2 of the paper: *hardware is weakly ordered with respect to a
synchronization model if and only if it appears sequentially consistent to
all software that obey the synchronization model.*

The operational question is therefore: given a result observed on some
hardware (here: the discrete-event simulator), is it the result of *some*
execution of the idealized architecture?  For loop-free programs one can
enumerate the full SC result set, but programs with synchronization spin
loops have unboundedly many SC results (every spin count is a distinct
read history).  This module instead implements a *guided membership
search*: an interleaving search in which a processor may complete a read
only if the value it would return matches the next value in that
processor's observed read history.

The guided search always terminates: a thread's control path is a
deterministic function of the values its reads return, and the observed
history bounds the number of reads, so each thread can execute only a fixed
finite instruction sequence.  Configurations are deduplicated on
(thread states, memory, read positions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.compile import make_engine
from repro.core.engine_state import ExplorerStats
from repro.core.execution import Result
from repro.core.sc import ExplorationCapError
from repro.machine.program import Program


class ContractSearchLimit(ExplorationCapError):
    """Raised when the guided membership search exceeds its state budget.

    Subclasses :class:`~repro.core.sc.ExplorationCapError`, so it carries
    the same states/frontier/shards snapshot when raised from a sharded
    search.
    """


def is_sc_result(
    program: Program,
    result: Result,
    max_states: int = 2_000_000,
    stats: Optional[ExplorerStats] = None,
    explore_jobs: int = 1,
) -> bool:
    """True iff ``result`` is the result of some idealized execution.

    This is the membership test behind "appears sequentially consistent":
    an interleaving search guided by the observed per-processor read
    histories.  Read operations may only complete with the observed value;
    the search succeeds when all threads halt having consumed their entire
    read history and the final memory matches.

    The search runs on the in-place do/undo transition engine
    (:class:`~repro.core.engine_state.EngineState`); pass ``stats`` to
    accumulate its exploration counters.  ``explore_jobs > 1`` (or ``0``
    = all cores) shards the search across a fork pool with an early-exit
    broadcast on the first hit (:mod:`repro.core.parallel`).
    """
    if len(result.reads) != program.num_procs:
        return False
    expected_reads = [tuple(values) for values in result.reads]
    if set(dict(result.final_memory)) != set(program.initial_memory):
        return False
    expected_memory = tuple(sorted(result.final_memory))

    if explore_jobs != 1:
        from repro.core import parallel

        jobs = parallel.resolve_jobs(explore_jobs)
        if jobs > 1 and parallel.can_fork():
            return parallel.parallel_is_sc_result(
                program,
                expected_reads,
                expected_memory,
                max_states,
                jobs,
                stats=stats,
            )

    # The guided search never reads the trace: skip recording it.
    engine = make_engine(program, record_trace=False)
    visited: Set[object] = set()
    states = 0

    def dfs() -> bool:
        nonlocal states
        runnable = engine.runnable()
        if not runnable:
            if engine.read_counts() != tuple(len(r) for r in expected_reads):
                return False
            return engine.final_memory() == expected_memory
        k = (engine.config_key(), engine.read_counts())
        if k in visited:
            return False
        visited.add(k)
        states += 1
        if states > max_states:
            raise ContractSearchLimit(
                f"guided SC search exceeded {max_states} configurations",
                states=states,
            )
        for proc in runnable:
            request = engine.pending(proc)
            assert request is not None
            if request.kind.has_read:
                pos = len(engine.reads[proc])
                if pos >= len(expected_reads[proc]):
                    continue  # observed history exhausted; branch impossible
                if engine.read_value(request.location) != expected_reads[proc][pos]:
                    continue  # would read a value the hardware never returned
            engine.step(proc)
            try:
                if dfs():
                    return True
            finally:
                engine.undo()
        return False

    found = dfs()
    if stats is not None:
        stats.states += states
        stats.transitions += engine.transitions
        stats.max_depth = max(stats.max_depth, engine.max_depth)
        stats.peak_visited = max(stats.peak_visited, len(visited))
    return found


@dataclass
class ContractReport:
    """Verdict of an appears-sequentially-consistent check.

    Attributes:
        program: The program checked.
        appears_sc: True when every observed result is an SC result.
        results_checked: How many distinct observed results were tested.
        violations: Observed results with no idealized execution.
    """

    program: Program
    appears_sc: bool
    results_checked: int
    violations: List[Result] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.appears_sc


def appears_sc(
    program: Program,
    observed_results: Iterable[Result],
    max_states: int = 2_000_000,
) -> ContractReport:
    """Check a batch of observed hardware results against the SC oracle."""
    violations: List[Result] = []
    seen: Set[Result] = set()
    for result in observed_results:
        if result in seen:
            continue
        seen.add(result)
        if not is_sc_result(program, result, max_states=max_states):
            violations.append(result)
    return ContractReport(
        program=program,
        appears_sc=not violations,
        results_checked=len(seen),
        violations=violations,
    )


@dataclass
class WeakOrderingVerdict:
    """Definition-2 verdict for one (program, hardware) pair.

    Definition 2 only obliges the hardware when the program obeys the
    synchronization model; ``program_obeys_model`` records that premise so a
    racy program's non-SC results are reported as *permitted*, not as a
    contract violation.
    """

    program: Program
    program_obeys_model: bool
    contract: ContractReport

    @property
    def hardware_ok(self) -> bool:
        """True unless a model-obeying program observed a non-SC result."""
        if not self.program_obeys_model:
            return True
        return self.contract.appears_sc


def check_weak_ordering(
    program: Program,
    program_obeys_model: bool,
    observed_results: Iterable[Result],
    max_states: int = 2_000_000,
) -> WeakOrderingVerdict:
    """Assemble the Definition-2 verdict from its two proof obligations."""
    report = appears_sc(program, observed_results, max_states=max_states)
    return WeakOrderingVerdict(
        program=program,
        program_obeys_model=program_obeys_model,
        contract=report,
    )
