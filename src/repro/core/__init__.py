"""Formal core: operations, relations, SC enumeration, DRF0, the contract."""

from repro.core.contract import (
    ContractReport,
    WeakOrderingVerdict,
    appears_sc,
    check_weak_ordering,
    is_sc_result,
)
from repro.core.dpor import (
    check_program_dpor,
    explore_dpor,
    iter_dpor_executions,
    sc_results_dpor,
)
from repro.core.compile import (
    CompiledEngine,
    compiled_enabled,
    compiled_program,
    interpreted_engine,
    make_engine,
    use_compiled,
)
from repro.core.engine_state import EngineState, ExplorerStats
from repro.core.drf0 import (
    DRF0Report,
    Race,
    check_program,
    check_program_sampled,
    obeys_drf0,
    races_in_execution,
    races_in_execution_vc,
)
from repro.core.execution import Execution, Result
from repro.core.models import DRF0_MODEL, DRF1_MODEL, DRF0, DRF1, SynchronizationModel
from repro.core.ops import Operation, conflicts
from repro.core.parallel import ShardStats, can_fork, resolve_jobs
from repro.core.relations import (
    Relation,
    happens_before,
    program_order,
    synchronization_order,
)
from repro.core.sc import (
    Exploration,
    ExplorationCapError,
    ExplorationConfig,
    ExplorationIncomplete,
    explore,
    random_sc_execution,
    sc_executions,
    sc_results,
)
from repro.core.types import Condition, Location, OpKind, ProcId, Value

__all__ = [
    "Condition",
    "ContractReport",
    "DRF0",
    "DRF0Report",
    "DRF0_MODEL",
    "DRF1",
    "DRF1_MODEL",
    "CompiledEngine",
    "EngineState",
    "Execution",
    "Exploration",
    "ExplorationCapError",
    "ExplorationConfig",
    "ExplorationIncomplete",
    "ExplorerStats",
    "ShardStats",
    "can_fork",
    "resolve_jobs",
    "compiled_enabled",
    "compiled_program",
    "interpreted_engine",
    "make_engine",
    "use_compiled",
    "Location",
    "OpKind",
    "Operation",
    "ProcId",
    "Race",
    "Relation",
    "Result",
    "SynchronizationModel",
    "Value",
    "WeakOrderingVerdict",
    "appears_sc",
    "check_program",
    "check_program_dpor",
    "check_program_sampled",
    "check_weak_ordering",
    "conflicts",
    "explore",
    "explore_dpor",
    "iter_dpor_executions",
    "sc_results_dpor",
    "happens_before",
    "is_sc_result",
    "obeys_drf0",
    "program_order",
    "races_in_execution",
    "races_in_execution_vc",
    "random_sc_execution",
    "sc_executions",
    "sc_results",
    "synchronization_order",
]
