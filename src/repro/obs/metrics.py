"""The metrics registry: named counters / histograms / timers.

The repo grew several ad-hoc stats surfaces -- ``ProcessorStats`` on the
simulator side, ``ExplorerStats`` on the idealized-architecture side,
cache/directory dicts in ``MachineRun`` -- each with its own merge and
as-dict conventions.  :class:`MetricsRegistry` is the common surface: a
flat namespace of metrics aggregated into one **stable** dict (sorted
names, deterministic field order) that the CLI serializes with
``--metrics-json``.

The existing dataclasses stay exactly what they were -- cheap, typed
accumulators on hot paths -- and become *views*: the ``*_metrics``
helpers below fold them into a registry under stable names
(``sim.p0.stall.gate:sync-gp``, ``explorer.states``, ...), so every
command reports through one schema without the hot paths paying for a
dict-keyed lookup per increment.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids import cycles
    from repro.core.engine_state import ExplorerStats
    from repro.sim.system import MachineRun


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Histogram:
    """Summary statistics over observed values (count/total/min/max)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }


class Timer(Histogram):
    """A histogram of elapsed seconds with a context-manager sampler."""

    __slots__ = ()

    @contextmanager
    def time(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)


class MetricsRegistry:
    """Get-or-create registry of named metrics with a stable dict form."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    def timer(self, name: str) -> Timer:
        metric = self._timers.get(name)
        if metric is None:
            metric = self._timers[name] = Timer()
        return metric

    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry's metrics into this one."""
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, histogram in other._histograms.items():
            mine = self.histogram(name)
            mine.count += histogram.count
            mine.total += histogram.total
            for bound in (histogram.min, histogram.max):
                if bound is None:
                    continue
                if mine.min is None or bound < mine.min:
                    mine.min = bound
                if mine.max is None or bound > mine.max:
                    mine.max = bound
        for name, timer in other._timers.items():
            mine_t = self.timer(name)
            mine_t.count += timer.count
            mine_t.total += timer.total
            for bound in (timer.min, timer.max):
                if bound is None:
                    continue
                if mine_t.min is None or bound < mine_t.min:
                    mine_t.min = bound
                if mine_t.max is None or bound > mine_t.max:
                    mine_t.max = bound

    def as_dict(self) -> Dict[str, object]:
        """Stable (sorted-name) nested dict for JSON serialization."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
            "timers": {
                name: self._timers[name].as_dict()
                for name in sorted(self._timers)
            },
        }


# ----------------------------------------------------------------------
# Views over the existing stats dataclasses
# ----------------------------------------------------------------------


def run_metrics(
    run: "MachineRun",
    registry: Optional[MetricsRegistry] = None,
    prefix: str = "sim",
) -> MetricsRegistry:
    """Fold one :class:`~repro.sim.system.MachineRun` into a registry.

    ``ProcessorStats`` (including the per-cause stall buckets), cache and
    directory stats, cycles and traffic all land under ``prefix``.
    """
    registry = registry if registry is not None else MetricsRegistry()
    registry.counter(f"{prefix}.runs").inc()
    registry.histogram(f"{prefix}.cycles").observe(run.cycles)
    registry.counter(f"{prefix}.messages").inc(run.messages_sent)
    for proc, stats in enumerate(run.proc_stats):
        base = f"{prefix}.p{proc}"
        registry.counter(f"{base}.accesses").inc(stats.accesses_generated)
        registry.counter(f"{base}.local_instructions").inc(
            stats.local_instructions
        )
        registry.counter(f"{base}.gate_stall_cycles").inc(
            stats.gate_stall_cycles
        )
        registry.counter(f"{base}.block_stall_cycles").inc(
            stats.block_stall_cycles
        )
        for cause, cycles in sorted(stats.stall_by_cause.items()):
            registry.counter(f"{base}.stall.{cause}").inc(cycles)
    for proc, cache in enumerate(run.cache_stats):
        base = f"{prefix}.p{proc}.cache"
        for key, value in sorted(cache.items()):
            registry.counter(f"{base}.{key}").inc(value)
    for key, value in sorted(run.directory_stats.items()):
        registry.counter(f"{prefix}.directory.{key}").inc(value)
    return registry


def explorer_metrics(
    stats: "ExplorerStats",
    registry: Optional[MetricsRegistry] = None,
    prefix: str = "explorer",
) -> MetricsRegistry:
    """Fold an :class:`~repro.core.engine_state.ExplorerStats` into a registry."""
    registry = registry if registry is not None else MetricsRegistry()
    for name, value in stats.as_dict().items():
        registry.counter(f"{prefix}.{name}").inc(value)
    return registry


def shard_metrics(
    stats,
    registry: Optional[MetricsRegistry] = None,
    prefix: str = "explore",
) -> MetricsRegistry:
    """Fold a :class:`~repro.core.parallel.ShardStats` into a registry.

    Surfaces the intra-cell sharding counters: shard count and balance
    (min/max/total states explored per shard), the prefix-frontier size,
    DPOR steal traffic (backtrack points reported vs. actually
    scheduled), early-exit cancellations with the broadcast-to-drain
    latency, and crash resubmissions.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for name, value in stats.as_dict().items():
        registry.counter(f"{prefix}.{name}").inc(value)
    return registry


def store_metrics(
    stats,
    registry: Optional[MetricsRegistry] = None,
    prefix: str = "store",
) -> MetricsRegistry:
    """Fold a :class:`~repro.verify.store.StoreStats` into a registry.

    Surfaces the persistent verdict store's load-time counters (records
    loaded / stale-version skips / torn tails / quarantined segments),
    flush counters, and warm-reuse counters under ``prefix``.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for name, value in stats.as_dict().items():
        registry.counter(f"{prefix}.{name}").inc(value)
    return registry


def stream_metrics(
    fold,
    reader=None,
    registry: Optional[MetricsRegistry] = None,
    prefix: str = "stream",
) -> MetricsRegistry:
    """Fold a live :class:`~repro.obs.stream.StreamFold` into a registry.

    Surfaces the heartbeat channel's health (workers seen, beats folded,
    checksum-dropped lines) and the exactly-once deduped task totals --
    including ``duplicate_tasks_skipped``, the count of crash-resubmitted
    task records whose counters were *not* double-folded.
    """
    registry = registry if registry is not None else MetricsRegistry()
    registry.counter(f"{prefix}.workers").value = len(fold.workers)
    registry.counter(f"{prefix}.beats").inc(fold.beats)
    registry.counter(f"{prefix}.tasks").inc(fold.tasks)
    registry.counter(f"{prefix}.duplicate_tasks_skipped").inc(
        fold.duplicates_skipped
    )
    registry.counter(f"{prefix}.stalls").inc(len(fold.stalls))
    for name, value in sorted(fold.totals.items()):
        registry.counter(f"{prefix}.totals.{name}").inc(value)
    if reader is not None:
        registry.counter(f"{prefix}.spools").value = reader.spools_seen
        registry.counter(f"{prefix}.records").inc(reader.records_read)
        registry.counter(f"{prefix}.dropped_lines").inc(reader.dropped_lines)
    return registry
