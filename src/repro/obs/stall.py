"""Per-processor, per-cause stall reports: Figure 3 as numbers.

The simulator's front end attributes every stalled cycle to a cause
(see ``ProcessorStats.stall_by_cause`` and the taxonomy below).  This
module renders those buckets: a per-run table, a policy-comparison table
(the quantitative form of the paper's Figure-3 release/acquire handoff),
and a plain listing of a recorded event stream.

Cause taxonomy
--------------

Generation-gate stalls (the policy refused to issue the next access yet):

* ``gate:sync-commit`` -- waiting for prior *synchronization* accesses to
  commit (the Adve-Hill Section-5.1 condition 2 gate);
* ``gate:sync-gp``     -- waiting for prior synchronization accesses to
  globally perform (Definition 1 before a data access);
* ``gate:gp``          -- waiting for prior accesses (not all sync) to
  globally perform (Definition 1 / SC before a sync access);
* ``gate:fence``       -- an explicit fence instruction.

Block stalls (the issued access itself has not reached its block level).
The interval up to the access's commit is attributed to how the memory
system serviced it; any remainder up to global-perform is a completion
wait:

* ``block:reserve-nack``   -- the access was negative-acked off a remote
  reserved line at least once (Section 5.3, condition 5);
* ``block:coherence-miss`` -- the access missed in the cache (or paid a
  memory-module round trip on the cacheless substrate);
* ``block:hit``            -- hit latency only;
* ``block:counter-wait``   -- committed, waiting for invalidation acks /
  the counter's decrement conditions (globally-performed wait);
* ``block:buffer-drain``   -- committed into a write buffer, waiting for
  the drain to reach memory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import TraceEvent
    from repro.sim.system import MachineRun

GATE_SYNC_COMMIT = "gate:sync-commit"
GATE_SYNC_GP = "gate:sync-gp"
GATE_GP = "gate:gp"
GATE_FENCE = "gate:fence"
BLOCK_RESERVE_NACK = "block:reserve-nack"
BLOCK_COHERENCE_MISS = "block:coherence-miss"
BLOCK_HIT = "block:hit"
BLOCK_COUNTER_WAIT = "block:counter-wait"
BLOCK_BUFFER_DRAIN = "block:buffer-drain"

#: Render order for cause columns/rows.
CAUSE_ORDER: List[str] = [
    GATE_SYNC_COMMIT,
    GATE_SYNC_GP,
    GATE_GP,
    GATE_FENCE,
    BLOCK_RESERVE_NACK,
    BLOCK_COHERENCE_MISS,
    BLOCK_HIT,
    BLOCK_COUNTER_WAIT,
    BLOCK_BUFFER_DRAIN,
]


def _cause_rank(cause: str) -> int:
    try:
        return CAUSE_ORDER.index(cause)
    except ValueError:  # pragma: no cover - future causes sort last
        return len(CAUSE_ORDER)


def stall_breakdown(run: "MachineRun") -> List[Dict[str, int]]:
    """Per-processor ``{cause: cycles}`` dicts (copies, render-ordered)."""
    return [
        {
            cause: stats.stall_by_cause[cause]
            for cause in sorted(stats.stall_by_cause, key=_cause_rank)
        }
        for stats in run.proc_stats
    ]


def render_stall_table(run: "MachineRun") -> str:
    """One run's stall attribution as a fixed-width per-processor table."""
    breakdown = stall_breakdown(run)
    causes = sorted({c for per in breakdown for c in per}, key=_cause_rank)
    header = f"{'proc':<6}" + "".join(f"{c:>22}" for c in causes)
    header += f"{'total':>10}"
    lines = [
        f"stall attribution: {run.program.name!r} on {run.policy_name} "
        f"({run.cycles} cycles)",
        header,
        "-" * len(header),
    ]
    for proc, per in enumerate(breakdown):
        total = run.proc_stats[proc].total_stall_cycles
        lines.append(
            f"P{proc:<5}"
            + "".join(f"{per.get(c, 0):>22}" for c in causes)
            + f"{total:>10}"
        )
    return "\n".join(lines)


def render_stall_comparison(runs: Mapping[str, "MachineRun"]) -> str:
    """Per-processor, per-cause stalls side by side across policies.

    ``runs`` maps a column label (usually the policy name) to its run --
    all runs of the same program.  This is the Figure-3 table: under
    ``definition1`` the releasing processor carries a ``gate:gp`` stall
    that vanishes under ``adve-hill``, while the acquiring processor's
    sync wait remains in both columns.
    """
    labels = list(runs)
    if not labels:
        return "(no runs)"
    first = runs[labels[0]]
    nprocs = len(first.proc_stats)
    rows: List[tuple] = []
    for proc in range(nprocs):
        causes = sorted(
            {
                cause
                for run in runs.values()
                for cause in run.proc_stats[proc].stall_by_cause
            },
            key=_cause_rank,
        )
        for cause in causes:
            rows.append(
                (
                    proc,
                    cause,
                    [
                        run.proc_stats[proc].stall_by_cause.get(cause, 0)
                        for run in runs.values()
                    ],
                )
            )
        rows.append(
            (
                proc,
                "TOTAL",
                [run.proc_stats[proc].total_stall_cycles for run in runs.values()],
            )
        )
    header = f"{'proc':<6}{'cause':<22}" + "".join(
        f"{label:>22}" for label in labels
    )
    lines = [
        f"stall comparison: {first.program.name!r} "
        f"(stall cycles per processor and cause)",
        header,
        "-" * len(header),
    ]
    for proc, cause, values in rows:
        lines.append(
            f"P{proc:<5}{cause:<22}"
            + "".join(f"{value:>22}" for value in values)
        )
    lines.append("")
    lines.append(
        "finish:  "
        + "  ".join(
            f"{label}={runs[label].cycles}cy" for label in labels
        )
    )
    return "\n".join(lines)


def render_event_stream(
    events: Sequence["TraceEvent"], limit: Optional[int] = None
) -> str:
    """A recorded event stream as chronological, human-readable lines."""
    ordered = sorted(events, key=lambda e: (e.ts, e.track, e.name))
    if limit is not None:
        shown, dropped = ordered[:limit], max(0, len(ordered) - limit)
    else:
        shown, dropped = ordered, 0
    lines = []
    for event in shown:
        span = f" +{event.dur}" if event.phase in ("X", "b") else ""
        args = ""
        if event.args:
            args = "  " + " ".join(
                f"{k}={v}" for k, v in sorted(event.args.items())
            )
        lines.append(
            f"{event.ts:>8}{span:<8} {event.track:<10} "
            f"{event.cat}:{event.name}{args}"
        )
    if dropped:
        lines.append(f"... {dropped} more events")
    return "\n".join(lines)
