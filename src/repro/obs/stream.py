"""Cross-process metric streaming: the heartbeat spool.

Long campaigns fan work out across forked worker processes, and until
now the parent learned nothing about a worker between task dispatch and
task completion -- a ten-minute ``sweep --jobs 8`` was a black box.
This module is the streaming channel that opens it up:

* each worker (verification-engine pool worker, parallel-exploration
  shard worker, or the parent itself on the serial path) appends
  periodic **heartbeat records** -- monotonic timestamp, current task,
  cumulative work counters, RSS -- to its *own* spool file;
* the parent **tails** every spool incrementally and folds the records
  into live aggregates (:class:`StreamFold`), which the progress engine
  turns into completion %, ETA, and worker-health rows.

The spool uses the same lock-free per-writer-file idiom as the verdict
store's segments: every writer opens ``hb-<pid>-<n>.jsonl`` with
``O_CREAT | O_EXCL`` so no two processes ever share a file, every line
carries a truncated-SHA-256 checksum of its payload, and the reader
tolerates a torn tail (a record cut mid-write by a crash or a racing
read simply stays unread until its newline lands; a checksum-failing
complete line is dropped and counted).  All timestamps are
:func:`repro.obs.tracer.now_us` -- see :data:`~repro.obs.tracer.OBS_CLOCK`.

Activation is campaign-scoped and fork-friendly: the parent publishes
the spool directory in a module global (:func:`publish`) *before* any
fork, so workers inherit it by address-space copy and lazily open their
writer on first beat.  With nothing published, every hook in the hot
paths is a single ``is None`` check -- the disabled-telemetry overhead
the E16 benchmark gates at <= 1%.

Record kinds (one JSON object per line, ``"c"`` = checksum field):

* ``meta``  -- spool header: format version, clock id, pid, role;
* ``beat``  -- periodic liveness/throughput sample with *cumulative*
  per-worker counters (latest beat per worker wins in the fold);
* ``task``  -- one completed engine task's counter *deltas*, tagged
  with its dispatch key and generation (crash-resubmit attempt number);
  the fold sums these **exactly once per key** (first generation
  delivered wins), so aggregate hit rates stay truthful when fault
  injection makes the same task complete twice;
* ``stall`` -- a worker-side failure carrying the liveness watchdog's
  stall-cause diagnosis, surfaced in the status snapshot instead of
  only inside an exception.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

from repro.obs.tracer import OBS_CLOCK, now_us

#: Spool format version, stamped into every spool's meta header.
STREAM_FORMAT = 1

#: Default seconds between heartbeat records per worker.
DEFAULT_HEARTBEAT_INTERVAL = 0.25


def _line_checksum(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def rss_kb() -> int:
    """Resident set size of this process in KiB (stdlib-only).

    Reads ``/proc/self/status`` where available, falls back to
    ``resource.getrusage`` peak RSS (already KiB on Linux), and returns
    0 where neither exists -- a heartbeat must never fail over a metric.
    """
    try:
        with open("/proc/self/status", "rb") as handle:
            for line in handle:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:
        return 0


class HeartbeatWriter:
    """One process's append-only, checksummed heartbeat spool.

    The spool file is claimed with ``O_CREAT | O_EXCL`` (lock-free: no
    two writers ever share a file) and opened lazily on the first
    record, so merely *holding* a writer costs nothing.  ``beat`` is
    rate-limited by ``interval`` seconds; ``task_done`` and ``stall``
    always write (they are exactly-once events, not samples).
    """

    def __init__(
        self,
        spool_dir: str,
        role: str = "worker",
        interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    ) -> None:
        self.spool_dir = spool_dir
        self.role = role
        self.interval_us = max(0, int(interval * 1e6))
        self.pid = os.getpid()
        self.worker_id = f"{role}-{self.pid}"
        #: Cumulative work counters carried by every beat.
        self.totals: Dict[str, int] = {}
        self.beats_written = 0
        self.records_written = 0
        self._fh = None
        self._last_beat_us = 0
        self._seq = 0

    def _open(self) -> None:
        os.makedirs(self.spool_dir, exist_ok=True)
        # Slots only move forward within a writer's lifetime (never back
        # to a pruned-and-freed number): a reader keys offsets by path,
        # so reusing a deleted slot would leave its new records beyond a
        # stale offset, unread forever.
        for seq in range(self._seq, self._seq + 10_000):
            path = os.path.join(
                self.spool_dir, f"hb-{self.pid}-{seq}.jsonl"
            )
            try:
                fd = os.open(
                    path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                continue  # a previous incarnation of this pid; next slot
            self._seq = seq + 1
            self._fh = os.fdopen(fd, "w", encoding="utf-8")
            self._emit(
                {
                    "kind": "meta",
                    "format": STREAM_FORMAT,
                    "clock": OBS_CLOCK,
                    "ts": now_us(),
                    "pid": self.pid,
                    "worker": self.worker_id,
                    "role": self.role,
                }
            )
            return
        raise OSError(f"no free heartbeat spool slot in {self.spool_dir}")

    def _emit(self, record: dict) -> None:
        if self._fh is None:
            self._open()
        payload = json.dumps(record, sort_keys=True)
        record["c"] = _line_checksum(payload)
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self.records_written += 1

    def add(self, **deltas: int) -> None:
        """Accumulate work counters into this worker's cumulative totals."""
        totals = self.totals
        for key, value in deltas.items():
            totals[key] = totals.get(key, 0) + value

    def beat(
        self, task: Optional[str] = None, gen: int = 0, force: bool = False
    ) -> bool:
        """Append a heartbeat if ``interval`` has elapsed (or ``force``)."""
        now = now_us()
        if not force and now - self._last_beat_us < self.interval_us:
            return False
        self._last_beat_us = now
        self._emit(
            {
                "kind": "beat",
                "ts": now,
                "worker": self.worker_id,
                "pid": self.pid,
                "role": self.role,
                "task": task,
                "gen": gen,
                "counters": dict(self.totals),
                "rss_kb": rss_kb(),
            }
        )
        self.beats_written += 1
        return True

    def task_done(self, key: str, gen: int, counters: Dict[str, int]) -> None:
        """Append one completed task's counter deltas.

        ``key`` identifies the dispatch slot (``"<batch>:<index>"``) and
        ``gen`` the resubmission attempt; the fold keeps the first record
        per key so crash-resubmitted duplicates never double-count.
        """
        self._emit(
            {
                "kind": "task",
                "ts": now_us(),
                "worker": self.worker_id,
                "key": key,
                "gen": int(gen),
                "counters": dict(counters),
            }
        )

    def stall(self, diagnosis: str, task: Optional[str] = None) -> None:
        """Append a worker-side failure with its stall-cause diagnosis."""
        self._emit(
            {
                "kind": "stall",
                "ts": now_us(),
                "worker": self.worker_id,
                "task": task,
                "diagnosis": str(diagnosis)[:4000],
            }
        )

    def rotate(self) -> None:
        """Close the current spool slot; the next record claims a fresh
        one.  Long-lived daemon workers rotate between campaigns so the
        retention GC (:func:`prune_spool_dir`) can reclaim closed slots
        without ever racing a live file handle."""
        self.close()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def prune_spool_dir(
    spool_dir: str,
    keep_per_pid: int = 2,
    live_pids: Optional[set] = None,
) -> int:
    """Retention GC over a heartbeat spool directory; returns files removed.

    Spool slots accumulate forever on a long-lived daemon (every worker
    replacement and every :meth:`HeartbeatWriter.rotate` claims a new
    ``hb-<pid>-<n>.jsonl``).  This keeps the newest ``keep_per_pid``
    slots per pid and deletes the rest; when ``live_pids`` is given,
    *every* slot of a pid not in it is deleted (the process is gone, its
    telemetry has been folded).  Writers never re-use a freed slot
    number (see :meth:`HeartbeatWriter._open`), so deletion cannot
    corrupt a reader's offset map -- pair with
    :meth:`SpoolReader.forget_missing` to keep that map bounded too.
    """
    try:
        names = os.listdir(spool_dir)
    except OSError:
        return 0
    by_pid: Dict[int, List[tuple]] = {}
    for name in names:
        if not (name.startswith("hb-") and name.endswith(".jsonl")):
            continue
        parts = name[3:-6].split("-")
        if len(parts) != 2 or not all(p.isdigit() for p in parts):
            continue
        pid, seq = int(parts[0]), int(parts[1])
        by_pid.setdefault(pid, []).append((seq, name))
    removed = 0
    for pid, slots in by_pid.items():
        slots.sort()
        if live_pids is not None and pid not in live_pids:
            doomed = slots
        else:
            doomed = slots[: max(0, len(slots) - max(0, keep_per_pid))]
        for _seq, name in doomed:
            try:
                os.unlink(os.path.join(spool_dir, name))
                removed += 1
            except OSError:
                pass
    return removed


# ----------------------------------------------------------------------
# Campaign-scoped activation (published pre-fork, inherited by workers)
# ----------------------------------------------------------------------


class _ActiveStream:
    __slots__ = ("spool_dir", "interval", "owner_pid", "monitor")

    def __init__(self, spool_dir, interval, monitor):
        self.spool_dir = spool_dir
        self.interval = interval
        self.owner_pid = os.getpid()
        self.monitor = monitor


#: The live campaign's stream config; ``None`` = telemetry off (the
#: single check every instrumented hot path pays when disabled).
_ACTIVE: Optional[_ActiveStream] = None

#: This process's lazily created writer (per-pid: forks re-create it).
_WRITER: Optional[HeartbeatWriter] = None


def publish(spool_dir: str, interval: float, monitor=None) -> None:
    """Activate streaming: called by the campaign monitor *before* any
    fork so every worker inherits the spool location by address-space
    copy.  ``monitor`` (parent-side only) receives :func:`parent_poll`."""
    global _ACTIVE
    _ACTIVE = _ActiveStream(spool_dir, interval, monitor)


def unpublish() -> None:
    """Deactivate streaming and close this process's writer, if any."""
    global _ACTIVE, _WRITER
    _ACTIVE = None
    if _WRITER is not None:
        _WRITER.close()
        _WRITER = None


def active_spool_dir() -> Optional[str]:
    active = _ACTIVE
    return active.spool_dir if active is not None else None


def worker_writer(role: str = "worker") -> Optional[HeartbeatWriter]:
    """This process's heartbeat writer, or ``None`` when streaming is off.

    Lazily (re)created per pid: a forked worker inherits the parent's
    ``_WRITER`` object but must never share its spool file, so a pid
    mismatch opens a fresh one (the inherited handle is simply unused).
    """
    global _WRITER
    active = _ACTIVE
    if active is None:
        return None
    writer = _WRITER
    if (
        writer is None
        or writer.pid != os.getpid()
        or writer.spool_dir != active.spool_dir
    ):
        writer = _WRITER = HeartbeatWriter(
            active.spool_dir, role=role, interval=active.interval
        )
    return writer


def parent_poll() -> None:
    """Give the campaign monitor a chance to tail spools and refresh the
    status snapshot.  No-op in workers (only the publishing process owns
    the monitor) and when streaming is off; the monitor rate-limits its
    own writes, so call sites may invoke this freely in dispatch loops."""
    active = _ACTIVE
    if (
        active is not None
        and active.monitor is not None
        and active.owner_pid == os.getpid()
    ):
        active.monitor.poll()


# ----------------------------------------------------------------------
# Reader side (parent only)
# ----------------------------------------------------------------------


def _parse_line(line: bytes) -> Optional[dict]:
    """Decode + checksum-verify one complete spool line (None = invalid)."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    checksum = record.pop("c", None)
    if checksum != _line_checksum(json.dumps(record, sort_keys=True)):
        return None
    if "kind" not in record:
        return None
    return record


class SpoolReader:
    """Incremental tail over every spool file in a directory.

    Keeps a byte offset per file; each :meth:`poll` reads only what is
    new, returns the complete checksum-valid records, and leaves a torn
    tail (no trailing newline yet) for the next poll.  Files may appear
    at any time (workers fork mid-campaign) and may be written
    concurrently -- the per-writer-file discipline means a reader never
    races anything except the in-progress last line.
    """

    def __init__(self, spool_dir: str) -> None:
        self.spool_dir = spool_dir
        self._offsets: Dict[str, int] = {}
        self.records_read = 0
        self.dropped_lines = 0

    @property
    def spools_seen(self) -> int:
        return len(self._offsets)

    def forget_missing(self) -> int:
        """Drop offsets for spool files that no longer exist (pruned by
        the retention GC); returns how many were forgotten.  Keeps a
        daemon-lifetime reader's offset map bounded."""
        gone = [p for p in self._offsets if not os.path.exists(p)]
        for path in gone:
            del self._offsets[path]
        return len(gone)

    def poll(self) -> List[dict]:
        records: List[dict] = []
        try:
            names = sorted(os.listdir(self.spool_dir))
        except OSError:
            return records
        for name in names:
            if not (name.startswith("hb-") and name.endswith(".jsonl")):
                continue
            path = os.path.join(self.spool_dir, name)
            offset = self._offsets.setdefault(path, 0)
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    data = handle.read()
            except OSError:
                continue
            if not data:
                continue
            end = data.rfind(b"\n")
            if end < 0:
                continue  # only a torn tail so far; retry next poll
            self._offsets[path] = offset + end + 1
            for line in data[:end].split(b"\n"):
                if not line.strip():
                    continue
                record = _parse_line(line)
                if record is None:
                    self.dropped_lines += 1
                else:
                    self.records_read += 1
                    records.append(record)
        return records


class WorkerView:
    """The fold's latest knowledge of one worker process."""

    __slots__ = (
        "worker", "pid", "role", "last_ts", "task", "gen", "counters",
        "rss_kb", "beats",
    )

    def __init__(self, worker: str, pid: int, role: str) -> None:
        self.worker = worker
        self.pid = pid
        self.role = role
        self.last_ts = 0
        self.task: Optional[str] = None
        self.gen = 0
        self.counters: Dict[str, int] = {}
        self.rss_kb = 0
        self.beats = 0


#: How many recent stall diagnoses the fold retains for the snapshot.
_MAX_STALLS = 20


class StreamFold:
    """Folds spool records into live aggregates.

    Two aggregation disciplines coexist:

    * **beats** carry cumulative per-worker counters; the fold keeps the
      latest per worker (:attr:`workers`) -- a liveness/throughput view
      where a resubmitted task's work legitimately shows up twice
      (both workers really did burn the cycles);
    * **task** records carry per-task deltas keyed by dispatch slot; the
      fold sums the *first* record per key into :attr:`totals` and
      counts later generations in :attr:`duplicates_skipped` -- the
      truthful exactly-once aggregate that ``metrics_snapshot`` hit
      rates are built on even under crash-resubmission.
    """

    def __init__(self) -> None:
        self.workers: Dict[str, WorkerView] = {}
        self.totals: Dict[str, int] = {}
        self.stalls: List[dict] = []
        self.duplicates_skipped = 0
        self.beats = 0
        self.tasks = 0
        self._task_gens: Dict[str, int] = {}

    def _view(self, record: dict) -> WorkerView:
        worker = str(record.get("worker", "?"))
        view = self.workers.get(worker)
        if view is None:
            view = self.workers[worker] = WorkerView(
                worker,
                int(record.get("pid", 0) or 0),
                str(record.get("role", "worker")),
            )
        return view

    def absorb(self, records: List[dict]) -> None:
        for record in records:
            kind = record.get("kind")
            if kind == "meta":
                view = self._view(record)
                view.last_ts = max(view.last_ts, int(record.get("ts", 0)))
            elif kind == "beat":
                view = self._view(record)
                view.last_ts = max(view.last_ts, int(record.get("ts", 0)))
                view.task = record.get("task")
                view.gen = int(record.get("gen", 0) or 0)
                counters = record.get("counters")
                if isinstance(counters, dict):
                    view.counters = counters
                view.rss_kb = int(record.get("rss_kb", 0) or 0)
                view.beats += 1
                self.beats += 1
            elif kind == "task":
                key = str(record.get("key"))
                gen = int(record.get("gen", 0) or 0)
                if key in self._task_gens:
                    self.duplicates_skipped += 1
                    continue
                self._task_gens[key] = gen
                self.tasks += 1
                counters = record.get("counters")
                if isinstance(counters, dict):
                    for name, value in counters.items():
                        if isinstance(value, (int, float)):
                            self.totals[name] = (
                                self.totals.get(name, 0) + int(value)
                            )
            elif kind == "stall":
                self.stalls.append(
                    {
                        "ts": int(record.get("ts", 0)),
                        "worker": record.get("worker"),
                        "task": record.get("task"),
                        "diagnosis": record.get("diagnosis", ""),
                    }
                )
                del self.stalls[:-_MAX_STALLS]

    def worker_rows(self, now: int, silent_after_us: int) -> List[dict]:
        """Per-worker health rows, silent-first then by id.

        A worker whose last heartbeat is older than ``silent_after_us``
        is marked ``silent`` -- the early-warning health signal that
        fires *before* any task timeout does.
        """
        rows = []
        for view in self.workers.values():
            silent_us = max(0, now - view.last_ts) if view.last_ts else 0
            rows.append(
                {
                    "id": view.worker,
                    "pid": view.pid,
                    "role": view.role,
                    "last_ts_us": view.last_ts,
                    "silent_s": round(silent_us / 1e6, 3),
                    "state": (
                        "silent" if silent_us > silent_after_us else "ok"
                    ),
                    "task": view.task,
                    "gen": view.gen,
                    "rss_kb": view.rss_kb,
                    "counters": dict(sorted(view.counters.items())),
                }
            )
        rows.sort(key=lambda r: (r["state"] != "silent", r["id"]))
        return rows

    def states_total(self) -> int:
        """Deduped explored-state total across all completed tasks."""
        return int(self.totals.get("states", 0))
