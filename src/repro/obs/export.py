"""Exporters: Chrome trace-event / Perfetto JSON and JSONL event logs.

The Chrome trace-event format (the JSON Perfetto's legacy importer and
``chrome://tracing`` both load) is a flat ``traceEvents`` array of phase
records.  The mapping from :class:`~repro.obs.tracer.TraceEvent`:

* every distinct ``track`` becomes one thread (``tid``) of a single
  process, named through ``M``/``thread_name`` metadata records, ordered
  by first appearance;
* ``span`` events export as complete (``X``) events with ``dur``;
* ``async_span`` events export as async ``b``/``e`` pairs with a unique
  ``id``, so overlapping in-flight network messages render as stacked
  slices instead of corrupting each other;
* ``instant`` events export as thread-scoped ``i`` events and
  ``counter`` events as ``C`` events.

Timestamps pass through as microseconds -- the simulator's cycle clock
reads as "us" in the UI, one cycle per microsecond.

:func:`validate_chrome_trace` is a structural schema check used by the
tests and the CI smoke job; ``python -m repro.obs.export --validate f``
exposes it on the command line.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Union

from repro.obs.tracer import RecordingTracer, TraceEvent

_EventSource = Union[RecordingTracer, Sequence[TraceEvent]]

#: Fields every exported record must carry, per Chrome phase.
_REQUIRED_FIELDS: Dict[str, tuple] = {
    "X": ("name", "cat", "ts", "dur", "pid", "tid"),
    "i": ("name", "cat", "ts", "pid", "tid", "s"),
    "b": ("name", "cat", "ts", "pid", "tid", "id"),
    "e": ("name", "cat", "ts", "pid", "tid", "id"),
    "C": ("name", "ts", "pid", "args"),
    "M": ("name", "pid", "args"),
}

_PID = 1


def _events_of(source: _EventSource) -> Sequence[TraceEvent]:
    if isinstance(source, RecordingTracer):
        return source.events
    return source


def chrome_trace(source: _EventSource) -> Dict[str, Any]:
    """Build the Chrome trace-event JSON object for ``source``'s events."""
    events = _events_of(source)
    tids: Dict[str, int] = {}
    records: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID,
            "args": {"name": "repro"},
        }
    ]

    def tid_of(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
            records.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return tid

    next_async_id = 1
    for event in events:
        tid = tid_of(event.track)
        base: Dict[str, Any] = {
            "name": event.name,
            "cat": event.cat,
            "pid": _PID,
            "tid": tid,
            "ts": event.ts,
        }
        if event.args:
            base["args"] = dict(event.args)
        if event.phase == "X":
            base["ph"] = "X"
            base["dur"] = event.dur
            records.append(base)
        elif event.phase == "b":
            async_id = next_async_id
            next_async_id += 1
            begin = dict(base, ph="b", id=async_id)
            records.append(begin)
            records.append(
                {
                    "ph": "e",
                    "name": event.name,
                    "cat": event.cat,
                    "pid": _PID,
                    "tid": tid,
                    "ts": event.ts + event.dur,
                    "id": async_id,
                }
            )
        elif event.phase == "i":
            base["ph"] = "i"
            base["s"] = "t"  # thread-scoped instant
            records.append(base)
        elif event.phase == "C":
            records.append(
                {
                    "ph": "C",
                    "name": event.name,
                    "pid": _PID,
                    "ts": event.ts,
                    "args": dict(event.args or {}),
                }
            )
        else:  # pragma: no cover - tracer only emits the phases above
            raise ValueError(f"unknown trace phase {event.phase!r}")
    return {"traceEvents": records, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, source: _EventSource) -> str:
    """Serialize ``source`` as Chrome trace-event JSON; returns ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(source), handle, indent=1)
        handle.write("\n")
    return path


def write_jsonl(path: str, source: _EventSource) -> str:
    """One JSON object per event (raw event log); returns ``path``."""
    with open(path, "w") as handle:
        for event in _events_of(source):
            handle.write(json.dumps(event.as_dict(), sort_keys=True))
            handle.write("\n")
    return path


def validate_chrome_trace(obj: Any) -> List[str]:
    """Structural schema check; returns problems (empty list == valid)."""
    problems: List[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    open_async: Dict[Any, int] = {}
    for index, record in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(record, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = record.get("ph")
        required = _REQUIRED_FIELDS.get(phase)
        if required is None:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        for fld in required:
            if fld not in record:
                problems.append(f"{where}: phase {phase!r} missing {fld!r}")
        ts = record.get("ts")
        if ts is not None and (not isinstance(ts, (int, float)) or ts < 0):
            problems.append(f"{where}: bad ts {ts!r}")
        if phase == "X":
            dur = record.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if phase == "b":
            open_async[record.get("id")] = index
        elif phase == "e":
            if record.get("id") not in open_async:
                problems.append(f"{where}: 'e' with no matching 'b'")
            else:
                del open_async[record["id"]]
    for async_id, index in open_async.items():
        problems.append(f"traceEvents[{index}]: unclosed async id {async_id!r}")
    return problems


def validate_chrome_trace_file(path: str) -> List[str]:
    """Load ``path`` and validate it; JSON errors come back as problems."""
    try:
        with open(path) as handle:
            obj = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    return validate_chrome_trace(obj)


def validate_status(obj: Any) -> List[str]:
    """Structural check of a ``repro-status/1`` campaign snapshot.

    Returns problems (empty list == valid).  Checks the schema id, the
    clock contract, monotone-safe numeric fields (``seq``, timestamps,
    ``completion`` in ``[0, 1]``, ``eta_s`` null-or-nonnegative), the
    state enum, and the shape of the workers/health/stream sections.
    """
    from repro.obs.progress import STATUS_SCHEMA
    from repro.obs.tracer import OBS_CLOCK

    problems: List[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    if obj.get("schema") != STATUS_SCHEMA:
        problems.append(
            f"schema: expected {STATUS_SCHEMA!r}, got {obj.get('schema')!r}"
        )
    clock = obj.get("clock")
    if not isinstance(clock, dict) or clock.get("id") != OBS_CLOCK:
        problems.append(f"clock: expected id {OBS_CLOCK!r}, got {clock!r}")
    elif not clock.get("epoch"):
        problems.append("clock: missing epoch contract")
    for fld in ("seq", "ts_us", "started_us"):
        value = obj.get(fld)
        if not isinstance(value, int) or value < 0:
            problems.append(f"{fld}: expected nonnegative int, got {value!r}")
    if obj.get("state") not in ("running", "done", "failed"):
        problems.append(f"state: bad value {obj.get('state')!r}")
    progress = obj.get("progress")
    if not isinstance(progress, dict):
        problems.append("progress: missing or not an object")
    else:
        completion = progress.get("completion")
        if (
            not isinstance(completion, (int, float))
            or not 0.0 <= completion <= 1.0
        ):
            problems.append(f"progress.completion: bad value {completion!r}")
        eta = progress.get("eta_s")
        if eta is not None and (
            not isinstance(eta, (int, float)) or eta < 0
        ):
            problems.append(f"progress.eta_s: bad value {eta!r}")
        units = progress.get("units")
        if not isinstance(units, dict) or not all(
            isinstance(units.get(k), int) for k in ("done", "total")
        ):
            problems.append(f"progress.units: bad value {units!r}")
        if obj.get("state") == "done":
            if completion != 1.0:
                problems.append(
                    f"progress.completion: {completion!r} in done state"
                )
            if eta != 0.0:
                problems.append(f"progress.eta_s: {eta!r} in done state")
    workers = obj.get("workers")
    if not isinstance(workers, list):
        problems.append("workers: missing or not an array")
    else:
        for index, row in enumerate(workers):
            where = f"workers[{index}]"
            if not isinstance(row, dict):
                problems.append(f"{where}: not an object")
                continue
            for fld in ("id", "pid", "role", "state", "silent_s"):
                if fld not in row:
                    problems.append(f"{where}: missing {fld!r}")
            if row.get("state") not in ("ok", "silent"):
                problems.append(f"{where}: bad state {row.get('state')!r}")
    for section in ("health", "stream", "totals"):
        if not isinstance(obj.get(section), dict):
            problems.append(f"{section}: missing or not an object")
    verdicts = obj.get("verdicts")
    if verdicts is not None and not isinstance(verdicts, list):
        problems.append("verdicts: not an array")
    return problems


def validate_status_file(path: str) -> List[str]:
    """Load a status snapshot and validate it (JSON errors == problems)."""
    try:
        with open(path) as handle:
            obj = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    return validate_status(obj)


def main(argv: Iterable[str] = None) -> int:
    """``python -m repro.obs.export --validate FILE... | --validate-status FILE...``"""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.obs.export",
        description=(
            "Validate Chrome trace-event JSON files and repro-status "
            "campaign snapshots"
        ),
    )
    parser.add_argument("--validate", nargs="+", metavar="FILE", default=[])
    parser.add_argument(
        "--validate-status", nargs="+", metavar="FILE", default=[]
    )
    args = parser.parse_args(argv if argv is None else list(argv))
    if not args.validate and not args.validate_status:
        parser.error("nothing to do: pass --validate or --validate-status")
    status = 0
    checks = [
        (path, validate_chrome_trace_file) for path in args.validate
    ] + [
        (path, validate_status_file) for path in args.validate_status
    ]
    for path, check in checks:
        problems = check(path)
        if problems:
            status = 1
            print(f"{path}: INVALID")
            for problem in problems[:20]:
                print(f"  {problem}")
        else:
            print(f"{path}: ok")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    raise SystemExit(main())
