"""Observability: structured tracing, a metrics registry, and exporters.

Three pillars (see ``docs/observability.md``):

* :mod:`repro.obs.tracer`  -- the tracer protocol, the zero-cost null
  tracer, and the in-memory recording tracer;
* :mod:`repro.obs.metrics` -- named counters/histograms/timers folded
  into one stable dict, with views over the existing stats dataclasses;
* :mod:`repro.obs.export` / :mod:`repro.obs.stall` -- Chrome
  trace-event (Perfetto) JSON, JSONL event logs, and the per-processor
  per-cause stall tables that turn Figure 3 into numbers.
"""

from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    explorer_metrics,
    run_metrics,
    shard_metrics,
)
from repro.obs.stall import (
    CAUSE_ORDER,
    render_event_stream,
    render_stall_comparison,
    render_stall_table,
    stall_breakdown,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "CAUSE_ORDER",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RecordingTracer",
    "Timer",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "explorer_metrics",
    "render_event_stream",
    "render_stall_comparison",
    "render_stall_table",
    "run_metrics",
    "shard_metrics",
    "stall_breakdown",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
    "write_jsonl",
]
