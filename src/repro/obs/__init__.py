"""Observability: structured tracing, a metrics registry, and exporters.

Three pillars (see ``docs/observability.md``):

* :mod:`repro.obs.tracer`  -- the tracer protocol, the zero-cost null
  tracer, and the in-memory recording tracer;
* :mod:`repro.obs.metrics` -- named counters/histograms/timers folded
  into one stable dict, with views over the existing stats dataclasses;
* :mod:`repro.obs.export` / :mod:`repro.obs.stall` -- Chrome
  trace-event (Perfetto) JSON, JSONL event logs, and the per-processor
  per-cause stall tables that turn Figure 3 into numbers.

Plus the live-campaign plane (PR 8):

* :mod:`repro.obs.stream`   -- per-worker checksummed heartbeat spools
  (lock-free multi-process streaming) with an incremental reader and an
  exactly-once fold;
* :mod:`repro.obs.progress` -- completion/ETA/straggler arithmetic and
  the :class:`CampaignMonitor` that writes the atomically-replaced
  ``--status-json`` snapshot the ``status``/``top`` CLI renders.
"""

from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    validate_status,
    validate_status_file,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    explorer_metrics,
    run_metrics,
    shard_metrics,
    stream_metrics,
)
from repro.obs.stall import (
    CAUSE_ORDER,
    render_event_stream,
    render_stall_comparison,
    render_stall_table,
    stall_breakdown,
)
from repro.obs.progress import (
    STATUS_SCHEMA,
    CampaignMonitor,
    ProgressEngine,
    render_status,
)
from repro.obs.stream import (
    HeartbeatWriter,
    SpoolReader,
    StreamFold,
    prune_spool_dir,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    OBS_CLOCK,
    OBS_CLOCK_EPOCH,
    RecordingTracer,
    TraceEvent,
    Tracer,
    now_us,
)

__all__ = [
    "CAUSE_ORDER",
    "CampaignMonitor",
    "Counter",
    "HeartbeatWriter",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OBS_CLOCK",
    "OBS_CLOCK_EPOCH",
    "ProgressEngine",
    "RecordingTracer",
    "STATUS_SCHEMA",
    "SpoolReader",
    "StreamFold",
    "Timer",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "explorer_metrics",
    "now_us",
    "prune_spool_dir",
    "render_event_stream",
    "render_stall_comparison",
    "render_stall_table",
    "render_status",
    "run_metrics",
    "shard_metrics",
    "stall_breakdown",
    "stream_metrics",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "validate_status",
    "validate_status_file",
    "write_chrome_trace",
    "write_jsonl",
]
