"""Structured event tracing: the null tracer and the recording tracer.

The observability layer's contract is *zero cost when off*: every
instrumented component holds a tracer object and asks ``tracer.enabled``
(one attribute load) before building any event arguments.  The module
singleton :data:`NULL_TRACER` answers ``False`` forever, so the
uninstrumented path never allocates, formats, or appends anything.

:class:`RecordingTracer` collects :class:`TraceEvent` records in memory.
Timestamps are caller-defined integers on a per-domain clock:

* the hardware simulator stamps events in **cycles** (exported as
  microseconds, so one Perfetto "us" is one simulated cycle);
* the idealized-architecture explorers stamp events with their
  **transition count** (the only monotone clock an in-place DFS has);
* the verification engine stamps wall-clock microseconds.

Events carry a ``track`` name -- a processor (``P0``), a component
(``net``, ``dir``), or an explorer -- which the exporters map to Chrome
trace-event threads.  :meth:`RecordingTracer.scope` pushes a prefix onto
every track name, so multi-run commands (``litmus`` across tests and
seeds) keep their runs on separate, labelled tracks.

Event kinds follow the Chrome trace-event phases they export to:

* ``span``       -- a complete duration event (phase ``X``);
* ``async_span`` -- a duration that may overlap others on its track,
  e.g. in-flight network messages (exported as async ``b``/``e`` pairs);
* ``instant``    -- a point event (phase ``i``);
* ``counter``    -- a sampled value (phase ``C``).
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, MutableSequence, Optional

#: Identifier of the shared obs timebase, stamped into status snapshots
#: and heartbeat spool headers so a reader never mistakes a monotonic
#: timestamp for wall-clock time.
OBS_CLOCK = "monotonic-us"

#: Human-readable epoch contract for :data:`OBS_CLOCK`, embedded in the
#: status-snapshot schema.
OBS_CLOCK_EPOCH = (
    "CLOCK_MONOTONIC with an undefined epoch (host boot on Linux): "
    "timestamps are meaningless in isolation and comparable only "
    "against other obs timestamps taken on the same host while it "
    "stays up -- including across fork workers, which share the clock"
)


def now_us() -> int:
    """The one obs wall-time clock: monotonic microseconds.

    Every obs *wall-clock* timestamp -- engine dispatch spans, heartbeat
    records in the streaming spool, status-snapshot fields, checkpoint
    journal stamps -- reads this clock, so they are mutually comparable
    within a run and across the run's forked worker processes (POSIX
    ``CLOCK_MONOTONIC`` is system-wide, unlike ``perf_counter`` whose
    epoch is unspecified per-process on some platforms).  The per-domain
    integer clocks (simulator cycles, explorer transitions) are *not*
    this clock and remain domain-local by design.
    """
    return time.monotonic_ns() // 1_000


class TraceEvent:
    """One recorded event.  ``phase`` is the Chrome phase it exports to."""

    __slots__ = ("phase", "cat", "name", "track", "ts", "dur", "args")

    def __init__(
        self,
        phase: str,
        cat: str,
        name: str,
        track: str,
        ts: int,
        dur: int = 0,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.phase = phase
        self.cat = cat
        self.name = name
        self.track = track
        self.ts = ts
        self.dur = dur
        self.args = args

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form (the JSONL exporter's record)."""
        record: Dict[str, Any] = {
            "phase": self.phase,
            "cat": self.cat,
            "name": self.name,
            "track": self.track,
            "ts": self.ts,
        }
        if self.phase in ("X", "b"):
            record["dur"] = self.dur
        if self.args:
            record["args"] = self.args
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent({self.phase!r}, {self.cat!r}, {self.name!r}, "
            f"track={self.track!r}, ts={self.ts}, dur={self.dur})"
        )


class Tracer:
    """The tracer protocol; this base class is the do-nothing implementation.

    Instrumentation sites hold a ``Tracer`` and guard event construction
    with ``if tracer.enabled:`` -- the class attribute makes the check a
    single load, and the no-op methods make unguarded calls safe too.
    """

    enabled: bool = False

    def span(self, cat: str, name: str, track: str, start: int, end: int,
             args: Optional[Dict[str, Any]] = None) -> None:
        """Record a complete duration event over ``[start, end]``."""

    def async_span(self, cat: str, name: str, track: str, start: int,
                   end: int, args: Optional[Dict[str, Any]] = None) -> None:
        """Record a duration event that may overlap others on its track."""

    def instant(self, cat: str, name: str, track: str, ts: int,
                args: Optional[Dict[str, Any]] = None) -> None:
        """Record a point event."""

    def counter(self, cat: str, name: str, track: str, ts: int,
                value: float) -> None:
        """Record a sampled counter value."""

    @contextmanager
    def scope(self, prefix: str) -> Iterator["Tracer"]:
        """Prefix every track name recorded inside the ``with`` block."""
        yield self


class NullTracer(Tracer):
    """Explicitly-named alias of the do-nothing tracer."""


#: The shared do-nothing tracer; components default to it so tracing is
#: opt-in per run and costs one ``enabled`` check when off.
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Collects events in memory for export (Chrome trace, JSONL, reports).

    ``capacity`` bounds the buffer: when set, the tracer keeps only the
    most recent ``capacity`` events (a ring buffer) and counts everything
    displaced in :attr:`dropped_events`.  Long chaos and soak runs can
    leave tracing on without the event list growing past memory; the drop
    count is surfaced by :meth:`metrics_snapshot` so a truncated trace is
    never mistaken for a complete one.
    """

    enabled = True

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity
        if capacity is not None:
            self.events: MutableSequence[TraceEvent] = deque(maxlen=capacity)
        else:
            self.events = []
        #: Events displaced from a bounded buffer (0 when unbounded).
        self.dropped_events = 0
        self._prefix = ""

    def __len__(self) -> int:
        return len(self.events)

    def _track(self, track: str) -> str:
        return self._prefix + track if self._prefix else track

    def _record(self, event: TraceEvent) -> None:
        if self.capacity is not None and len(self.events) == self.capacity:
            self.dropped_events += 1
        self.events.append(event)

    def span(self, cat, name, track, start, end, args=None) -> None:
        self._record(
            TraceEvent("X", cat, name, self._track(track), start,
                       max(0, end - start), args)
        )

    def async_span(self, cat, name, track, start, end, args=None) -> None:
        self._record(
            TraceEvent("b", cat, name, self._track(track), start,
                       max(0, end - start), args)
        )

    def instant(self, cat, name, track, ts, args=None) -> None:
        self._record(
            TraceEvent("i", cat, name, self._track(track), ts, 0, args)
        )

    def counter(self, cat, name, track, ts, value) -> None:
        self._record(
            TraceEvent("C", cat, name, self._track(track), ts, 0,
                       {"value": value})
        )

    def metrics_snapshot(self, registry=None):
        """Fold buffer occupancy and drop counts into a metrics registry."""
        from repro.obs.metrics import MetricsRegistry

        registry = registry if registry is not None else MetricsRegistry()
        registry.counter("tracer.events").value = len(self.events)
        registry.counter("tracer.dropped_events").value = self.dropped_events
        if self.capacity is not None:
            registry.counter("tracer.capacity").value = self.capacity
        return registry

    @contextmanager
    def scope(self, prefix: str) -> Iterator["RecordingTracer"]:
        """Prefix track names with ``prefix + "/"`` inside the block."""
        saved = self._prefix
        self._prefix = f"{saved}{prefix}/"
        try:
            yield self
        finally:
            self._prefix = saved

    def tracks(self) -> List[str]:
        """Distinct track names in first-recorded order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.track, None)
        return list(seen)
