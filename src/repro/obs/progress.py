"""Campaign progress: completion %, ETA, stragglers, and the status file.

:class:`ProgressEngine` is the arithmetic half: it takes the campaign
plan (one entry per sweep cell, with the verdict store's per-cell cost
estimate when one is known) plus live completion ticks, and produces
completion %, a total ETA, throughput, and straggler detection.  Cost
weighting reuses the verification engine's judge-routing statistic: a
cell with no recorded cost is priced at the **median** of the known
costs, and a cell is a *straggler* once its observed time exceeds 2x its
predicted cost -- the same threshold the engine uses to route expensive
judges.

:class:`CampaignMonitor` is the plumbing half: it owns the heartbeat
spool (publishing it for workers via :func:`repro.obs.stream.publish`),
tails it with a :class:`~repro.obs.stream.SpoolReader`, folds records
with a :class:`~repro.obs.stream.StreamFold`, and periodically writes a
**schema-versioned status snapshot** -- a single JSON object replaced
atomically (write-temp + ``os.replace``), so any process can poll the
path and never observe a torn file.  The snapshot's timestamps are all
on :data:`~repro.obs.tracer.OBS_CLOCK`; the schema embeds the epoch
contract so readers don't mistake them for wall-clock time.

Snapshot schema (``repro-status/1``)::

    schema      "repro-status/1"
    clock       {id, epoch}          # the OBS_CLOCK contract
    seq         int                  # monotone per-campaign write counter
    ts_us       int                  # snapshot time (obs clock)
    started_us  int                  # campaign start (obs clock)
    command     str                  # CLI command line being watched
    state       "running"|"done"|"failed"
    progress    {completion, units{done,total}, eta_s, elapsed_s,
                 states_per_s, cells[], stragglers[]}
    workers     [{id, pid, role, state, silent_s, task, gen, rss_kb,
                  counters, last_ts_us}]
    health      {silent_workers, stalls[], resilience{}}
    stream      {spools, records, dropped_lines, beats,
                 duplicate_tasks_skipped}
    totals      {<counter>: int}     # deduped exactly-once task totals
    verdicts    [...]                # final only: evidence rows verbatim
    result      {...}                # final only: command outcome
    error       str                  # failed only
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import stream as _stream
from repro.obs.stream import SpoolReader, StreamFold
from repro.obs.tracer import OBS_CLOCK, OBS_CLOCK_EPOCH, now_us

#: Status snapshot schema identifier (bump on incompatible change).
STATUS_SCHEMA = "repro-status/1"

#: Observed/predicted ratio past which a cell is flagged a straggler
#: (the verification engine's judge-routing threshold).
STRAGGLER_FACTOR = 2.0


class _Cell:
    """One planned unit pool (a sweep cell, or an extra-work pool)."""

    __slots__ = ("key", "units", "done", "expected_us", "observed_us")

    def __init__(self, key: str, units: int, expected_us: float) -> None:
        self.key = key
        self.units = max(0, int(units))
        self.done = 0
        #: Store-predicted cost per unit in microseconds (0 = unknown).
        self.expected_us = max(0.0, float(expected_us))
        #: Wall time actually burned on this cell so far.
        self.observed_us = 0.0


class ProgressEngine:
    """Completion/ETA/straggler arithmetic over a planned campaign.

    The plan is a list of ``(key, units, expected_us)`` cells; extra
    work pools discovered later (DRF0 checks, judge passes) are added
    with :meth:`add_extra` and priced at the median known cell cost.
    Completion is unit-weighted and clamped monotone non-decreasing
    (a growing plan may never make the bar move backwards); the ETA is
    cost-weighted: remaining estimated microseconds divided by the
    observed rate of estimated-microseconds completed per wall second.
    """

    def __init__(self) -> None:
        self.cells: List[_Cell] = []
        self.extras: Dict[str, _Cell] = {}
        self.started_us = now_us()
        self._prefilled_est_us = 0.0
        self._completion_floor = 0.0

    # -- planning ------------------------------------------------------

    def plan(self, cells: Sequence[Tuple[str, int, float]]) -> None:
        self.cells = [_Cell(key, units, exp) for key, units, exp in cells]
        self.started_us = now_us()

    def prefill(self, index: int, units: int) -> None:
        """Mark ``units`` of a cell complete *before* the run starts
        (journal resume, warm store hits).  Prefilled work counts toward
        completion but not toward the throughput the ETA divides by."""
        cell = self.cells[index]
        grant = min(units, cell.units - cell.done)
        if grant > 0:
            cell.done += grant
            self._prefilled_est_us += grant * self._unit_cost(cell)

    def add_extra(self, kind: str, units: int) -> None:
        """Add (or grow) a non-cell work pool, e.g. ``judge`` passes."""
        pool = self.extras.get(kind)
        if pool is None:
            pool = self.extras[kind] = _Cell(kind, 0, 0.0)
        pool.units += max(0, int(units))

    # -- live ticks ----------------------------------------------------

    def unit_done(self, index: int, units: int = 1) -> None:
        cell = self.cells[index]
        cell.done = min(cell.units, cell.done + max(0, int(units)))

    def extra_done(self, kind: str, units: int = 1) -> None:
        pool = self.extras.get(kind)
        if pool is not None:
            pool.done = min(pool.units, pool.done + max(0, int(units)))

    def observe_cell_us(self, index: int, us: float) -> None:
        """Accumulate wall time burned on a cell (straggler input)."""
        self.cells[index].observed_us += max(0.0, us)

    # -- statistics ----------------------------------------------------

    def median_unit_cost(self) -> float:
        """Median known per-unit cost -- the judge-routing statistic,
        reused as the price of cost-unknown cells and extra pools."""
        known = sorted(c.expected_us for c in self.cells if c.expected_us > 0)
        return known[len(known) // 2] if known else 1.0

    def _unit_cost(self, cell: _Cell) -> float:
        return cell.expected_us if cell.expected_us > 0 else (
            self.median_unit_cost()
        )

    def _pools(self) -> List[_Cell]:
        return self.cells + list(self.extras.values())

    def stragglers(self) -> List[Dict[str, Any]]:
        """Cells running past ``STRAGGLER_FACTOR`` x their prediction."""
        out = []
        median = self.median_unit_cost()
        for cell in self.cells:
            if cell.done >= cell.units or cell.observed_us <= 0:
                continue
            per_unit = cell.expected_us if cell.expected_us > 0 else median
            predicted = per_unit * cell.units
            if predicted > 0 and cell.observed_us > STRAGGLER_FACTOR * predicted:
                out.append(
                    {
                        "cell": cell.key,
                        "predicted_us": round(predicted, 1),
                        "observed_us": round(cell.observed_us, 1),
                        "ratio": round(cell.observed_us / predicted, 2),
                    }
                )
        out.sort(key=lambda r: -r["ratio"])
        return out

    def view(self, now: Optional[int] = None) -> Dict[str, Any]:
        """The snapshot's ``progress`` object."""
        now = now_us() if now is None else now
        pools = self._pools()
        total_units = sum(c.units for c in pools)
        done_units = sum(c.done for c in pools)
        completion = done_units / total_units if total_units else 0.0
        completion = max(completion, self._completion_floor)
        self._completion_floor = completion

        done_est = sum(c.done * self._unit_cost(c) for c in pools)
        remaining_est = sum(
            (c.units - c.done) * self._unit_cost(c) for c in pools
        )
        elapsed_us = max(1, now - self.started_us)
        # Prefilled work landed at t=0 and would inflate the live rate.
        live_est = max(0.0, done_est - self._prefilled_est_us)
        eta_s: Optional[float]
        if remaining_est <= 0 or done_units >= total_units:
            eta_s = 0.0
        elif live_est <= 0:
            eta_s = None  # no live throughput observed yet
        else:
            rate = live_est / elapsed_us  # est-us completed per wall-us
            eta_s = round(remaining_est / rate / 1e6, 3)
        return {
            "completion": round(completion, 6),
            "units": {"done": done_units, "total": total_units},
            "eta_s": eta_s,
            "elapsed_s": round(elapsed_us / 1e6, 3),
            "cells": [
                {
                    "cell": c.key,
                    "done": c.done,
                    "units": c.units,
                    "expected_us": round(c.expected_us, 1),
                }
                for c in self.cells
            ],
            "extras": {
                k: {"done": p.done, "units": p.units}
                for k, p in sorted(self.extras.items())
            },
            "stragglers": self.stragglers(),
        }


class CampaignMonitor:
    """Owns one campaign's telemetry: spool, fold, progress, status file.

    Constructing the monitor publishes the heartbeat spool (a sibling
    directory of the status file) via the :mod:`repro.obs.stream` module
    global, so it must exist *before* the engine forks its workers.
    The engine/CLI then feed it plan and completion ticks; every
    :meth:`poll` (rate-limited to ``interval`` seconds, called freely
    from dispatch loops through :func:`repro.obs.stream.parent_poll`)
    tails the spools and atomically replaces the snapshot at
    ``status_path``.  :meth:`finish` / :meth:`fail` write the terminal
    snapshot -- with the verdict evidence rows embedded verbatim, so the
    final snapshot's ``verdicts`` equal the printed table byte-for-byte
    -- and tear the spool down.
    """

    def __init__(
        self,
        status_path: str,
        command: str = "",
        interval: float = 0.5,
        silent_after: float = 5.0,
        hb_interval: float = 0.25,
        on_snapshot=None,
        keep_spool: bool = False,
        spool_dir: Optional[str] = None,
    ) -> None:
        self.status_path = status_path
        # The daemon points every campaign monitor at its long-lived
        # fleet spool (with keep_spool=True): workers are pre-spawned
        # once and beat into a single directory across campaigns.
        self.spool_dir = (
            spool_dir if spool_dir is not None else status_path + ".spool"
        )
        self.command = command
        self.interval_us = max(0, int(interval * 1e6))
        self.silent_after_us = max(0, int(silent_after * 1e6))
        self.on_snapshot = on_snapshot
        self.keep_spool = keep_spool
        self.reader = SpoolReader(self.spool_dir)
        self.fold = StreamFold()
        self.progress = ProgressEngine()
        self.started_us = now_us()
        self.seq = 0
        self.state = "running"
        self.error: Optional[str] = None
        self.verdicts: Optional[List[dict]] = None
        self.result: Optional[dict] = None
        self._resilience: Optional[dict] = None
        self._service: Optional[dict] = None
        self._plan_claimed = False
        self._last_write_us = 0
        self._closed = False
        #: Snapshot write-latency stats (the E16 bounded-latency gate).
        self.writes = 0
        self.write_us_total = 0
        self.write_us_max = 0
        parent = os.path.dirname(os.path.abspath(status_path))
        os.makedirs(parent, exist_ok=True)
        _stream.publish(self.spool_dir, hb_interval, monitor=self)

    # -- plan ownership ------------------------------------------------

    def claim_plan(self) -> bool:
        """First caller owns the campaign plan; later engines sharing
        this monitor (e.g. chaos' per-plan engines) heartbeat and poll
        but must not tick units.  Returns ``True`` exactly once."""
        if self._plan_claimed:
            return False
        self._plan_claimed = True
        return True

    # -- delegation to the progress engine -----------------------------

    def plan(self, cells: Sequence[Tuple[str, int, float]]) -> None:
        self.progress.plan(cells)

    def prefill(self, index: int, units: int) -> None:
        self.progress.prefill(index, units)

    def add_extra(self, kind: str, units: int) -> None:
        self.progress.add_extra(kind, units)

    def unit_done(self, index: int, units: int = 1) -> None:
        self.progress.unit_done(index, units)

    def extra_done(self, kind: str, units: int = 1) -> None:
        self.progress.extra_done(kind, units)

    def observe_cell_us(self, index: int, us: float) -> None:
        self.progress.observe_cell_us(index, us)

    def attach_resilience(self, counters: dict) -> None:
        """Expose the engine's live resilience counter dict (crashes,
        timeouts, resubmits) in the snapshot's health section."""
        self._resilience = counters

    def attach_service(self, counters: dict) -> None:
        """Expose the campaign daemon's live supervision counters (lease
        reclaims, breaker transitions, fleet replacements) in the
        snapshot's health section as ``health.service``."""
        self._service = counters

    # -- snapshot ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        now = now_us()
        workers = self.fold.worker_rows(now, self.silent_after_us)
        silent = [w["id"] for w in workers if w["state"] == "silent"]
        elapsed_s = max(1e-6, (now - self.started_us) / 1e6)
        snap: Dict[str, Any] = {
            "schema": STATUS_SCHEMA,
            "clock": {"id": OBS_CLOCK, "epoch": OBS_CLOCK_EPOCH},
            "seq": self.seq,
            "ts_us": now,
            "started_us": self.started_us,
            "command": self.command,
            "state": self.state,
            "progress": self.progress.view(now),
            "workers": workers,
            "health": {
                "silent_workers": silent,
                "stalls": list(self.fold.stalls),
                "resilience": dict(self._resilience or {}),
                **(
                    {"service": dict(self._service)}
                    if self._service is not None
                    else {}
                ),
            },
            "stream": {
                "spools": self.reader.spools_seen,
                "records": self.reader.records_read,
                "dropped_lines": self.reader.dropped_lines,
                "beats": self.fold.beats,
                "duplicate_tasks_skipped": self.fold.duplicates_skipped,
            },
            "totals": dict(sorted(self.fold.totals.items())),
        }
        snap["progress"]["states_per_s"] = round(
            self.fold.states_total() / elapsed_s, 1
        )
        if self.state == "done":
            snap["progress"]["completion"] = 1.0
            snap["progress"]["eta_s"] = 0.0
        if self.verdicts is not None:
            snap["verdicts"] = self.verdicts
        if self.result is not None:
            snap["result"] = self.result
        if self.error is not None:
            snap["error"] = self.error
        return snap

    def poll(self, force: bool = False) -> Optional[Dict[str, Any]]:
        """Tail the spools and refresh the status file (rate-limited)."""
        if self._closed:
            return None
        now = now_us()
        if not force and now - self._last_write_us < self.interval_us:
            return None
        self._last_write_us = now
        self.fold.absorb(self.reader.poll())
        snap = self.snapshot()
        self.seq += 1
        snap["seq"] = self.seq
        self._write(snap)
        if self.on_snapshot is not None:
            self.on_snapshot(snap)
        return snap

    def _write(self, snap: Dict[str, Any]) -> None:
        start = now_us()
        tmp = f"{self.status_path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(snap, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.status_path)
        took = now_us() - start
        self.writes += 1
        self.write_us_total += took
        self.write_us_max = max(self.write_us_max, took)

    # -- terminal states -----------------------------------------------

    def finish(
        self,
        ok: bool = True,
        verdicts: Optional[List[dict]] = None,
        result: Optional[dict] = None,
    ) -> None:
        """Write the terminal snapshot and tear the telemetry down.

        ``verdicts`` (the evidence table rows) are embedded verbatim so
        the final snapshot's totals match the printed table exactly.
        """
        if self._closed:
            return
        self.state = "done" if ok else "failed"
        self.verdicts = verdicts
        self.result = result
        self.poll(force=True)
        self.close()

    def fail(self, error: str) -> None:
        """Write a terminal ``failed`` snapshot carrying the error."""
        if self._closed:
            return
        self.state = "failed"
        self.error = str(error)
        self.poll(force=True)
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        _stream.unpublish()
        if not self.keep_spool:
            try:
                for name in os.listdir(self.spool_dir):
                    try:
                        os.unlink(os.path.join(self.spool_dir, name))
                    except OSError:
                        pass
                os.rmdir(self.spool_dir)
            except OSError:
                pass


# ----------------------------------------------------------------------
# Rendering (shared by `repro status` and `repro top`)
# ----------------------------------------------------------------------


def _bar(fraction: float, width: int = 30) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render_status(snap: Dict[str, Any]) -> str:
    """Human-readable multi-line rendering of a status snapshot."""
    progress = snap.get("progress", {})
    completion = float(progress.get("completion", 0.0))
    units = progress.get("units", {})
    eta = progress.get("eta_s")
    if eta is None:
        eta_text = "--"
    elif eta == 0.0 and snap.get("state") != "running":
        eta_text = "done"
    else:
        eta_text = f"{eta:.1f}s"
    lines = [
        f"repro campaign: {snap.get('command') or '?'}",
        f"state: {snap.get('state')}   snapshot #{snap.get('seq')}"
        f"   elapsed {progress.get('elapsed_s', 0.0):.1f}s",
        f"{_bar(completion)} {completion * 100:6.2f}%"
        f"  ({units.get('done', 0)}/{units.get('total', 0)} units)"
        f"  eta {eta_text}"
        f"  {progress.get('states_per_s', 0.0):,.0f} states/s",
    ]
    workers = snap.get("workers", [])
    if workers:
        lines.append("")
        lines.append(
            f"{'worker':<18} {'state':<7} {'silent':>7} "
            f"{'rss':>9} task"
        )
        for row in workers:
            rss = row.get("rss_kb", 0)
            lines.append(
                f"{row.get('id', '?'):<18} {row.get('state', '?'):<7} "
                f"{row.get('silent_s', 0.0):>6.1f}s "
                f"{rss:>7}kB {row.get('task') or '-'}"
            )
    stragglers = progress.get("stragglers", [])
    if stragglers:
        lines.append("")
        lines.append("stragglers (observed > 2x predicted):")
        for s in stragglers[:5]:
            lines.append(
                f"  {s['cell']}: {s['ratio']}x"
                f" ({s['observed_us'] / 1e6:.1f}s vs"
                f" {s['predicted_us'] / 1e6:.1f}s predicted)"
            )
    health = snap.get("health", {})
    if health.get("silent_workers"):
        lines.append("")
        lines.append(
            "silent workers: " + ", ".join(health["silent_workers"])
        )
    for stall in health.get("stalls", [])[-3:]:
        lines.append("")
        lines.append(f"stall ({stall.get('worker')}):")
        for diag_line in str(stall.get("diagnosis", "")).splitlines()[:6]:
            lines.append(f"  {diag_line}")
    if snap.get("state") == "failed" and snap.get("error"):
        lines.append("")
        lines.append(f"error: {snap['error']}")
    verdicts = snap.get("verdicts")
    if verdicts is not None:
        lines.append("")
        lines.append(f"final verdict rows: {len(verdicts)}")
    return "\n".join(lines)
