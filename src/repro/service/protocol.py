"""A minimal asyncio HTTP/1.1 server (stdlib only, no frameworks).

Just enough HTTP for the campaign protocol: request line + headers +
``Content-Length`` body in, status + headers + body out, one request
per connection (``Connection: close``).  The daemon registers a single
``handler(request) -> Response`` callable; malformed requests get 400,
handler exceptions get 500 -- the daemon must never die because a
client sent garbage.

JSON helpers (:func:`json_response`, :meth:`Request.json`) cover every
endpoint; the one non-JSON surface is the events stream, which returns
pre-serialized JSONL bytes through a plain :class:`Response`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional
from urllib.parse import parse_qs, urlsplit

#: Request bodies larger than this are rejected (backpressure guard:
#: a campaign spec is a few KB; nobody needs a 100 MB one).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Total header section cap, same spirit.
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self):
        if not self.body:
            return None
        return json.loads(self.body.decode("utf-8"))


@dataclass
class Response:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


def json_response(
    status: int, payload, headers: Optional[Dict[str, str]] = None
) -> Response:
    return Response(
        status=status,
        body=(json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
        headers=dict(headers or {}),
    )


async def _read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; None on a clean EOF, ValueError on garbage."""
    try:
        header_blob = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # connection closed without a request
        raise ValueError("truncated request")
    except asyncio.LimitOverrunError:
        raise ValueError("header section too large")
    if len(header_blob) > MAX_HEADER_BYTES:
        raise ValueError("header section too large")
    lines = header_blob.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ValueError(f"bad request line: {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(split.query).items()
    }
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > MAX_BODY_BYTES:
        raise ValueError("unacceptable content-length")
    body = await reader.readexactly(length) if length else b""
    return Request(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
    )


def _render(response: Response) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}"]
    headers = {
        "content-type": response.content_type,
        "content-length": str(len(response.body)),
        "connection": "close",
    }
    headers.update(
        {name.lower(): value for name, value in response.headers.items()}
    )
    for name, value in headers.items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + response.body


async def serve(
    host: str,
    port: int,
    handler: Callable[[Request], Response],
) -> asyncio.AbstractServer:
    """Start the server; ``handler`` may be sync or async.

    Returns the ``asyncio.AbstractServer`` (the bound port is
    ``server.sockets[0].getsockname()[1]`` -- port 0 works).
    """

    async def on_connection(reader, writer):
        try:
            try:
                request = await asyncio.wait_for(
                    _read_request(reader), timeout=30.0
                )
            except (ValueError, asyncio.TimeoutError, OSError) as exc:
                writer.write(
                    _render(json_response(400, {"error": str(exc)}))
                )
                await writer.drain()
                return
            if request is None:
                return
            try:
                result = handler(request)
                if asyncio.iscoroutine(result):
                    result = await result
            except Exception as exc:
                result = json_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            writer.write(_render(result))
            await writer.drain()
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    return await asyncio.start_server(
        on_connection, host, port, limit=MAX_HEADER_BYTES + MAX_BODY_BYTES
    )
