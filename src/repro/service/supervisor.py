"""Fleet supervision: leases, reclamation, backoff, circuit breaking.

This is the robustness core of the campaign daemon.  The engine hands
its task list to :class:`FleetSession` (through the ``dispatcher`` seam
on :class:`~repro.verify.engine.VerificationEngine`), and the session
drives the shared :class:`~repro.verify.leases.TaskBoard` state machine
over the persistent worker fleet instead of a throwaway pool:

* every dispatch is a **lease** (task, generation); completions are
  first-wins and failure charges are deduplicated per lease, exactly as
  in the engine's own pool loop;
* a lease is **reclaimed** when its task times out *or* when the
  worker's heartbeat stream goes silent past ``heartbeat_timeout`` --
  the beat records workers already emit are the liveness evidence, so a
  wedged worker is caught by the telemetry plane before the (longer)
  task timeout would fire; the wedged worker is killed and replaced;
* failures feed a per-cell :class:`CircuitBreaker`
  (healthy -> suspect -> quarantined -> recovered): a quarantined
  cell's tasks run serially in the daemon process, with every K-th task
  probing the fleet so a recovered cell is promoted back;
* a task that exhausts its retry budget degrades to in-daemon serial
  execution -- the campaign always terminates with the exact serial
  output, because serial execution in the daemon runs the engine's own
  ``_execute_task`` against the context the engine published.

All supervision events land in one counters dict, surfaced as
``engine.service.*`` metrics and the status snapshot's
``health.service`` block.
"""

from __future__ import annotations

import time
from multiprocessing import connection as mp_connection
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs import stream as obs_stream
from repro.obs.tracer import now_us
from repro.verify.leases import DEGRADE, BackoffPolicy, TaskBoard


class DrainRequested(RuntimeError):
    """Raised out of a dispatch loop when the daemon is draining; every
    completed unit is already journaled, so the campaign resumes on
    restart from exactly where the drain cut it."""


# -- circuit breaker ----------------------------------------------------

HEALTHY = "healthy"
SUSPECT = "suspect"
QUARANTINED = "quarantined"


class CircuitBreaker:
    """Per-key failure circuit: healthy -> suspect -> quarantined.

    Keys are cells (``cell:<i>``) or auxiliary task families
    (``drf0:<i>``).  The first failure makes a key *suspect* (visible in
    metrics, no behavior change); ``threshold`` deduplicated failures
    quarantine it, after which its tasks run serially in the daemon --
    except every ``probe_interval``-th task, which is sent to the fleet
    as a probe.  A probe success closes the circuit (*recovered*).
    """

    def __init__(
        self,
        threshold: int = 3,
        probe_interval: int = 4,
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        self.threshold = max(1, int(threshold))
        self.probe_interval = max(1, int(probe_interval))
        self.counters: Dict[str, int] = (
            counters if counters is not None else {}
        )
        self._failures: Dict[str, int] = {}
        self._state: Dict[str, str] = {}
        self._quarantine_calls: Dict[str, int] = {}

    def _bump(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    def state(self, key: str) -> str:
        return self._state.get(key, HEALTHY)

    def record_failure(self, key: str) -> None:
        failures = self._failures.get(key, 0) + 1
        self._failures[key] = failures
        state = self.state(key)
        if state == HEALTHY:
            self._state[key] = SUSPECT
            self._bump("breaker_suspect")
        if failures >= self.threshold and state != QUARANTINED:
            self._state[key] = QUARANTINED
            self._quarantine_calls[key] = 0
            self._bump("breaker_opened")

    def record_success(self, key: str) -> None:
        state = self.state(key)
        if state == QUARANTINED:
            # Only a fleet probe can reach here; the circuit closes.
            self._state[key] = HEALTHY
            self._failures[key] = 0
            self._bump("breaker_recovered")
        elif state == SUSPECT:
            self._state[key] = HEALTHY
            self._failures[key] = 0

    def route(self, key: str) -> str:
        """``"fleet"`` or ``"serial"`` for the next task under ``key``."""
        if self.state(key) != QUARANTINED:
            return "fleet"
        calls = self._quarantine_calls.get(key, 0)
        self._quarantine_calls[key] = calls + 1
        if calls % self.probe_interval == self.probe_interval - 1:
            self._bump("breaker_probes")
            return "fleet"
        self._bump("breaker_serial_tasks")
        return "serial"


def _breaker_key(task: tuple) -> str:
    kind = task[0]
    if kind in ("run", "judge"):
        return f"cell:{task[1]}"
    if kind == "drf0":
        return f"drf0:{task[1]}"
    return kind


# -- the dispatcher seam ------------------------------------------------


class FleetDispatcher:
    """The object a daemon passes as ``VerificationEngine(dispatcher=)``.

    Campaign-scoped state (the spec shipped to workers) is set with
    :meth:`prepare` before the engine call; the engine then opens
    sessions through :meth:`session` exactly where it would have forked
    a pool.
    """

    def __init__(
        self,
        fleet,
        counters: Optional[Dict[str, int]] = None,
        task_timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff: float = 0.05,
        heartbeat_timeout: Optional[float] = None,
        breaker: Optional[CircuitBreaker] = None,
        stop_event=None,
    ) -> None:
        self.fleet = fleet
        self.counters: Dict[str, int] = (
            counters if counters is not None else {}
        )
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.heartbeat_timeout = heartbeat_timeout
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(counters=self.counters)
        )
        self.stop_event = stop_event

    def prepare(self, ctx_data: Optional[dict]) -> int:
        """Broadcast a campaign spec to the fleet; returns ack count."""
        self.fleet.ensure()
        return self.fleet.set_context(ctx_data)

    def session(self, context, engine) -> "FleetSession":
        return FleetSession(self, engine)


class FleetSession:
    """One engine call's dispatch surface over the worker fleet.

    Mirrors the engine's ``_Session`` contract (``map``,
    ``task_seconds``, ``abandoned_handles``, ``close``); the engine's
    fold/journal/store path is unchanged above it.
    """

    def __init__(self, dispatcher: FleetDispatcher, engine) -> None:
        self.dispatcher = dispatcher
        self.engine = engine
        self.task_seconds: List[float] = []
        self.abandoned_handles = 0
        #: Pids this session killed on purpose (reclaimed leases, chaos
        #: cleanup): their deaths are already charged and must not count
        #: as fresh ``worker_crashes``.
        self._expected_deaths: Set[int] = set()

    # -- helpers -------------------------------------------------------

    def _bump(self, key: str, n: int = 1) -> None:
        counters = self.dispatcher.counters
        counters[key] = counters.get(key, 0) + n

    def _heartbeat_expired(self, pid: int, submitted: float, now: float) -> bool:
        """Is this worker's beat stream silent past the lease's grace?"""
        hb_timeout = self.dispatcher.heartbeat_timeout
        if hb_timeout is None:
            return False
        monitor = getattr(self.engine, "monitor", None)
        if monitor is None:
            return False
        if now - submitted <= hb_timeout:
            return False  # the lease itself is younger than the window
        view = monitor.fold.workers.get(f"fleet-{pid}")
        if view is None or not view.last_ts:
            return True  # held a lease past the window, never beat at all
        return now_us() - view.last_ts > hb_timeout * 1e6

    # -- the dispatch loop ---------------------------------------------

    def map(self, tasks: Sequence[tuple], on_result=None) -> list:
        if not tasks:
            return []
        from repro.verify import engine as engine_mod

        dispatcher = self.dispatcher
        fleet = dispatcher.fleet
        breaker = dispatcher.breaker
        engine = self.engine
        timeout = dispatcher.task_timeout
        if timeout is None and engine is not None:
            timeout = engine.task_timeout

        board = TaskBoard(
            len(tasks),
            max_retries=dispatcher.max_retries,
            backoff=BackoffPolicy(base=dispatcher.backoff),
            counters=dispatcher.counters,
        )
        results: List[object] = [engine_mod._UNSET] * len(tasks)
        self.task_seconds = [0.0] * len(tasks)
        batch = next(engine_mod._TELEMETRY_BATCH)

        if engine is not None and engine.metrics is not None:
            for task in tasks:
                engine.metrics.counter(f"engine.tasks.{task[0]}").inc()

        def finish(index: int, value: object, seconds: float = 0.0) -> None:
            results[index] = value
            self.task_seconds[index] = seconds
            if on_result is not None:
                on_result(index, tasks[index], value)
            if engine is not None:
                engine._task_landed(tasks[index], seconds)

        def run_serial(index: int, attempt: int) -> None:
            serial_start = time.perf_counter()
            value = engine_mod._execute_task(
                tasks[index], (batch, index, attempt)
            )
            board.complete(index, attempt)
            finish(index, value, time.perf_counter() - serial_start)

        def dispose(index: int, gen: int, kind: str) -> None:
            breaker.record_failure(_breaker_key(tasks[index]))
            if board.fail(index, gen, kind, time.monotonic()) == DEGRADE:
                run_serial(index, board.attempts.get(index, 0))

        while not board.finished:
            if (
                dispatcher.stop_event is not None
                and dispatcher.stop_event.is_set()
            ):
                raise DrainRequested("daemon draining")
            now = time.monotonic()

            # 1. Reap deaths (exact attribution: we know each corpse's
            #    lease) and restore fleet strength.
            dead = fleet.reap_dead()
            for handle in dead:
                expected = handle.pid in self._expected_deaths
                self._expected_deaths.discard(handle.pid)
                if not expected:
                    self._bump("worker_crashes")
                if handle.assignment is not None:
                    index, gen, _submitted = handle.assignment
                    handle.assignment = None
                    if not expected:
                        self.abandoned_handles += 1
                        dispose(index, gen, "")
            if dead:
                fleet.ensure()

            # 2. Grant leases to idle workers (or serially, if the
            #    breaker has quarantined the task's cell).
            idle = fleet.idle_handles()
            while True:
                lease = board.grant(now)
                if lease is None:
                    break
                if breaker.route(_breaker_key(tasks[lease.task])) == "serial":
                    run_serial(lease.task, lease.gen - 1)
                    continue
                if not idle:
                    # Nothing to run it on right now; no budget charged.
                    board.requeue(lease.task, now)
                    break
                handle = idle.pop()
                tag = (batch, lease.task, lease.gen - 1)
                try:
                    handle.conn.send(
                        ("task", (lease.task, lease.gen),
                         tasks[lease.task], tag)
                    )
                except (OSError, ValueError):
                    fleet._retire(handle)
                    board.requeue(lease.task, now)
                    continue
                handle.assignment = (lease.task, lease.gen, now)

            busy = [h for h in fleet.handles if h.assignment is not None]
            if not busy:
                if board.finished:
                    break
                if not fleet.handles:
                    # The fleet is gone and cannot be rebuilt: finish
                    # everything in-daemon (graceful degradation floor).
                    for index in range(len(tasks)):
                        if not board.is_done(index):
                            self._bump("degraded_to_serial")
                            run_serial(index, board.attempts.get(index, 0))
                    continue
                not_before = board.next_not_before()
                if not_before is None:
                    for index in range(len(tasks)):
                        if not board.is_done(index):
                            self._bump("degraded_to_serial")
                            run_serial(index, board.attempts.get(index, 0))
                    continue
                time.sleep(min(max(not_before - now, 0), 0.05))
                continue

            # 3. Sleep until a reply lands or a worker dies (sentinels
            #    wake this immediately on SIGKILL -- no polling).
            mp_connection.wait(
                [h.conn for h in busy] + [h.sentinel for h in busy],
                timeout=0.05,
            )
            obs_stream.parent_poll()

            # 4. Drain replies.
            for handle in busy:
                if handle.assignment is None or not handle.alive():
                    continue
                try:
                    while handle.conn.poll():
                        reply = handle.conn.recv()
                        self._absorb_reply(
                            handle, reply, board, breaker, tasks,
                            finish, dispose,
                        )
                        if handle.assignment is None:
                            break
                except (EOFError, OSError):
                    continue  # death; reaped at the top of the next turn

            # 5. Reclaim expired leases: task timeout or heartbeat
            #    silence.  The holder is wedged -- kill and replace it.
            scan_now = time.monotonic()
            for handle in busy:
                if handle.assignment is None or not handle.alive():
                    continue
                index, gen, submitted = handle.assignment
                timed_out = (
                    timeout is not None and scan_now - submitted > timeout
                )
                hb_dead = self._heartbeat_expired(
                    handle.pid, submitted, scan_now
                )
                if not (timed_out or hb_dead):
                    continue
                handle.assignment = None
                self.abandoned_handles += 1
                self._bump("leases_reclaimed")
                self._expected_deaths.add(handle.pid)
                fleet.kill(handle.pid)
                dispose(
                    index, gen,
                    "task_timeouts" if timed_out else "heartbeat_expiries",
                )
        return results

    def _absorb_reply(
        self, handle, reply, board, breaker, tasks, finish, dispose
    ) -> None:
        kind = reply[0]
        if kind not in ("ok", "err") or handle.assignment is None:
            return  # stray ack (rotate/ping) or reply for a reclaimed lease
        task_id = reply[1]
        index, gen, submitted = handle.assignment
        if task_id != (index, gen):
            return  # stale reply from a superseded lease; ignore
        handle.assignment = None
        if kind == "ok":
            breaker.record_success(_breaker_key(tasks[index]))
            if board.complete(index, gen):
                finish(index, reply[2], time.monotonic() - submitted)
        else:
            dispose(index, gen, "task_errors")

    def close(self) -> None:
        """End-of-map hygiene: no worker may carry a stale assignment or
        a buffered stale reply into the next engine call."""
        fleet = self.dispatcher.fleet
        for handle in list(fleet.handles):
            if handle.assignment is not None:
                # Still chewing on an abandoned lease (drain/interrupt):
                # the worker cannot be reused mid-task.
                self._expected_deaths.add(handle.pid)
                fleet.kill(handle.pid)
                handle.assignment = None
                continue
            try:
                while handle.conn.poll():
                    handle.conn.recv()
            except (EOFError, OSError):
                pass
        fleet.reap_dead()
        fleet.ensure()
