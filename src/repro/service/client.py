"""Stdlib client for the campaign daemon's HTTP protocol.

Drives every endpoint the daemon serves; the ``repro submit`` /
``repro campaigns`` CLI subcommands and the tests are its only users.
The client resolves the daemon either from an explicit ``host:port`` or
from the ``endpoint.json`` the daemon writes into its state directory
(the natural handshake when the daemon was started with ``--port 0``).

Backpressure is a first-class outcome, not an exception to hide: a 429
raises :class:`ServiceError` with ``status == 429`` and the daemon's
``Retry-After`` seconds in :attr:`ServiceError.retry_after`, so callers
can implement honest client-side backoff (``submit`` does).
"""

from __future__ import annotations

import http.client
import json
import os
import time
from typing import Any, Dict, List, Optional


class ServiceError(RuntimeError):
    """An HTTP-level failure talking to the daemon."""

    def __init__(
        self,
        message: str,
        status: int = 0,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def read_endpoint(state_dir: str) -> Dict[str, Any]:
    """Load ``endpoint.json`` from a daemon state directory."""
    path = os.path.join(state_dir, "endpoint.json")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise ServiceError(
            f"no daemon endpoint at {path} (is the daemon running?): {exc}"
        )


class ServiceClient:
    """One daemon connection (a fresh HTTP connection per request)."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    @staticmethod
    def from_state_dir(
        state_dir: str, timeout: float = 30.0
    ) -> "ServiceClient":
        endpoint = read_endpoint(state_dir)
        return ServiceClient(
            endpoint.get("host", "127.0.0.1"),
            int(endpoint["port"]),
            timeout=timeout,
        )

    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Any:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach daemon at {self.host}:{self.port}: {exc}"
                )
            decoded: Any = None
            if data:
                try:
                    decoded = json.loads(data.decode("utf-8"))
                except ValueError:
                    decoded = data.decode("utf-8", "replace")
            if response.status >= 400:
                retry_after = response.getheader("Retry-After")
                message = (
                    decoded.get("error", str(decoded))
                    if isinstance(decoded, dict)
                    else str(decoded)
                )
                raise ServiceError(
                    f"{method} {path} -> {response.status}: {message}",
                    status=response.status,
                    retry_after=(
                        float(retry_after) if retry_after else None
                    ),
                )
            return decoded
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, spec: dict) -> dict:
        """Submit a campaign spec; returns ``{"id", "signature", ...}``."""
        return self._request("POST", "/campaigns", payload=spec)

    def submit_with_backoff(
        self, spec: dict, attempts: int = 10, max_wait: float = 60.0
    ) -> dict:
        """Submit, honoring 429 + Retry-After with bounded retries."""
        waited = 0.0
        for attempt in range(attempts):
            try:
                return self.submit(spec)
            except ServiceError as exc:
                if exc.status != 429 or attempt == attempts - 1:
                    raise
                delay = min(
                    exc.retry_after
                    if exc.retry_after is not None
                    else 0.5 * (attempt + 1),
                    max(0.0, max_wait - waited),
                )
                if delay <= 0:
                    raise
                time.sleep(delay)
                waited += delay
        raise ServiceError("submit retries exhausted", status=429)

    def campaigns(self) -> List[dict]:
        return self._request("GET", "/campaigns")["campaigns"]

    def campaign(self, campaign_id: str) -> dict:
        return self._request("GET", f"/campaigns/{campaign_id}")

    def result(self, campaign_id: str) -> dict:
        return self._request("GET", f"/campaigns/{campaign_id}/result")

    def events(self, campaign_id: str) -> List[dict]:
        """The campaign's status-snapshot history as parsed JSONL."""
        raw = self._request("GET", f"/campaigns/{campaign_id}/events")
        if isinstance(raw, (dict, list)):
            return raw if isinstance(raw, list) else [raw]
        return [
            json.loads(line)
            for line in str(raw).splitlines()
            if line.strip()
        ]

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    def wait(
        self,
        campaign_id: str,
        timeout: float = 300.0,
        poll: float = 0.2,
    ) -> dict:
        """Poll until the campaign reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            info = self.campaign(campaign_id)
            if info.get("state") in ("done", "failed"):
                return info
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"campaign {campaign_id} still {info.get('state')!r} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)
