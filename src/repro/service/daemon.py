"""The campaign daemon: queueing, execution, drain, resume, retention.

One asyncio loop serves the HTTP protocol; campaigns execute
sequentially in a worker thread, each as a full
``VerificationEngine.definition2_sweep`` with the supervised fleet as
its dispatcher.  The daemon adds the service semantics around that
engine call:

* **queueing + backpressure** -- submissions past ``queue_limit``
  pending campaigns are rejected with 429 and a ``Retry-After`` hint
  (the daemon never buffers unboundedly);
* **graceful drain** -- SIGTERM/SIGINT (or ``POST /shutdown``) stops
  intake, interrupts the running campaign between leases
  (:class:`~repro.service.supervisor.DrainRequested`), and exits; every
  completed unit is already in the campaign's checkpoint journal;
* **restart resume** -- on startup, campaign specs without a terminal
  result are re-enqueued and their journals resumed (the engine's
  signature check guarantees a journal only ever splices into the spec
  it was written for), so a SIGKILLed daemon restarted on the same
  state directory finishes mid-flight campaigns with bit-identical
  evidence;
* **repeat queries** -- all campaigns share one content-addressed
  :class:`~repro.verify.store.VerdictStore`, so resubmitting a spec
  answers almost entirely from disk;
* **retention GC** -- after each terminal campaign, journals beyond the
  newest ``keep_journals`` terminal campaigns are deleted
  (:func:`repro.verify.journal.journal_files` -- base + continuation
  segments) and the fleet's heartbeat spool is rotated and pruned
  (:func:`repro.obs.stream.prune_spool_dir`), so daemon state stays
  bounded across thousands of campaigns.

State directory layout::

    endpoint.json              host/port/pid (written after bind; the
                               ``--port 0`` handshake)
    store/                     shared verdict store segments
    fleet-spool/               long-lived worker heartbeat spool
    campaigns/<id>.json        submitted spec (the resume source)
    campaigns/<id>.status.json live repro-status/1 snapshot
    campaigns/<id>.events.jsonl  snapshot history (the events feed)
    campaigns/<id>.journal[.seg-N]  checkpoint journal
    campaigns/<id>.result.json terminal result (evidence + metrics)
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
from typing import Dict, List, Optional

from repro.obs.progress import CampaignMonitor
from repro.obs.stream import prune_spool_dir
from repro.obs.tracer import now_us
from repro.service import protocol
from repro.service.campaigns import CampaignError, CampaignSpec
from repro.service.fleet import Fleet
from repro.service.protocol import Request, Response, json_response
from repro.service.supervisor import (
    CircuitBreaker,
    DrainRequested,
    FleetDispatcher,
)
from repro.verify.engine import VerificationEngine
from repro.verify.journal import journal_files
from repro.verify.store import VerdictStore

#: Campaign record states (a superset of the snapshot's enum: ``queued``
#: exists only daemon-side, before a monitor is born).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class _CampaignRecord:
    __slots__ = ("id", "spec", "state", "error", "submitted_us")

    def __init__(self, cid: str, spec: CampaignSpec, submitted_us: int) -> None:
        self.id = cid
        self.spec = spec
        self.state = QUEUED
        self.error: Optional[str] = None
        self.submitted_us = submitted_us


def _atomic_write_json(path: str, payload: dict) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


class CampaignDaemon:
    """``repro serve``: the fault-tolerant verification service."""

    def __init__(
        self,
        state_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_limit: int = 8,
        task_timeout: Optional[float] = 60.0,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        heartbeat_timeout: Optional[float] = None,
        keep_journals: int = 3,
        hb_interval: float = 0.05,
        breaker_threshold: int = 3,
        seed_chunk: Optional[int] = None,
    ) -> None:
        self.state_dir = os.path.abspath(state_dir)
        self.campaigns_dir = os.path.join(self.state_dir, "campaigns")
        self.fleet_spool = os.path.join(self.state_dir, "fleet-spool")
        self.host = host
        self.port = int(port)
        self.workers = max(1, int(workers))
        self.queue_limit = max(1, int(queue_limit))
        self.keep_journals = max(0, int(keep_journals))
        self.hb_interval = hb_interval
        self.seed_chunk = seed_chunk
        #: One flat dict every supervision layer bumps into -- surfaced
        #: as ``engine.service.*`` metrics and ``health.service``.
        self.counters: Dict[str, int] = {}
        self.stop_event = threading.Event()
        self.fleet = Fleet(
            self.workers,
            spool_dir=self.fleet_spool,
            hb_interval=hb_interval,
            counters=self.counters,
        )
        self.dispatcher = FleetDispatcher(
            self.fleet,
            counters=self.counters,
            task_timeout=task_timeout,
            max_retries=max_retries,
            backoff=retry_backoff,
            heartbeat_timeout=heartbeat_timeout,
            breaker=CircuitBreaker(
                threshold=breaker_threshold, counters=self.counters
            ),
            stop_event=self.stop_event,
        )
        self.store = VerdictStore(os.path.join(self.state_dir, "store"))
        self.records: Dict[str, _CampaignRecord] = {}
        self.order: List[str] = []
        self._counter = 1
        self._draining = False
        self._wake: Optional[asyncio.Event] = None
        self._drained: Optional[asyncio.Event] = None
        self.bound_port: Optional[int] = None

    def _bump(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    # -- paths ---------------------------------------------------------

    def _spec_path(self, cid: str) -> str:
        return os.path.join(self.campaigns_dir, f"{cid}.json")

    def _status_path(self, cid: str) -> str:
        return os.path.join(self.campaigns_dir, f"{cid}.status.json")

    def _events_path(self, cid: str) -> str:
        return os.path.join(self.campaigns_dir, f"{cid}.events.jsonl")

    def _journal_path(self, cid: str) -> str:
        return os.path.join(self.campaigns_dir, f"{cid}.journal")

    def _result_path(self, cid: str) -> str:
        return os.path.join(self.campaigns_dir, f"{cid}.result.json")

    # -- startup / resume ----------------------------------------------

    def _scan_state_dir(self) -> None:
        """Rebuild the campaign table from disk (the restart path).

        A spec with a terminal result is recorded as finished; a spec
        without one -- the daemon died or drained mid-flight -- is
        re-enqueued, and its surviving journal makes the re-run a
        resume.
        """
        os.makedirs(self.campaigns_dir, exist_ok=True)
        entries = []
        for name in os.listdir(self.campaigns_dir):
            if not name.endswith(".json") or "." in name[:-5]:
                continue
            path = os.path.join(self.campaigns_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                spec = CampaignSpec.from_dict(payload["spec"])
            except (OSError, ValueError, KeyError, CampaignError):
                continue  # unreadable spec: skip, never crash startup
            cid = payload.get("id", name[:-5])
            entries.append(
                (int(payload.get("submitted_us", 0)), cid, spec)
            )
        entries.sort()
        for submitted_us, cid, spec in entries:
            record = _CampaignRecord(cid, spec, submitted_us)
            if os.path.exists(self._result_path(cid)):
                try:
                    with open(
                        self._result_path(cid), "r", encoding="utf-8"
                    ) as handle:
                        result = json.load(handle)
                    record.state = FAILED if "error" in result else DONE
                    record.error = result.get("error")
                except (OSError, ValueError):
                    record.state = QUEUED  # torn result: re-run
            if record.state == QUEUED:
                self._bump("campaigns_requeued_on_start")
            self.records[cid] = record
            self.order.append(cid)
            # ids are "c<counter>-<sig>"; keep the counter monotone.
            head = cid.split("-", 1)[0]
            if head.startswith("c") and head[1:].isdigit():
                self._counter = max(self._counter, int(head[1:]) + 1)

    # -- campaign execution (worker thread) ------------------------------

    def _pending(self) -> List[str]:
        return [
            cid
            for cid in self.order
            if self.records[cid].state in (QUEUED, RUNNING)
        ]

    def _run_campaign(self, cid: str) -> None:
        record = self.records[cid]
        spec = record.spec
        events_path = self._events_path(cid)

        def on_snapshot(snap: dict) -> None:
            try:
                with open(events_path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(snap, sort_keys=True) + "\n")
            except OSError:
                pass

        monitor = CampaignMonitor(
            self._status_path(cid),
            command=f"serve {cid}",
            spool_dir=self.fleet_spool,
            keep_spool=True,
            hb_interval=self.hb_interval,
            on_snapshot=on_snapshot,
        )
        monitor.attach_service(self.counters)
        try:
            programs, factories, config, _failpoints = spec.resolve()
            self.dispatcher.prepare(spec.worker_context_data())
            journal_path = self._journal_path(cid)
            resume = bool(journal_files(journal_path))
            if resume:
                self._bump("campaigns_resumed")
            engine = VerificationEngine(
                jobs=self.workers,
                seed_chunk=self.seed_chunk,
                store=self.store,
                monitor=monitor,
                dispatcher=self.dispatcher,
                task_timeout=self.dispatcher.task_timeout,
                max_task_retries=self.dispatcher.max_retries,
                retry_backoff=self.dispatcher.backoff,
            )
            evidence = engine.definition2_sweep(
                programs,
                factories,
                config=config,
                seeds=range(spec.seeds),
                drf0_seeds=range(spec.drf0_seeds),
                exhaustive_drf0=spec.exhaustive_drf0,
                check_51_conditions=spec.check_51,
                journal_path=journal_path,
                resume=resume,
            )
            holds = evidence.contract_holds
            metrics = engine.metrics_snapshot().as_dict()
            result = {
                "id": cid,
                "signature": spec.signature(),
                "contract_holds": holds,
                "rows": evidence.rows,
                "resumed": resume,
                "metrics": metrics,
                "service": dict(self.counters),
                "finished_us": now_us(),
            }
            _atomic_write_json(self._result_path(cid), result)
            monitor.finish(
                ok=holds,
                verdicts=evidence.rows,
                result={"contract_holds": holds, "id": cid},
            )
            record.state = DONE
            self._bump("campaigns_completed")
        except DrainRequested:
            # Checkpointed mid-flight: everything completed is in the
            # journal; the restart scan re-enqueues and resumes.
            record.state = QUEUED
            monitor.fail(
                "drain: campaign checkpointed, resumes on daemon restart"
            )
            self._bump("campaigns_drained")
        except Exception as exc:  # a campaign must never kill the daemon
            record.state = FAILED
            record.error = f"{type(exc).__name__}: {exc}"
            _atomic_write_json(
                self._result_path(cid),
                {
                    "id": cid,
                    "signature": spec.signature(),
                    "error": record.error,
                    "finished_us": now_us(),
                },
            )
            monitor.fail(record.error)
            self._bump("campaigns_failed")
        finally:
            monitor.close()
            self._retention_gc()

    def _retention_gc(self) -> None:
        """Bound daemon state: prune old journals and spool slots."""
        terminal = [
            cid
            for cid in self.order
            if self.records[cid].state in (DONE, FAILED)
            and os.path.exists(self._result_path(cid))
        ]
        if self.keep_journals:
            doomed = terminal[: -self.keep_journals]
        else:
            doomed = terminal
        pruned = 0
        for cid in doomed:
            for path in journal_files(self._journal_path(cid)):
                try:
                    os.unlink(path)
                    pruned += 1
                except OSError:
                    pass
        if pruned:
            self._bump("journal_files_pruned", pruned)
        # Rotate every live writer off its slot, then delete everything:
        # closed slots only, and each campaign's monitor starts its fold
        # from a clean directory (no stale totals bleeding across).
        self.fleet.rotate_spools()
        removed = prune_spool_dir(
            self.fleet_spool,
            keep_per_pid=0,
            live_pids=self.fleet.live_pids() | {os.getpid()},
        )
        if removed:
            self._bump("spool_files_pruned", removed)

    # -- HTTP surface ----------------------------------------------------

    def _handle(self, request: Request) -> Response:
        path = request.path.rstrip("/") or "/"
        if path == "/healthz" and request.method == "GET":
            return self._get_health()
        if path == "/campaigns":
            if request.method == "POST":
                return self._post_campaign(request)
            if request.method == "GET":
                return self._get_campaigns()
            return json_response(405, {"error": "GET or POST"})
        if path == "/shutdown" and request.method == "POST":
            self._begin_drain()
            return json_response(202, {"draining": True})
        if path.startswith("/campaigns/"):
            rest = path[len("/campaigns/"):]
            cid, _, leaf = rest.partition("/")
            if cid not in self.records:
                return json_response(
                    404, {"error": f"unknown campaign {cid!r}"}
                )
            if request.method != "GET":
                return json_response(405, {"error": "GET only"})
            if not leaf:
                return self._get_campaign(cid)
            if leaf == "result":
                return self._get_result(cid)
            if leaf == "events":
                return self._get_events(cid)
        return json_response(404, {"error": f"no route {request.path!r}"})

    def _get_health(self) -> Response:
        states: Dict[str, int] = {}
        for record in self.records.values():
            states[record.state] = states.get(record.state, 0) + 1
        return json_response(
            200,
            {
                "ok": True,
                "pid": os.getpid(),
                "draining": self._draining,
                "workers": len(self.fleet.handles),
                "worker_pids": sorted(self.fleet.live_pids()),
                "campaigns": states,
                "service": dict(self.counters),
            },
        )

    def _post_campaign(self, request: Request) -> Response:
        if self._draining:
            return json_response(503, {"error": "daemon draining"})
        pending = len(self._pending())
        if pending >= self.queue_limit:
            self._bump("rejected_backpressure")
            # Honest hint: campaigns run sequentially, so the wait
            # scales with the queue depth ahead of this client.
            return json_response(
                429,
                {"error": f"queue full ({pending} pending)"},
                headers={"Retry-After": str(max(1, pending))},
            )
        try:
            payload = request.json()
            spec = CampaignSpec.from_dict(payload)
            spec.resolve()  # unknown program/policy names are client errors
        except (ValueError, CampaignError) as exc:
            return json_response(400, {"error": str(exc)})
        signature = spec.signature()
        cid = f"c{self._counter}-{signature[:12]}"
        self._counter += 1
        record = _CampaignRecord(cid, spec, now_us())
        self.records[cid] = record
        self.order.append(cid)
        _atomic_write_json(
            self._spec_path(cid),
            {
                "id": cid,
                "spec": spec.to_dict(),
                "signature": signature,
                "submitted_us": record.submitted_us,
            },
        )
        self._bump("campaigns_accepted")
        if self._wake is not None:
            self._wake.set()
        return json_response(
            202,
            {
                "id": cid,
                "signature": signature,
                "state": record.state,
                "position": pending,
            },
        )

    def _campaign_info(self, cid: str) -> dict:
        record = self.records[cid]
        info = {
            "id": cid,
            "state": record.state,
            "signature": record.spec.signature(),
            "submitted_us": record.submitted_us,
        }
        if record.error:
            info["error"] = record.error
        try:
            with open(
                self._status_path(cid), "r", encoding="utf-8"
            ) as handle:
                snap = json.load(handle)
            info["progress"] = snap.get("progress", {}).get("completion")
            info["snapshot_seq"] = snap.get("seq")
        except (OSError, ValueError):
            pass
        return info

    def _get_campaigns(self) -> Response:
        return json_response(
            200,
            {"campaigns": [self._campaign_info(cid) for cid in self.order]},
        )

    def _get_campaign(self, cid: str) -> Response:
        return json_response(200, self._campaign_info(cid))

    def _get_result(self, cid: str) -> Response:
        try:
            with open(
                self._result_path(cid), "r", encoding="utf-8"
            ) as handle:
                return Response(status=200, body=handle.read().encode())
        except OSError:
            return json_response(
                404,
                {
                    "error": f"campaign {cid} has no result yet",
                    "state": self.records[cid].state,
                },
            )

    def _get_events(self, cid: str) -> Response:
        try:
            with open(self._events_path(cid), "rb") as handle:
                return Response(
                    status=200,
                    body=handle.read(),
                    content_type="application/jsonl",
                )
        except OSError:
            return Response(status=200, body=b"", content_type="application/jsonl")

    # -- lifecycle -------------------------------------------------------

    def _begin_drain(self) -> None:
        if self._draining:
            return
        self._draining = True
        self.stop_event.set()
        if self._wake is not None:
            self._wake.set()

    async def _runner(self) -> None:
        """Sequential campaign consumer (runs campaigns off-loop)."""
        loop = asyncio.get_running_loop()
        while not self._draining:
            next_id = None
            for cid in self.order:
                if self.records[cid].state == QUEUED:
                    next_id = cid
                    break
            if next_id is None:
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=0.5)
                except asyncio.TimeoutError:
                    pass
                continue
            self.records[next_id].state = RUNNING
            await loop.run_in_executor(None, self._run_campaign, next_id)
        self._drained.set()

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._drained = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._begin_drain)
            except (NotImplementedError, RuntimeError):
                pass
        server = await protocol.serve(self.host, self.port, self._handle)
        self.bound_port = server.sockets[0].getsockname()[1]
        _atomic_write_json(
            os.path.join(self.state_dir, "endpoint.json"),
            {
                "host": self.host,
                "port": self.bound_port,
                "pid": os.getpid(),
                "started_us": now_us(),
            },
        )
        runner = asyncio.ensure_future(self._runner())
        try:
            await self._drained.wait()
        finally:
            runner.cancel()
            server.close()
            await server.wait_closed()

    def serve_forever(self) -> int:
        """Blocking entry point (the ``repro serve`` command body)."""
        os.makedirs(self.state_dir, exist_ok=True)
        os.makedirs(self.campaigns_dir, exist_ok=True)
        os.makedirs(self.fleet_spool, exist_ok=True)
        self._scan_state_dir()
        # Fork the fleet before the event loop spins up any threads.
        self.fleet.start()
        try:
            asyncio.run(self._main())
        finally:
            self.fleet.stop()
            try:
                os.unlink(os.path.join(self.state_dir, "endpoint.json"))
            except OSError:
                pass
        return 0
