"""Campaign specs: the JSON documents the daemon accepts and executes.

A campaign is exactly a ``definition2_sweep`` call by name: a program
corpus (litmus/workload names), a policy grid (policy registry names),
a hardware config, and seed ranges.  Everything is name-based and
JSON-round-trippable so specs can cross the HTTP protocol, be persisted
in the daemon's state directory, and be resolved *independently* by the
daemon (for the engine and its serial-degradation path) and by each
fleet worker (which was spawned before the campaign existed and cannot
inherit anything by fork).

Content signature: :meth:`CampaignSpec.signature` hashes the canonical
JSON form.  The daemon embeds it in campaign ids and the checkpoint
journal is keyed by the engine's own sweep signature derived from the
resolved inputs -- so a restarted daemon can only ever resume a journal
that matches the spec it was written for.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.machine.program import Program
from repro.sim.system import SystemConfig


class CampaignError(ValueError):
    """The spec is malformed or references unknown names (client error)."""


#: SystemConfig fields a spec's ``config`` object may set directly.
_CONFIG_FIELDS = (
    "topology",
    "caches",
    "coherence",
    "seed",
    "bus_latency",
    "net_latency",
    "net_jitter",
    "fifo_per_pair",
    "mem_latency",
    "hit_latency",
    "local_cycle",
    "write_buffer",
    "wb_drain_delay",
    "cache_capacity",
    "reserved_miss_limit",
    "remote_sync_nack",
    "nack_retry_delay",
    "max_events",
    "watchdog_cycles",
)


def config_from_dict(data: Optional[dict]) -> SystemConfig:
    """Build a :class:`SystemConfig` from a spec's ``config`` object.

    Plain fields map one-to-one; the fault plan is named (``faults`` +
    optional ``fault_seed``) and resolved through the
    :data:`~repro.sim.faults.FAULT_PLANS` registry -- the same path the
    CLI's ``--faults`` flag takes, so a daemon campaign under
    ``delay-storm`` is *the same* delay-storm.
    """
    data = dict(data or {})
    plan_name = data.pop("faults", None)
    fault_seed = data.pop("fault_seed", None)
    unknown = set(data) - set(_CONFIG_FIELDS)
    if unknown:
        raise CampaignError(
            f"unknown config fields: {', '.join(sorted(unknown))}"
        )
    fault_plan = None
    if plan_name is not None:
        from repro.sim.faults import FAULT_PLANS

        if plan_name not in FAULT_PLANS:
            raise CampaignError(
                f"unknown fault plan {plan_name!r} "
                f"(known: {', '.join(sorted(FAULT_PLANS))})"
            )
        fault_plan = FAULT_PLANS[plan_name]
        if fault_seed is not None:
            fault_plan = fault_plan.with_seed(int(fault_seed))
    try:
        return SystemConfig(fault_plan=fault_plan, **data)
    except TypeError as exc:
        raise CampaignError(f"bad config: {exc}")


def resolve_program(name: str) -> Program:
    """Name -> Program via the workload and litmus registries."""
    from repro.cli import WORKLOAD_FACTORIES
    from repro.litmus import by_name

    if name in WORKLOAD_FACTORIES:
        return WORKLOAD_FACTORIES[name]()
    try:
        return by_name(name).program
    except KeyError:
        raise CampaignError(f"unknown program {name!r}")


def resolve_policies(names: List[str]) -> Dict[str, Callable[[], object]]:
    from repro.hw import POLICY_FACTORIES

    factories: Dict[str, Callable[[], object]] = {}
    for name in names:
        if name not in POLICY_FACTORIES:
            raise CampaignError(
                f"unknown policy {name!r} "
                f"(known: {', '.join(sorted(POLICY_FACTORIES))})"
            )
        factories[name] = POLICY_FACTORIES[name]
    return factories


@dataclass(frozen=True)
class CampaignSpec:
    """One verification campaign, exactly as submitted.

    ``failpoints`` is chaos-test plumbing: each entry
    ``{"task_kind", "mode", "token"}`` becomes an engine
    :class:`~repro.verify.engine.Failpoint` inside every fleet worker
    (token-claimed, so each fires exactly once across the fleet) --
    how the kill-chaos tests inject deterministic worker deaths into a
    live daemon without patching it.
    """

    programs: Tuple[str, ...]
    policies: Tuple[str, ...]
    seeds: int = 20
    drf0_seeds: int = 30
    exhaustive_drf0: bool = False
    check_51: bool = False
    config: dict = field(default_factory=dict)
    failpoints: Tuple[dict, ...] = ()

    # -- wire format ---------------------------------------------------

    @staticmethod
    def from_dict(data: dict) -> "CampaignSpec":
        if not isinstance(data, dict):
            raise CampaignError("spec must be a JSON object")
        programs = data.get("programs")
        policies = data.get("policies")
        if not programs or not isinstance(programs, list):
            raise CampaignError("spec needs a non-empty 'programs' list")
        if not policies or not isinstance(policies, list):
            raise CampaignError("spec needs a non-empty 'policies' list")
        try:
            seeds = int(data.get("seeds", 20))
            drf0_seeds = int(data.get("drf0_seeds", 30))
        except (TypeError, ValueError):
            raise CampaignError("'seeds' / 'drf0_seeds' must be integers")
        if seeds <= 0:
            raise CampaignError("'seeds' must be positive")
        failpoints = []
        for entry in data.get("failpoints", ()):
            if not isinstance(entry, dict) or not entry.get("token"):
                raise CampaignError(
                    "failpoints entries need task_kind/mode/token"
                )
            failpoints.append(
                {
                    "task_kind": str(entry.get("task_kind", "*")),
                    "mode": str(entry.get("mode", "crash")),
                    "token": str(entry["token"]),
                }
            )
        spec = CampaignSpec(
            programs=tuple(str(n) for n in programs),
            policies=tuple(str(n) for n in policies),
            seeds=seeds,
            drf0_seeds=drf0_seeds,
            exhaustive_drf0=bool(data.get("exhaustive_drf0", False)),
            check_51=bool(data.get("check_51", False)),
            config=dict(data.get("config") or {}),
            failpoints=tuple(failpoints),
        )
        spec.resolve_config()  # validate the config names eagerly
        return spec

    def to_dict(self) -> dict:
        return {
            "programs": list(self.programs),
            "policies": list(self.policies),
            "seeds": self.seeds,
            "drf0_seeds": self.drf0_seeds,
            "exhaustive_drf0": self.exhaustive_drf0,
            "check_51": self.check_51,
            "config": dict(self.config),
            "failpoints": [dict(f) for f in self.failpoints],
        }

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def signature(self) -> str:
        """Content hash of the spec (failpoints included: a chaos run is
        a different campaign than a clean one)."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    # -- resolution ----------------------------------------------------

    def resolve_config(self) -> SystemConfig:
        return config_from_dict(self.config)

    def resolve(self):
        """(programs, policy factories, config, failpoints) -- the exact
        arguments of the ``definition2_sweep`` this spec describes."""
        from repro.verify.engine import Failpoint

        programs = [resolve_program(name) for name in self.programs]
        factories = resolve_policies(list(self.policies))
        config = self.resolve_config()
        failpoints = tuple(
            Failpoint(f["task_kind"], f["mode"], f["token"])
            for f in self.failpoints
        )
        return programs, factories, config, failpoints

    def worker_context_data(self) -> dict:
        """The picklable campaign description shipped to fleet workers
        (they re-resolve every name on their side)."""
        return self.to_dict()


def build_task_context(data: dict):
    """Worker-side: spec dict -> the engine ``_TaskContext``.

    Cells are ordered ``programs x policies`` -- the same nesting
    :meth:`~repro.verify.engine.VerificationEngine.definition2_sweep`
    uses -- so the cell indices inside engine task tuples mean the same
    thing in every process.
    """
    from repro.verify import engine as engine_mod

    spec = CampaignSpec.from_dict(data)
    programs, factories, config, failpoints = spec.resolve()
    cells = tuple(
        engine_mod._SweepCell(program, factory, config, spec.check_51)
        for program in programs
        for factory in factories.values()
    )
    return engine_mod._TaskContext(
        cells=cells,
        programs=tuple(programs),
        exhaustive_drf0=spec.exhaustive_drf0,
        drf0_seeds=tuple(range(spec.drf0_seeds)),
        failpoints=failpoints,
    )
