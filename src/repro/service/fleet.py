"""The daemon's persistent worker fleet.

The batch engine forks a fresh pool per call and lets workers inherit
the (unpicklable) task context by address-space copy.  A daemon cannot:
its workers outlive any single campaign, so everything they need must
cross a pipe.  The bridge is the name-based campaign spec
(:mod:`repro.service.campaigns`): workers receive the spec dict, resolve
it locally into the engine's ``_TaskContext``, and then execute the
engine's **own** ``_execute_task`` on the engine's own task tuples --
the values that come back are byte-for-byte the values a pool worker
would have produced, which is what keeps daemon campaigns bit-identical
to ``repro sweep``.

Transport is one duplex :func:`multiprocessing.Pipe` per worker,
request/response framed as small tuples (see :func:`_worker_main`).
Death is observable without polling: every worker's
``Process.sentinel`` joins the ``connection.wait`` the supervisor
blocks on, so a SIGKILLed worker wakes the dispatch loop immediately.

Workers fire engine :class:`~repro.verify.engine.Failpoint` tokens
(they are children of the daemon, so ``multiprocessing.parent_process``
is set), which is how the chaos tests kill daemon workers mid-campaign
deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from typing import Dict, List, Optional, Set

from repro.obs import stream as obs_stream

#: Heartbeat role for fleet workers (``fleet-<pid>`` worker ids in the
#: status snapshot's worker table).
FLEET_ROLE = "fleet"

#: Exit code a worker returns on a clean ``exit`` request.
_CLEAN_EXIT = 0


def _worker_main(
    conn,
    inherited_fds: List[int],
    spool_dir: Optional[str],
    hb_interval: float,
) -> None:
    """Fleet worker loop: resolve campaign contexts, execute engine tasks.

    Protocol (one reply per request, in order):

    * ``("ctx", spec_dict)``    -> ``("ctx-ok",)`` | ``("ctx-err", msg)``
    * ``("task", tid, task, tag)`` -> ``("ok", tid, value)`` |
      ``("err", tid, msg)``
    * ``("rotate",)``           -> ``("rotate-ok",)``  (new spool slot)
    * ``("ping",)``             -> ``("pong", pid)``
    * ``("exit",)``             -> no reply; the worker returns.

    A ``crash``-mode failpoint never replies (``os._exit`` inside the
    task); the parent sees the sentinel fire and the pipe go dead.

    ``inherited_fds`` are the daemon-side pipe ends this fork inherited
    (every sibling's, plus its own).  They must be closed here: a worker
    holding a copy of a sibling's daemon-side end keeps that sibling's
    ``recv`` from ever seeing EOF, so a SIGKILLed daemon would leave the
    whole fleet orphaned forever instead of self-terminating.
    """
    for fd in inherited_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the daemon owns Ctrl-C
    if spool_dir is not None:
        # Workers are spawned before any campaign monitor exists, so they
        # publish the stream themselves; the per-campaign monitors tail
        # this same long-lived directory.
        obs_stream.publish(spool_dir, hb_interval)
        writer = obs_stream.worker_writer(role=FLEET_ROLE)
        if writer is not None:
            writer.beat(task=None, force=True)

    from repro.service.campaigns import build_task_context
    from repro.verify import engine as engine_mod

    def reply(message) -> bool:
        """Send a reply; False means the daemon is gone (orphan exit)."""
        try:
            conn.send(message)
            return True
        except (OSError, ValueError):
            return False

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "exit":
            writer = obs_stream.worker_writer(role=FLEET_ROLE)
            if writer is not None:
                writer.close()
            return
        if kind == "ping":
            sent = reply(("pong", os.getpid()))
        elif kind == "rotate":
            writer = obs_stream.worker_writer(role=FLEET_ROLE)
            if writer is not None:
                writer.rotate()
            sent = reply(("rotate-ok",))
        elif kind == "ctx":
            try:
                engine_mod._TASK_CONTEXT = build_task_context(message[1])
            except Exception as exc:
                sent = reply(("ctx-err", f"{type(exc).__name__}: {exc}"))
            else:
                sent = reply(("ctx-ok",))
        elif kind == "task":
            _kind, task_id, task, tag = message
            try:
                value = engine_mod._execute_task(task, tag)
            except Exception as exc:
                sent = reply(
                    ("err", task_id, f"{type(exc).__name__}: {exc}")
                )
            else:
                sent = reply(("ok", task_id, value))
        else:
            sent = reply(("err", None, f"unknown request {kind!r}"))
        if not sent:
            return


class WorkerHandle:
    """One fleet worker: its process, its pipe, its current assignment."""

    __slots__ = ("process", "conn", "assignment")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        #: ``(task_index, lease_gen, submitted_monotonic)`` while a task
        #: is in flight on this worker, else ``None`` (supervisor-owned).
        self.assignment = None

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def sentinel(self) -> int:
        return self.process.sentinel

    def alive(self) -> bool:
        return self.process.is_alive()


class Fleet:
    """Spawns, contextualizes, replaces, and retires fleet workers.

    The fleet is process supervision only -- lease bookkeeping and
    retry policy live in :class:`repro.service.supervisor.FleetSession`.
    ``counters`` receives supervision events (``workers_spawned``,
    ``workers_replaced``, ``workers_killed``) so they surface in the
    ``engine.service.*`` metrics and the status snapshot's
    ``health.service`` block.
    """

    def __init__(
        self,
        size: int,
        spool_dir: Optional[str] = None,
        hb_interval: float = 0.05,
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        self.size = max(1, int(size))
        self.spool_dir = spool_dir
        self.hb_interval = hb_interval
        self.counters: Dict[str, int] = (
            counters if counters is not None else {}
        )
        self.handles: List[WorkerHandle] = []
        self._ctx_data: Optional[dict] = None
        self._ctx: Optional[multiprocessing.context.BaseContext] = None

    def _bump(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    @property
    def available(self) -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def start(self) -> None:
        """Spawn the initial fleet (call before heavy daemon threading)."""
        if not self.available:
            return
        self._ctx = multiprocessing.get_context("fork")
        for _ in range(self.size):
            self._spawn()

    def _spawn(self) -> Optional[WorkerHandle]:
        if self._ctx is None:
            return None
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        # The fork inherits every daemon-side pipe end currently open --
        # the siblings' and its own; the child closes them first thing,
        # so a dead daemon EOFs the whole fleet (see _worker_main).
        inherited = [parent_conn.fileno()]
        for sibling in self.handles:
            try:
                inherited.append(sibling.conn.fileno())
            except OSError:
                pass
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, inherited, self.spool_dir, self.hb_interval),
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent keeps only its own end
        handle = WorkerHandle(process, parent_conn)
        self.handles.append(handle)
        self._bump("workers_spawned")
        if self._ctx_data is not None and not self._send_ctx(handle):
            return None
        return handle

    def _send_ctx(self, handle: WorkerHandle, timeout: float = 30.0) -> bool:
        try:
            handle.conn.send(("ctx", self._ctx_data))
            if not handle.conn.poll(timeout):
                raise OSError("context ack timeout")
            reply = handle.conn.recv()
            if reply[0] != "ctx-ok":
                raise OSError(reply[1] if len(reply) > 1 else "ctx rejected")
        except (OSError, EOFError, ValueError):
            self._retire(handle)
            return False
        return True

    def set_context(self, ctx_data: Optional[dict]) -> int:
        """Ship a campaign spec to every worker; returns how many acked.

        A worker that cannot take the context (dead pipe, resolution
        error) is retired -- :meth:`ensure` respawns it with the stored
        context, so a transiently broken fleet self-heals.
        """
        self._ctx_data = ctx_data
        if ctx_data is None:
            return len(self.handles)
        acked = 0
        for handle in list(self.handles):
            if self._send_ctx(handle):
                acked += 1
        return acked

    def rotate_spools(self) -> None:
        """Ask every worker to close its spool slot (between campaigns,
        so the retention GC can prune closed files, never live ones)."""
        for handle in list(self.handles):
            try:
                handle.conn.send(("rotate",))
                if handle.conn.poll(5.0):
                    handle.conn.recv()
            except (OSError, EOFError):
                self._retire(handle)

    def _retire(self, handle: WorkerHandle) -> None:
        if handle in self.handles:
            self.handles.remove(handle)
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=5.0)

    def kill(self, pid: int, sig: int = signal.SIGKILL) -> bool:
        """Kill one worker by pid (wedged-lease reclamation and chaos).

        The handle stays registered until the supervisor reaps the death
        -- killing must not silently drop an in-flight assignment.
        """
        for handle in self.handles:
            if handle.pid == pid:
                try:
                    os.kill(pid, sig)
                except OSError:
                    return False
                self._bump("workers_killed")
                return True
        return False

    def reap_dead(self) -> List[WorkerHandle]:
        """Remove dead workers from the roster; returns them (their
        assignments are the supervisor's to disposition)."""
        dead = [handle for handle in self.handles if not handle.alive()]
        for handle in dead:
            self.handles.remove(handle)
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.process.join(timeout=5.0)
        return dead

    def ensure(self) -> int:
        """Respawn workers until the fleet is back at full strength
        (each new worker receives the stored campaign context).
        Returns how many replacements were spawned."""
        spawned = 0
        while len(self.handles) < self.size and self._ctx is not None:
            if self._spawn() is None:
                break
            spawned += 1
        if spawned:
            self._bump("workers_replaced", spawned)
        return spawned

    def live_pids(self) -> Set[int]:
        return {handle.pid for handle in self.handles if handle.alive()}

    def idle_handles(self) -> List[WorkerHandle]:
        return [
            handle
            for handle in self.handles
            if handle.assignment is None and handle.alive()
        ]

    def stop(self, timeout: float = 10.0) -> None:
        """Retire the whole fleet: polite ``exit``, then terminate."""
        for handle in self.handles:
            try:
                handle.conn.send(("exit",))
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + timeout
        for handle in self.handles:
            handle.process.join(
                timeout=max(0.1, deadline - time.monotonic())
            )
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self.handles.clear()
