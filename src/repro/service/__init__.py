"""Verification-as-a-service: the fault-tolerant campaign daemon.

The batch CLI dies with its foreground process; this package is the
ROADMAP's "verification-as-a-service" step -- a stdlib-only daemon
(``repro serve``) that accepts Definition-2 verification campaigns over
a thin HTTP/JSON protocol, shards their cells across a supervised
worker fleet, and keeps producing bit-identical evidence while workers
crash, stall, and lie.

Layers (each its own module):

* :mod:`repro.service.campaigns`  -- the campaign spec: a JSON document
  naming a program corpus, a policy grid, a config, and seed ranges;
  content-signed so journals and results are bound to their inputs;
* :mod:`repro.service.fleet`      -- persistent worker processes that
  execute engine task tuples against a name-resolved task context and
  stream heartbeats into the daemon's spool;
* :mod:`repro.service.supervisor` -- the robustness core: lease-based
  dispatch over :class:`~repro.verify.leases.TaskBoard`, heartbeat-
  expiry reclamation, kill-and-replace, and the per-cell circuit
  breaker (healthy -> suspect -> quarantined -> recovered) that
  degrades a misbehaving cell to in-daemon serial execution;
* :mod:`repro.service.protocol`   -- a minimal asyncio HTTP/1.1 server
  (no dependencies, no frameworks);
* :mod:`repro.service.daemon`     -- the daemon: campaign queue with
  backpressure (429 + Retry-After), sequential execution through
  :class:`~repro.verify.engine.VerificationEngine` with the fleet as
  its dispatcher, SIGTERM drain, journal-based restart resume, and
  retention GC between campaigns;
* :mod:`repro.service.client`     -- the stdlib client the ``submit`` /
  ``campaigns`` CLI subcommands and the tests drive.

The determinism story: the daemon never re-implements the sweep.  The
engine runs in the daemon process with ``dispatcher=`` pointing at the
fleet, so folds, journaling, store flushes, and monitor ticks are the
engine's own -- a campaign's evidence table is bit-identical to
``repro sweep``'s no matter how many workers were killed on the way.
"""

from repro.service.campaigns import CampaignError, CampaignSpec
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import CampaignDaemon
from repro.service.fleet import Fleet
from repro.service.supervisor import CircuitBreaker, FleetDispatcher

__all__ = [
    "CampaignDaemon",
    "CampaignError",
    "CampaignSpec",
    "CircuitBreaker",
    "Fleet",
    "FleetDispatcher",
    "ServiceClient",
    "ServiceError",
]
