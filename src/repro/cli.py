"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``litmus [NAME ...]`` -- run catalog tests on simulated hardware and
  report interesting-outcome observation + the Definition-2 verdict;
* ``drf0 NAME`` -- exhaustive Definition-3 verdict for a catalog program,
  with the witnessing execution when racy;
* ``models [NAME ...]`` -- axiomatic admission table (SC / TSO /
  coherence / WO-DRF0) for straight-line catalog tests;
* ``simulate NAME`` -- one hardware run with timing details;
* ``sweep [NAME ...]`` -- Definition-2 evidence table (programs x policies
  x seeds) via the parallel verification engine (``--jobs N``);
* ``fuzz`` -- random programs against every oracle (``--jobs N``);
* ``delays NAME`` -- Shasha-Snir delay pairs for a straight-line test;
* ``profile`` -- one workload under one or two policies with the full
  observability stack: Perfetto trace out, metrics out, and the
  per-processor per-cause stall-attribution table (Figure 3 as numbers);
* ``chaos`` -- the resilience suite: every delivery-preserving fault plan
  must leave the Definition-2 verdict table untouched, every
  delivery-violating plan must be flagged by the liveness machinery;
  ``--service DIR`` adds the process-level half -- kill fleet workers
  mid-campaign and SIGKILL/restart the daemon itself, then require the
  evidence rows byte-identical to a serial in-process sweep;
* ``cache DIR {stats,audit,compact}`` -- inspect, re-judge, or compact a
  persistent verdict store (the directory ``--cache-dir`` writes);
* ``serve DIR`` -- the fault-tolerant campaign daemon: accepts
  verification campaigns over a local HTTP/JSON protocol, shards them
  across a supervised worker fleet (leases, retries with backoff,
  circuit-breaker serial degradation), checkpoints through the journal,
  and resumes mid-flight campaigns after a restart (``docs/service.md``);
* ``submit [NAME ...]`` -- send a campaign to a running daemon and print
  the same evidence table ``sweep`` prints (daemon answers repeat
  submissions from its shared verdict store);
* ``campaigns [ID]`` -- list or inspect a daemon's campaigns, stream a
  campaign's status-snapshot history, or ask the daemon to drain;
* ``status PATH`` / ``top PATH`` -- render a live campaign's
  ``--status-json`` snapshot once, or as a refreshing stdlib-ANSI view
  (``sweep``/``fuzz``/``chaos``/``drf0`` all accept ``--status-json``);
* ``catalog`` -- list available litmus tests and workloads.

Persistence: ``sweep``, ``fuzz``, and ``chaos`` accept ``--cache-dir DIR``
-- a content-addressed verdict store shared across runs and processes;
warm runs skip already-judged verdicts and already-simulated hardware
runs while producing byte-identical output (see ``docs/caching.md``).

Fault injection: ``simulate`` and ``sweep`` accept ``--faults PLAN``
(see ``repro chaos`` for the plan names), ``--fault-seed N``, and
``--watchdog CYCLES``.  ``sweep`` also accepts ``--journal FILE`` /
``--resume`` (checkpointed, crash-tolerant sweeps) and ``--task-timeout``.
Usage errors (bad flag combinations) exit with status 2; liveness
failures print a per-processor diagnosis and exit 1 instead of hanging.

Workload names (``lock``, ``ttas``, ``prodcons``, ``barrier``, ``phases``,
``critical_section``) are accepted wherever a program is expected.

Observability: ``simulate``, ``litmus``, ``drf0``, ``sweep``, and
``profile`` accept ``--trace-out FILE`` (Chrome trace-event JSON, loadable
in Perfetto) and ``--metrics-json FILE``; ``simulate`` and ``drf0`` accept
``--json`` for machine-readable stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.analysis import analyze
from repro.axiomatic import (
    CoherenceModel,
    SCModel,
    TSOModel,
    UnsupportedProgram,
    WeakOrderingDRF,
    allowed_results,
)
from repro.core.contract import appears_sc
from repro.core.drf0 import check_program, check_program_sampled
from repro.hw import POLICY_FACTORIES
from repro.litmus import all_tests, by_name
from repro.litmus.figures import figure3_program
from repro.machine.program import Program
from repro.sim.system import SystemConfig, run_on_hardware
from repro.workloads import (
    barrier_workload,
    lock_workload,
    phase_parallel_workload,
    producer_consumer_workload,
    work_queue_workload,
)

WORKLOAD_FACTORIES = {
    "lock": lambda: lock_workload(3, 1),
    "ttas": lambda: lock_workload(3, 1, ttas=True),
    "prodcons": lambda: producer_consumer_workload(batch_size=6),
    "barrier": lambda: barrier_workload(num_procs=3, phases=1),
    "phases": lambda: phase_parallel_workload(num_procs=3, chunk=2, phases=1),
    "workqueue": lambda: work_queue_workload(num_consumers=2, num_items=4),
    # Figure 3's release/acquire handoff with cold invalidations and
    # post-release work -- the stall-attribution showcase.
    "critical_section": lambda: figure3_program(
        num_extra_sharers=2, post_release_work=80
    ),
}


def _canon_policy(name: str) -> str:
    """Accept ``adve_hill`` for ``adve-hill`` etc. (underscore tolerance)."""
    return name.replace("_", "-")


def _resolve_program(name: str) -> Program:
    if name in WORKLOAD_FACTORIES:
        return WORKLOAD_FACTORIES[name]()
    try:
        return by_name(name).program
    except KeyError:
        raise SystemExit(
            f"unknown program {name!r}; see `python -m repro catalog`"
        )


def _usage_error(message: str) -> "SystemExit":
    """One-line usage error on stderr, exit status 2 (argparse convention)."""
    print(f"repro: error: {message}", file=sys.stderr)
    return SystemExit(2)


def _config_from_args(args) -> SystemConfig:
    fault_plan = None
    plan_name = getattr(args, "faults", None)
    if plan_name is not None:
        from repro.sim.faults import FAULT_PLANS

        fault_plan = FAULT_PLANS[plan_name]
        fault_seed = getattr(args, "fault_seed", None)
        if fault_seed is not None:
            fault_plan = fault_plan.with_seed(fault_seed)
    return SystemConfig(
        topology=args.topology,
        caches=not args.no_caches,
        seed=args.seed,
        net_latency=args.net_latency,
        cache_capacity=args.capacity,
        fault_plan=fault_plan,
        watchdog_cycles=getattr(args, "watchdog", None),
    )


def _make_tracer(args, force: bool = False):
    """A recording tracer when ``--trace-out`` (or ``force``) asks for one."""
    if force or getattr(args, "trace_out", None):
        from repro.obs import RecordingTracer

        return RecordingTracer()
    return None


def _write_obs_outputs(args, tracer=None, registry=None) -> None:
    """Write ``--trace-out`` / ``--metrics-json`` files if requested.

    Confirmations go to stderr so ``--json`` stdout stays machine-clean.
    """
    trace_out = getattr(args, "trace_out", None)
    if trace_out and tracer is not None:
        from repro.obs import write_chrome_trace

        write_chrome_trace(trace_out, tracer)
        print(
            f"trace: {len(tracer)} events -> {trace_out}", file=sys.stderr
        )
    metrics_json = getattr(args, "metrics_json", None)
    if metrics_json and registry is not None:
        with open(metrics_json, "w", encoding="utf-8") as handle:
            json.dump(registry.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics -> {metrics_json}", file=sys.stderr)


def _make_monitor(args, command: str):
    """A :class:`~repro.obs.CampaignMonitor` when ``--status-json`` asks.

    Must be constructed *before* the engine (and before any worker pool
    forks) so the spool directory is published into the pre-fork module
    state every worker inherits.
    """
    path = getattr(args, "status_json", None)
    if not path:
        return None
    from repro.obs import CampaignMonitor

    return CampaignMonitor(path, command=command)


def _load_snapshot(path: str) -> dict:
    """Read one ``--status-json`` snapshot (raises OSError/ValueError)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def cmd_catalog(args) -> int:
    print("litmus tests:")
    for test in all_tests():
        flags = "DRF0" if test.drf0 else "racy"
        print(f"  {test.name:<14} [{flags}]  {test.description}")
    print("\nworkloads:", ", ".join(sorted(WORKLOAD_FACTORIES)))
    return 0


def cmd_litmus(args) -> int:
    tests = [by_name(n) for n in args.names] if args.names else all_tests()
    factory = POLICY_FACTORIES[args.policy]
    config = _config_from_args(args)
    tracer = _make_tracer(args)
    registry = None
    if args.metrics_json:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    failures = 0
    print(f"{'test':<14}{'DRF0':<7}{'outcome':<12}{'appears-SC':<12}{'contract'}")
    for test in tests:
        results = set()
        for s in range(args.seeds):
            if tracer is not None:
                with tracer.scope(f"{test.name}/s{s}"):
                    run = run_on_hardware(
                        test.program, factory(), config.with_seed(s),
                        tracer=tracer,
                    )
            else:
                run = run_on_hardware(
                    test.program, factory(), config.with_seed(s)
                )
            if registry is not None:
                from repro.obs import run_metrics

                run_metrics(run, registry, prefix="sim")
            results.add(run.result)
        observed = test.outcome_observed(results)
        contract = appears_sc(test.program, results)
        respected = contract.appears_sc or not test.drf0
        if not respected:
            failures += 1
        print(
            f"{test.name:<14}"
            f"{'yes' if test.drf0 else 'no':<7}"
            f"{'observed' if observed else 'never':<12}"
            f"{'yes' if contract.appears_sc else 'no':<12}"
            f"{'ok' if respected else 'VIOLATED'}"
        )
    _write_obs_outputs(args, tracer, registry)
    return 1 if failures else 0


def _print_explorer_stats(stats, elapsed: Optional[float] = None) -> None:
    """Render an :class:`~repro.core.engine_state.ExplorerStats` block."""
    if stats is None:
        print("  explorer stats: not collected for this mode")
        return
    print(
        f"  explorer stats: {stats.states} states, "
        f"{stats.transitions} transitions, {stats.executions} executions"
    )
    print(
        f"                  max undo depth {stats.max_depth}, "
        f"{stats.sleep_cuts} sleep-set cuts, "
        f"peak visited-set size {stats.peak_visited}"
    )
    if elapsed is not None and elapsed > 0:
        print(f"                  {stats.states / elapsed:,.0f} states/sec")


def cmd_drf0(args) -> int:
    import time

    from repro.core.sc import ExplorationConfig

    program = _resolve_program(args.name)
    tracer = _make_tracer(args)
    # The drf0 command drives the explorer directly (no engine), so the
    # monitor plans its single cell here; shard workers spawned by
    # --explore-jobs heartbeat into the same spool and the exploration
    # coordinator polls them into the snapshot as the run progresses.
    monitor = _make_monitor(args, f"drf0 {args.name}")
    if monitor is not None:
        monitor.claim_plan()
        monitor.plan([(program.name, 1, 0.0)])
        monitor.poll(force=True)
    start = time.perf_counter()
    try:
        if args.sampled:
            report = check_program_sampled(program, seeds=range(args.seeds))
            mode = f"sampled over {report.executions_checked} executions"
        elif args.dpor:
            from repro.core.dpor import check_program_dpor

            cfg = ExplorationConfig(
                sleep_sets=not args.no_sleep_sets,
                tracer=tracer,
                explore_jobs=args.explore_jobs,
            )
            report = check_program_dpor(program, config=cfg)
            mode = (
                f"DPOR over {report.executions_checked} "
                "representative executions"
            )
            if args.no_sleep_sets:
                mode += ", sleep sets off"
        else:
            report = check_program(
                program,
                config=ExplorationConfig(
                    max_ops=400, tracer=tracer, explore_jobs=args.explore_jobs
                ),
            )
            mode = f"exhaustive over {report.executions_checked} executions"
    except BaseException as exc:
        if monitor is not None:
            monitor.fail(f"{type(exc).__name__}: {exc}")
        raise
    elapsed = time.perf_counter() - start
    if monitor is not None:
        monitor.unit_done(0)
        monitor.observe_cell_us(0, elapsed * 1e6)
        monitor.finish(
            ok=True,
            result={
                "obeys": report.obeys,
                "executions_checked": report.executions_checked,
            },
        )
    registry = None
    if args.metrics_json:
        from repro.obs import explorer_metrics

        registry = explorer_metrics(report.stats)
    if args.json:
        payload = {
            "program": program.name,
            "mode": mode,
            "obeys": report.obeys,
            "executions_checked": report.executions_checked,
            "race": str(report.race) if report.race is not None else None,
            "elapsed_seconds": elapsed,
            "explorer_stats": (
                report.stats.as_dict() if report.stats is not None else None
            ),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"{program.name}: "
            f"{'obeys' if report.obeys else 'violates'} DRF0 ({mode})"
        )
        if args.stats:
            _print_explorer_stats(report.stats, elapsed)
        if report.race is not None:
            print(f"  race: {report.race}")
            if report.witness is not None and args.witness:
                print("  witnessing idealized execution:")
                for op in report.witness.ops:
                    print(f"    {op}")
    _write_obs_outputs(args, tracer, registry)
    return 0 if report.obeys else 1


def cmd_models(args) -> int:
    tests = [by_name(n) for n in args.names] if args.names else all_tests()
    models = [
        ("SC", SCModel()),
        ("TSO", TSOModel()),
        ("COH", CoherenceModel()),
        ("WO-DRF0", WeakOrderingDRF()),
    ]
    print(f"{'test':<14}" + "".join(f"{name:<9}" for name, _ in models))
    for test in tests:
        cells = []
        for _, model in models:
            try:
                results = allowed_results(test.program, model)
                cells.append("yes" if test.outcome_observed(results) else "no")
            except UnsupportedProgram:
                cells.append("-")
        print(f"{test.name:<14}" + "".join(f"{c:<9}" for c in cells))
    return 0


def cmd_simulate(args) -> int:
    from repro.sim.system import LivenessError

    program = _resolve_program(args.name)
    factory = POLICY_FACTORIES[args.policy]
    tracer = _make_tracer(args, force=args.trace)
    try:
        run = run_on_hardware(
            program, factory(), _config_from_args(args), tracer=tracer
        )
    except LivenessError as exc:
        # A fault plan (or a policy bug) stalled the machine: report which
        # processor is stuck on what, instead of a traceback.
        print(exc.diagnosis(), file=sys.stderr)
        return 1
    verdict = appears_sc(program, [run.result])
    registry = None
    if args.metrics_json or args.json:
        from repro.obs import run_metrics

        registry = run_metrics(run)
    if args.json:
        payload = {
            "program": program.name,
            "policy": run.policy_name,
            "cycles": run.cycles,
            "messages": run.messages_sent,
            "appears_sc": verdict.appears_sc,
            "reads": [list(r) for r in run.result.reads],
            "final_memory": dict(run.result.final_memory),
            "proc_stats": [s.as_dict() for s in run.proc_stats],
            "cache_stats": run.cache_stats,
            "directory_stats": run.directory_stats,
            "metrics": registry.as_dict(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        from repro.report import summarize

        print(summarize(run))
        print(f"result    : {run.result}")
        if args.trace:
            from repro.obs import render_event_stream, render_stall_table

            print()
            print(render_stall_table(run))
            print()
            print(render_event_stream(tracer.events))
        print(f"appears SC: {verdict.appears_sc}")
    _write_obs_outputs(args, tracer, registry)
    return 0


#: Default sweep suite: the DRF0 programs E5 rests on, plus one racy
#: control so the premise side of Definition 2 shows up in the table.
DEFAULT_SWEEP_PROGRAMS = ["MP+sync", "SB+sync", "TAS", "lock", "SB"]


def _print_evidence_table(rows) -> None:
    """The Definition-2 evidence table -- shared by ``sweep`` and
    ``submit`` so a daemon campaign's output diffs clean against the
    batch path's."""
    print(
        f"{'program':<14}{'DRF0':<7}{'policy':<22}{'appears-SC':<12}"
        f"{'distinct':<10}{'5.1-viol':<10}{'mean cycles'}"
    )
    for row in rows:
        print(
            f"{row['program']:<14}"
            f"{'yes' if row['program_drf0'] else 'no':<7}"
            f"{row['policy']:<22}"
            f"{'yes' if row['appears_sc'] else 'NO':<12}"
            f"{row['distinct_results']:<10}"
            f"{len(row['condition_violations']):<10}"
            f"{row['mean_cycles']:.1f}"
        )


def cmd_sweep(args) -> int:
    from repro.sim.system import LivenessError
    from repro.verify.engine import VerificationEngine
    from repro.verify.journal import JournalError

    if args.jobs < 0:
        raise _usage_error(
            f"--jobs must be >= 0 (got {args.jobs}); 0 means one per CPU"
        )
    if args.explore_jobs < 0:
        raise _usage_error(
            f"--explore-jobs must be >= 0 (got {args.explore_jobs}); "
            "0 means one per CPU"
        )
    if args.resume and not args.journal:
        raise _usage_error("--resume requires --journal FILE")
    names = args.names or DEFAULT_SWEEP_PROGRAMS
    programs = [_resolve_program(name) for name in names]
    policy_names = args.policy or [
        name for name in sorted(POLICY_FACTORIES) if name != "relaxed"
    ]
    factories = {name: POLICY_FACTORIES[name] for name in policy_names}
    tracer = _make_tracer(args)
    registry = None
    if args.metrics_json:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    monitor = _make_monitor(args, "sweep " + " ".join(names))
    engine = VerificationEngine(
        jobs=args.jobs, explore_jobs=args.explore_jobs, tracer=tracer,
        metrics=registry, task_timeout=args.task_timeout,
        cache_dir=args.cache_dir, monitor=monitor,
    )
    try:
        evidence = engine.definition2_sweep(
            programs,
            factories,
            config=_config_from_args(args),
            seeds=range(args.seeds),
            drf0_seeds=range(args.drf0_seeds),
            exhaustive_drf0=args.exhaustive_drf0,
            check_51_conditions=args.check_51,
            journal_path=args.journal,
            resume=args.resume,
        )
    except JournalError as exc:
        if monitor is not None:
            monitor.fail(str(exc))
        raise _usage_error(str(exc))
    except LivenessError as exc:
        if monitor is not None:
            monitor.fail(exc.diagnosis())
        print(exc.diagnosis(), file=sys.stderr)
        return 1
    except BaseException as exc:
        if monitor is not None:
            monitor.fail(f"{type(exc).__name__}: {exc}")
        raise
    reused = engine.resilience.get("journal_units_reused")
    if reused:
        print(
            f"resumed from {args.journal}: {reused} journaled work units "
            "reused",
            file=sys.stderr,
        )
    if engine.store is not None:
        stats = engine.store.stats
        print(
            f"cache {args.cache_dir}: {stats.loaded_sc} SC + "
            f"{stats.loaded_drf0} DRF0 verdicts loaded, "
            f"{stats.runs_reused} hardware runs reused, "
            f"{stats.flushed_sc + stats.flushed_drf0 + stats.flushed_runs} "
            "new records flushed",
            file=sys.stderr,
        )
        engine.store.close()
    _print_evidence_table(evidence.rows)
    holds = evidence.contract_holds
    if monitor is not None:
        # The snapshot embeds the evidence rows verbatim, so the final
        # status file's verdict table is byte-identical to this output.
        monitor.finish(
            ok=holds,
            verdicts=evidence.rows,
            result={"contract_holds": holds},
        )
    if args.stats:
        print("\noracle work (SC-membership judgments + DRF0 verdicts):")
        _print_explorer_stats(engine.explorer_stats)
    print(f"\nDefinition-2 contract: {'holds' if holds else 'VIOLATED'}")
    if registry is not None:
        engine.metrics_snapshot(registry)
    _write_obs_outputs(args, tracer, registry)
    return 0 if holds else 1


def cmd_profile(args) -> int:
    """One workload under one or two policies, fully instrumented.

    The default comparison policy (``definition1``) against the default
    profile policy (``adve-hill``) reproduces Figure 3 quantitatively:
    Definition 1 charges the release-side stall to the *releasing*
    processor (a ``gate:gp`` stall at its unset), while the Adve-Hill
    Section-5.3 implementation lets the release proceed and moves the
    wait to the *acquiring* processor (reserve-bit NACKs on its
    test&set).
    """
    from repro.obs import (
        MetricsRegistry,
        render_stall_comparison,
        run_metrics,
    )

    program = _resolve_program(args.workload)
    config = _config_from_args(args)
    policies = [args.policy]
    if args.compare and args.compare not in policies:
        policies.append(args.compare)
    for name in policies:
        if name not in POLICY_FACTORIES:
            raise SystemExit(
                f"unknown policy {name!r}; choose from "
                f"{', '.join(sorted(POLICY_FACTORIES))}"
            )
    tracer = _make_tracer(args)
    registry = MetricsRegistry() if args.metrics_json else None
    runs = {}
    for name in policies:
        factory = POLICY_FACTORIES[name]
        if tracer is not None:
            with tracer.scope(name):
                run = run_on_hardware(program, factory(), config, tracer=tracer)
        else:
            run = run_on_hardware(program, factory(), config)
        if registry is not None:
            run_metrics(run, registry, prefix=f"sim.{name}")
        runs[name] = run
    print(
        f"profile: {program.name!r} under {', '.join(policies)} "
        f"(topology {config.topology}, seed {config.seed})"
    )
    print()
    print(render_stall_comparison(runs))
    _write_obs_outputs(args, tracer, registry)
    return 0


def cmd_delays(args) -> int:
    program = _resolve_program(args.name)
    try:
        analysis = analyze(program)
    except UnsupportedProgram as exc:
        raise SystemExit(str(exc))
    if analysis.needs_no_delays:
        print(f"{program.name}: no delay pairs needed")
        return 0
    print(f"{program.name}: {len(analysis.delay_pairs)} delay pair(s)")
    for line in analysis.describe():
        print(f"  {line}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Weak Ordering -- A New Definition (ISCA 1990) reproduction",
    )
    parser.add_argument(
        "--interpreted-engine", action="store_true",
        help="run explorers on the interpreted EngineState instead of the "
             "compiled engine (differential debugging; same answers, slower)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_hw_args(p, single_policy=True):
        if single_policy:
            p.add_argument("--policy", type=_canon_policy,
                           choices=sorted(POLICY_FACTORIES),
                           default="adve-hill")
        p.add_argument("--topology", choices=["bus", "network"], default="network")
        p.add_argument("--no-caches", action="store_true")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--seeds", type=int, default=20)
        p.add_argument("--net-latency", type=int, default=3)
        p.add_argument("--capacity", type=int, default=None)

    def add_obs_args(p):
        p.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write a Chrome trace-event JSON file "
                            "(load in Perfetto / chrome://tracing)")
        p.add_argument("--metrics-json", metavar="FILE", default=None,
                       help="write the metrics registry as JSON")

    def add_status_arg(p):
        p.add_argument("--status-json", metavar="FILE", default=None,
                       help="write a live, atomically-replaced campaign "
                            "status snapshot (per-worker heartbeats, "
                            "completion %%, ETA); poll it with "
                            "`repro status FILE` or `repro top FILE`")

    def add_fault_args(p):
        from repro.sim.faults import FAULT_PLANS

        p.add_argument("--faults", choices=sorted(FAULT_PLANS),
                       default=None, metavar="PLAN",
                       help="inject a named deterministic fault plan "
                            f"({', '.join(sorted(FAULT_PLANS))})")
        p.add_argument("--fault-seed", type=int, default=None,
                       help="override the fault plan's seed (same plan + "
                            "same seeds = bit-identical faults)")
        p.add_argument("--watchdog", type=int, default=None, metavar="CYCLES",
                       help="liveness watchdog: abort with a per-processor "
                            "stall diagnosis after CYCLES cycles without "
                            "architectural progress")

    p = sub.add_parser("catalog", help="list litmus tests and workloads")
    p.set_defaults(func=cmd_catalog)

    p = sub.add_parser("litmus", help="run litmus tests on simulated hardware")
    p.add_argument("names", nargs="*")
    add_hw_args(p)
    add_obs_args(p)
    p.set_defaults(func=cmd_litmus)

    p = sub.add_parser("drf0", help="Definition-3 verdict for a program")
    p.add_argument("name")
    p.add_argument("--sampled", action="store_true")
    p.add_argument("--dpor", action="store_true",
                   help="partial-order reduction (bounded programs)")
    p.add_argument("--no-sleep-sets", action="store_true",
                   help="with --dpor: disable the sleep-set pruning layer")
    p.add_argument("--seeds", type=int, default=50)
    p.add_argument("--explore-jobs", type=int, default=1,
                   help="shard the exploration across N forked engine "
                        "processes (0 = one per CPU); the verdict is "
                        "identical to --explore-jobs 1")
    p.add_argument("--witness", action="store_true")
    p.add_argument("--stats", action="store_true",
                   help="print explorer counters (states/sec, undo depth, "
                        "sleep-set cuts, peak visited-set size)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable verdict on stdout")
    add_obs_args(p)
    add_status_arg(p)
    p.set_defaults(func=cmd_drf0)

    p = sub.add_parser("models", help="axiomatic admission table")
    p.add_argument("names", nargs="*")
    p.set_defaults(func=cmd_models)

    p = sub.add_parser("simulate", help="one hardware run with timing details")
    p.add_argument("name")
    p.add_argument("--trace", action="store_true",
                   help="print the stall-attribution table and the "
                        "chronological event stream of the run")
    p.add_argument("--json", action="store_true",
                   help="machine-readable run report on stdout")
    add_hw_args(p)
    add_fault_args(p)
    add_obs_args(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "sweep",
        help="Definition-2 evidence sweep (programs x policies x seeds)",
    )
    p.add_argument("names", nargs="*",
                   help=f"programs to sweep (default: {DEFAULT_SWEEP_PROGRAMS})")
    add_hw_args(p, single_policy=False)
    p.add_argument("--policy", action="append", type=_canon_policy,
                   choices=sorted(POLICY_FACTORIES), metavar="POLICY",
                   help="policy to include, repeatable (default: all except "
                        "the broken 'relaxed' strawman)")
    p.add_argument("--drf0-seeds", type=int, default=30,
                   help="seeds for the sampled DRF0 premise check")
    p.add_argument("--exhaustive-drf0", action="store_true",
                   help="enumerate every interleaving for the DRF0 verdict")
    p.add_argument("--check-51", action="store_true",
                   help="run the Section-5.1 condition monitor on every run")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (0 = one per CPU); output is "
                        "identical to --jobs 1")
    p.add_argument("--explore-jobs", type=int, default=1,
                   help="intra-cell parallelism: shard expensive oracle "
                        "explorations across N forked engine processes "
                        "(0 = one per CPU); evidence is identical to "
                        "--explore-jobs 1")
    p.add_argument("--stats", action="store_true",
                   help="print aggregate explorer counters for the oracle "
                        "work the sweep dispatched")
    p.add_argument("--task-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="abandon and resubmit a pooled task stuck longer "
                        "than this (hung-worker recovery)")
    p.add_argument("--journal", metavar="FILE", default=None,
                   help="append every completed work unit to a checkpoint "
                        "journal as the sweep runs")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="persistent verdict store: warm-start from DIR and "
                        "flush new verdicts/run summaries back (identical "
                        "output, large speedup on repeat runs)")
    p.add_argument("--resume", action="store_true",
                   help="load the --journal file and recompute only the "
                        "work units it is missing")
    add_fault_args(p)
    add_obs_args(p)
    add_status_arg(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "profile",
        help="instrumented run(s) with stall attribution and trace export",
    )
    p.add_argument("--workload", required=True, metavar="NAME",
                   help="workload or litmus test to profile")
    p.add_argument("--compare", type=_canon_policy, default="definition1",
                   metavar="POLICY",
                   help="second policy for the side-by-side stall table "
                        "(default: definition1; empty string disables)")
    add_hw_args(p)
    add_obs_args(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("delays", help="Shasha-Snir delay pairs")
    p.add_argument("name")
    p.set_defaults(func=cmd_delays)

    p = sub.add_parser(
        "fuzz",
        help="random programs vs all oracles (enumerators + SC hardware)",
    )
    p.add_argument("--programs", type=int, default=20)
    p.add_argument("--start-seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (0 = one per CPU); output is "
                        "identical to --jobs 1")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="persistent verdict store shared across runs")
    p.add_argument("--metrics-json", metavar="FILE", default=None,
                   help="write engine metrics (incl. aggregated cache hit "
                        "rates and store counters) as JSON")
    add_status_arg(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "diff",
        help="differential campaign: axiomatic solver vs enumerator vs "
             "operational explorers vs the hardware simulator",
    )
    p.add_argument("--programs", type=int, default=200)
    p.add_argument("--start-seed", type=int, default=0)
    p.add_argument("--hw-seeds", type=int, default=2,
                   help="hardware nondeterminism seeds per substrate")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (0 = one per CPU); output is "
                        "identical to --jobs 1")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="persistent verdict store shared across runs")
    p.add_argument("--no-minimize", action="store_true",
                   help="skip DSL-level shrinking of disagreements")
    p.add_argument("--report", metavar="FILE", default=None,
                   help="also write the campaign report (with minimized "
                        "litmus reproducers) as JSON")
    p.add_argument("--metrics-json", metavar="FILE", default=None,
                   help="write engine metrics (incl. aggregated cache hit "
                        "rates and store counters) as JSON")
    add_status_arg(p)
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser(
        "chaos",
        help="fault-injection resilience suite (verdict invariance + "
             "liveness detection)",
    )
    p.add_argument("--quick", action="store_true",
                   help="CI-smoke subset: fewer programs, policies, plans, "
                        "and seeds")
    p.add_argument("--seeds", type=int, default=10,
                   help="hardware seeds per (program, policy, plan) cell")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the per-plan sweeps")
    p.add_argument("--report", metavar="FILE", default=None,
                   help="also write the report as JSON")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="persistent verdict store shared by the baseline "
                        "and every fault plan (and across chaos runs)")
    p.add_argument("--service", metavar="DIR", default=None,
                   help="process-level chaos instead: run a campaign "
                        "daemon on DIR, kill fleet workers mid-campaign "
                        "(and SIGKILL/restart the daemon), and require "
                        "evidence byte-identical to a serial sweep")
    p.add_argument("--service-kills", type=int, default=2, metavar="N",
                   help="with --service: crash failpoints to arm "
                        "(worker deaths injected; default: 2)")
    p.add_argument("--service-no-restart", action="store_true",
                   help="with --service: skip the daemon SIGKILL/restart "
                        "round (worker kills only)")
    add_status_arg(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "cache",
        help="inspect / audit / compact a persistent verdict store",
    )
    p.add_argument("action", choices=["stats", "audit", "compact"])
    p.add_argument("cache_dir", metavar="DIR",
                   help="the store directory (what --cache-dir wrote)")
    p.add_argument("--sample", type=int, default=None, metavar="N",
                   help="audit: re-judge at most N entries (deterministic "
                        "stride over the key space; default: all)")
    p.add_argument("--json", action="store_true",
                   help="stats: machine-readable output")
    p.set_defaults(func=cmd_cache)

    def add_service_client_args(p):
        p.add_argument("--state-dir", metavar="DIR", default=None,
                       help="daemon state directory (the client reads its "
                            "endpoint.json to find the bound port)")
        p.add_argument("--host", default="127.0.0.1",
                       help="daemon host when not using --state-dir")
        p.add_argument("--port", type=int, default=0,
                       help="daemon port when not using --state-dir")

    p = sub.add_parser(
        "serve",
        help="fault-tolerant campaign daemon (supervised worker fleet)",
    )
    p.add_argument("state_dir", metavar="DIR",
                   help="daemon state directory: verdict store, campaign "
                        "specs, journals, status snapshots, endpoint.json")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="bind port (default 0 = ephemeral; clients read "
                        "endpoint.json from the state directory)")
    p.add_argument("--workers", type=int, default=2,
                   help="fleet worker processes (default: 2)")
    p.add_argument("--queue-limit", type=int, default=8,
                   help="pending campaigns before submissions get 429 + "
                        "Retry-After backpressure (default: 8)")
    p.add_argument("--task-timeout", type=float, default=60.0,
                   metavar="SECONDS",
                   help="lease timeout: a task stuck longer gets its "
                        "worker killed and the lease reassigned")
    p.add_argument("--max-retries", type=int, default=2,
                   help="per-task retry budget (exponential backoff + "
                        "jitter) before the circuit breaker degrades the "
                        "cell to in-daemon serial execution")
    p.add_argument("--retry-backoff", type=float, default=0.05,
                   metavar="SECONDS",
                   help="base delay of the retry backoff schedule")
    p.add_argument("--heartbeat-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="also reclaim a lease when its worker stops "
                        "heartbeating for this long (default: off)")
    p.add_argument("--keep-journals", type=int, default=3,
                   help="terminal campaigns whose checkpoint journals "
                        "survive the retention GC (default: 3)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a campaign to a running daemon and print its "
             "evidence table",
    )
    p.add_argument("names", nargs="*",
                   help=f"programs to sweep (default: {DEFAULT_SWEEP_PROGRAMS})")
    add_service_client_args(p)
    p.add_argument("--policy", action="append", type=_canon_policy,
                   choices=sorted(POLICY_FACTORIES), metavar="POLICY",
                   help="policy to include, repeatable (default: all except "
                        "the broken 'relaxed' strawman)")
    p.add_argument("--seeds", type=int, default=20)
    p.add_argument("--drf0-seeds", type=int, default=30,
                   help="seeds for the sampled DRF0 premise check")
    p.add_argument("--exhaustive-drf0", action="store_true",
                   help="enumerate every interleaving for the DRF0 verdict")
    p.add_argument("--check-51", action="store_true",
                   help="run the Section-5.1 condition monitor on every run")
    p.add_argument("--no-wait", action="store_true",
                   help="print the campaign id and return immediately "
                        "instead of waiting for the evidence table")
    p.add_argument("--timeout", type=float, default=600.0,
                   metavar="SECONDS",
                   help="how long to wait for the campaign to finish")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "campaigns",
        help="list/inspect campaigns on a running daemon",
    )
    p.add_argument("id", nargs="?", default=None,
                   help="campaign id for a detailed view")
    add_service_client_args(p)
    p.add_argument("--events", action="store_true",
                   help="with ID: print its status-snapshot history "
                        "as JSONL")
    p.add_argument("--json", action="store_true",
                   help="machine-readable listing")
    p.add_argument("--shutdown", action="store_true",
                   help="ask the daemon to drain and exit (the running "
                        "campaign checkpoints and resumes on restart)")
    p.set_defaults(func=cmd_campaigns)

    p = sub.add_parser(
        "status",
        help="validate and render a --status-json campaign snapshot once",
    )
    p.add_argument("path", metavar="FILE",
                   help="the snapshot a running (or finished) campaign "
                        "writes via --status-json")
    p.add_argument("--json", action="store_true",
                   help="print the validated snapshot JSON instead of the "
                        "rendered view")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser(
        "top",
        help="live-refreshing view of a --status-json campaign snapshot",
    )
    p.add_argument("path", metavar="FILE")
    p.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                   help="refresh period (default: 1.0)")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit (no ANSI clear)")
    p.set_defaults(func=cmd_top)

    return parser


def cmd_cache(args) -> int:
    """Maintenance surface for a ``--cache-dir`` verdict store."""
    import os

    from repro.verify.store import VerdictStore

    if args.action != "stats" and not os.path.isdir(args.cache_dir):
        raise _usage_error(f"no such cache directory: {args.cache_dir}")
    store = VerdictStore(args.cache_dir)
    if args.action == "stats":
        summary = store.summary()
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            width = max(len(key) for key in summary)
            for key, value in summary.items():
                print(f"{key:<{width}}  {value}")
        return 0
    if args.action == "compact":
        segments, records = store.compact()
        print(
            f"compacted {segments} segment(s) into 1 "
            f"({records} live records)"
        )
        return 0
    report = store.audit(sample=args.sample)
    print(
        f"audit: {report.checked} entries re-judged against the oracle, "
        f"{report.unauditable} unauditable, "
        f"{len(report.disagreements)} disagreement(s)"
    )
    for line in report.disagreements[:20]:
        print(f"  !! {line}")
    return 0 if report.ok else 1


def cmd_chaos(args) -> int:
    from repro.verify.chaos import chaos_sweep

    if args.jobs < 0:
        raise _usage_error(
            f"--jobs must be >= 0 (got {args.jobs}); 0 means one per CPU"
        )
    if args.service:
        from repro.verify.chaos import service_kill_chaos

        if args.service_kills < 1:
            raise _usage_error(
                f"--service-kills must be >= 1 (got {args.service_kills})"
            )
        report = service_kill_chaos(
            args.service,
            worker_kills=args.service_kills,
            daemon_restart=not args.service_no_restart,
            progress=lambda message: print(
                f"  .. {message}", file=sys.stderr
            ),
        )
        print(json.dumps(report, indent=2, sort_keys=True))
        if args.report:
            with open(args.report, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"report -> {args.report}", file=sys.stderr)
        return 0 if report["ok"] else 1
    monitor = _make_monitor(args, f"chaos --seeds {args.seeds}")
    try:
        report = chaos_sweep(
            seeds=range(args.seeds),
            jobs=args.jobs,
            quick=args.quick,
            progress=lambda message: print(f"  .. {message}", file=sys.stderr),
            cache_dir=args.cache_dir,
            monitor=monitor,
        )
    except BaseException as exc:
        if monitor is not None:
            monitor.fail(f"{type(exc).__name__}: {exc}")
        raise
    if monitor is not None:
        monitor.finish(ok=report.ok, result=report.to_json())
    print(report.render())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report -> {args.report}", file=sys.stderr)
    return 0 if report.ok else 1


def _service_client(args):
    """Resolve a daemon client from ``--state-dir`` or ``--host/--port``.

    The state-dir handshake is the normal path: a daemon started with
    ``--port 0`` publishes its bound port in ``endpoint.json``.
    """
    from repro.service.client import ServiceClient

    state_dir = getattr(args, "state_dir", None)
    if state_dir:
        return ServiceClient.from_state_dir(state_dir)
    if not args.port:
        raise _usage_error(
            "need --state-dir DIR (reads the daemon's endpoint.json) "
            "or an explicit --port N"
        )
    return ServiceClient(args.host, args.port)


def cmd_serve(args) -> int:
    """Run the campaign daemon until drained (SIGTERM / POST /shutdown)."""
    from repro.service.daemon import CampaignDaemon

    if args.workers < 1:
        raise _usage_error(f"--workers must be >= 1 (got {args.workers})")
    if args.queue_limit < 1:
        raise _usage_error(
            f"--queue-limit must be >= 1 (got {args.queue_limit})"
        )
    if args.max_retries < 0:
        raise _usage_error(
            f"--max-retries must be >= 0 (got {args.max_retries})"
        )
    daemon = CampaignDaemon(
        args.state_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
        heartbeat_timeout=args.heartbeat_timeout,
        keep_journals=args.keep_journals,
    )
    print(
        f"repro serve: state dir {daemon.state_dir} "
        f"({args.workers} fleet workers; endpoint.json appears once bound)",
        file=sys.stderr,
    )
    return daemon.serve_forever()


def cmd_submit(args) -> int:
    """Submit a campaign and (unless ``--no-wait``) print its evidence."""
    from repro.service.client import ServiceError

    names = args.names or DEFAULT_SWEEP_PROGRAMS
    policy_names = args.policy or [
        name for name in sorted(POLICY_FACTORIES) if name != "relaxed"
    ]
    spec = {
        "programs": list(names),
        "policies": list(policy_names),
        "seeds": args.seeds,
        "drf0_seeds": args.drf0_seeds,
        "exhaustive_drf0": args.exhaustive_drf0,
        "check_51": args.check_51,
    }
    try:
        client = _service_client(args)
        accepted = client.submit_with_backoff(spec)
        cid = accepted["id"]
        print(
            f"campaign {cid} accepted "
            f"({accepted.get('position', 0)} ahead in queue)",
            file=sys.stderr,
        )
        if args.no_wait:
            print(cid)
            return 0
        info = client.wait(cid, timeout=args.timeout)
        if info.get("state") != "done":
            print(
                f"campaign {cid} failed: {info.get('error', 'unknown')}",
                file=sys.stderr,
            )
            return 1
        result = client.result(cid)
    except ServiceError as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 1
    if result.get("resumed"):
        print(
            f"campaign {cid} resumed from its checkpoint journal",
            file=sys.stderr,
        )
    _print_evidence_table(result["rows"])
    holds = bool(result.get("contract_holds"))
    print(f"\nDefinition-2 contract: {'holds' if holds else 'VIOLATED'}")
    return 0 if holds else 1


def cmd_campaigns(args) -> int:
    """List/inspect a daemon's campaigns; ``--shutdown`` drains it."""
    from repro.service.client import ServiceError

    if args.events and not args.id:
        raise _usage_error("--events needs a campaign ID")
    try:
        client = _service_client(args)
        if args.shutdown:
            client.shutdown()
            print("daemon draining", file=sys.stderr)
            return 0
        if args.id:
            if args.events:
                for snap in client.events(args.id):
                    print(json.dumps(snap, sort_keys=True))
                return 0
            print(
                json.dumps(client.campaign(args.id), indent=2, sort_keys=True)
            )
            return 0
        listed = client.campaigns()
        health = client.health()
    except ServiceError as exc:
        print(f"repro campaigns: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(
            json.dumps(
                {"campaigns": listed, "health": health},
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(
        f"daemon pid {health['pid']}: {health['workers']} workers, "
        f"{'draining' if health['draining'] else 'accepting'}"
    )
    print(f"{'id':<24}{'state':<10}{'progress':<10}signature")
    for row in listed:
        progress = row.get("progress")
        rendered = (
            f"{progress * 100:.0f}%"
            if isinstance(progress, (int, float))
            else "-"
        )
        print(
            f"{row['id']:<24}{row['state']:<10}{rendered:<10}"
            f"{row['signature'][:12]}"
        )
    return 0


def cmd_fuzz(args) -> int:
    from repro.verify.engine import VerificationEngine

    if args.jobs < 0:
        raise _usage_error(
            f"--jobs must be >= 0 (got {args.jobs}); 0 means one per CPU"
        )
    registry = None
    if args.metrics_json:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    monitor = _make_monitor(
        args, f"fuzz --programs {args.programs} --start-seed {args.start_seed}"
    )
    engine = VerificationEngine(
        jobs=args.jobs, metrics=registry, cache_dir=args.cache_dir,
        monitor=monitor,
    )
    try:
        report = engine.fuzz(
            range(args.start_seed, args.start_seed + args.programs)
        )
    except BaseException as exc:
        if monitor is not None:
            monitor.fail(f"{type(exc).__name__}: {exc}")
        raise
    if monitor is not None:
        monitor.finish(
            ok=report.ok,
            result={
                "programs_run": report.programs_run,
                "hardware_runs": report.hardware_runs,
                "failures": list(report.failures),
            },
        )
    stats = engine.sc_cache.stats
    print(
        f"fuzz: {report.programs_run} programs, "
        f"{report.hardware_runs} hardware runs, "
        f"{len(report.failures)} failures "
        f"(SC memo: {stats.hits} hits / {stats.misses} misses)"
    )
    for failure in report.failures[:10]:
        print(f"  {failure}")
    if engine.store is not None:
        engine.store.close()
    if registry is not None:
        engine.metrics_snapshot(registry)
    _write_obs_outputs(args, None, registry)
    return 0 if report.ok else 1


def cmd_diff(args) -> int:
    from repro.verify.diff import render_program, report_as_dict
    from repro.verify.engine import VerificationEngine

    if args.jobs < 0:
        raise _usage_error(
            f"--jobs must be >= 0 (got {args.jobs}); 0 means one per CPU"
        )
    if args.hw_seeds < 1:
        raise _usage_error(
            f"--hw-seeds must be >= 1 (got {args.hw_seeds})"
        )
    registry = None
    if args.metrics_json:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    monitor = _make_monitor(
        args, f"diff --programs {args.programs} --start-seed {args.start_seed}"
    )
    engine = VerificationEngine(
        jobs=args.jobs, metrics=registry, cache_dir=args.cache_dir,
        monitor=monitor,
    )
    try:
        report = engine.diff_campaign(
            range(args.start_seed, args.start_seed + args.programs),
            hardware_seeds=range(args.hw_seeds),
            minimize=not args.no_minimize,
        )
    except BaseException as exc:
        if monitor is not None:
            monitor.fail(f"{type(exc).__name__}: {exc}")
        raise
    if monitor is not None:
        monitor.finish(
            ok=report.ok,
            result={
                "programs_run": report.programs_run,
                "comparisons": report.comparisons,
                "hardware_runs": report.hardware_runs,
                "disagreements": len(report.disagreements),
            },
        )
    stats = engine.drf0_cache.stats
    print(
        f"diff: {report.programs_run} programs, "
        f"{report.comparisons} comparisons, "
        f"{report.hardware_runs} hardware runs, "
        f"{len(report.disagreements)} disagreements "
        f"(DRF0 memo: {stats.hits} hits / {stats.misses} misses)"
    )
    for disagreement in report.disagreements[:10]:
        print(f"  seed {disagreement.seed} [{disagreement.kind}]: "
              f"{disagreement.detail}")
        if disagreement.minimized is not None:
            for line in render_program(disagreement.minimized).splitlines():
                print(f"    {line}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report_as_dict(report), fh, indent=2, sort_keys=True)
        print(f"report written to {args.report}")
    if engine.store is not None:
        engine.store.close()
    if registry is not None:
        engine.metrics_snapshot(registry)
    _write_obs_outputs(args, None, registry)
    return 0 if report.ok else 1


def cmd_status(args) -> int:
    """One-shot render of a ``--status-json`` snapshot."""
    from repro.obs import render_status, validate_status

    try:
        snap = _load_snapshot(args.path)
    except (OSError, ValueError) as exc:
        raise _usage_error(f"cannot read status snapshot {args.path}: {exc}")
    problems = validate_status(snap)
    if problems:
        print(f"{args.path}: INVALID snapshot", file=sys.stderr)
        for problem in problems[:10]:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(snap, indent=2, sort_keys=True))
    else:
        print(render_status(snap))
    return 1 if snap.get("state") == "failed" else 0


def cmd_top(args) -> int:
    """Refreshing ANSI view of a live campaign (stdlib only).

    Tolerates a not-yet-created snapshot (the campaign may still be
    warming up) and transient read races; exits when the campaign
    leaves the ``running`` state, mirroring its success in the exit
    status.  ``--once`` renders a single frame without clearing.
    """
    import time

    from repro.obs import render_status

    interval = max(0.05, args.interval)
    waited = False
    while True:
        try:
            snap = _load_snapshot(args.path)
        except FileNotFoundError as exc:
            if args.once:
                raise _usage_error(f"no status snapshot at {args.path}")
            if not waited:
                print(f"waiting for {args.path} ...", file=sys.stderr)
                waited = True
            time.sleep(interval)
            continue
        except (OSError, ValueError):
            # Mid-replace read race or torn tmp file: retry next tick.
            time.sleep(interval)
            continue
        frame = render_status(snap)
        if args.once:
            print(frame)
        else:
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
        state = snap.get("state")
        if args.once or state in ("done", "failed"):
            return 1 if state == "failed" else 0
        time.sleep(interval)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.interpreted_engine:
        from repro.core.compile import use_compiled

        use_compiled(False)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # The engine's session teardown has already terminated any worker
        # pool by the time the interrupt propagates here.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
