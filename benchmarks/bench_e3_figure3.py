"""E3 -- Figure 3: who stalls at a release, and for how long.

The scenario: P0 writes x (the line is shared, so the write needs an
invalidation round trip), does other work, Unsets s; P1 TestAndSets s and
reads x.  The paper's analysis:

* Definition 1 stalls P0 *at the Unset* until the write of x is globally
  performed, and stalls P1's TestAndSet until the Unset completes;
* the Section-5.3 implementation never stalls P0 -- it commits the Unset
  and keeps doing its post-release work -- while P1's TestAndSet still
  waits (reserve bit) until the write of x is globally performed.

The experiment sweeps the write's global-perform latency (number of extra
sharers whose copies must be invalidated, i.e. more acks) and reports
P0's generation-gate stall cycles and both processors' finish times.
"""

from conftest import emit_table, mean

from repro.hw import AdveHillPolicy, Definition1Policy
from repro.litmus.figures import figure3_program
from repro.sim.system import SystemConfig, run_on_hardware

SEEDS = range(12)
SHARER_SWEEP = [0, 1, 2, 3]


def figure3_sweep():
    rows = []
    for sharers in SHARER_SWEEP:
        program = figure3_program(num_extra_sharers=sharers, post_release_work=80)
        for name, factory in (
            ("definition1", Definition1Policy),
            ("adve-hill", AdveHillPolicy),
        ):
            p0_gate, p0_done, p1_done = [], [], []
            for seed in SEEDS:
                run = run_on_hardware(program, factory(), SystemConfig(seed=seed))
                p0_gate.append(run.proc_stats[0].gate_stall_cycles)
                p0_done.append(run.proc_stats[0].halt_time)
                p1_done.append(run.proc_stats[1].halt_time)
            rows.append(
                (
                    sharers,
                    name,
                    f"{mean(p0_gate):.0f}",
                    f"{mean(p0_done):.0f}",
                    f"{mean(p1_done):.0f}",
                )
            )
    return rows


def test_e3_figure3_release_stalls(benchmark):
    rows = benchmark.pedantic(figure3_sweep, rounds=1, iterations=1)
    emit_table(
        "E3",
        "Figure 3 -- release-side stalls vs write-GP latency (12 seeds)",
        [
            "extra sharers of x",
            "implementation",
            "P0 gate-stall cycles",
            "P0 finish",
            "P1 finish",
        ],
        rows,
        notes=(
            "Paper: 'Def. 1 stalls P0 ... Def. 2 w.r.t. DRF0 need never\n"
            "stall P0'; 'P1's TestAndSet ... will still be blocked' (both)."
        ),
    )
    for sharers in SHARER_SWEEP:
        def1 = next(r for r in rows if r[0] == sharers and r[1] == "definition1")
        ah = next(r for r in rows if r[0] == sharers and r[1] == "adve-hill")
        # The releasing processor never gate-stalls under the new
        # implementation; under Definition 1 it does, and more with more
        # sharers to invalidate.
        assert float(ah[2]) == 0.0
        assert float(def1[2]) > 0.0
        # P0 finishes no later under the new implementation.
        assert float(ah[3]) <= float(def1[3]) + 1e-9
