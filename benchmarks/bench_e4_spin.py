"""E4 -- Section 6: spin serialization and the DRF1 refinement.

The paper: "One very important case where the example implementation is
likely to be slower ... occurs when software performs repeated testing of
a synchronization variable (e.g., the Test from a Test-and-TestAndSet ...)
The example implementation serializes all these synchronization
operations, treating them as writes.  This can lead to a significant
performance degradation.  The unnecessary serialization can be avoided by
improving on DRF0 to yield a new data-race-free model [DRF1]."

The experiment: one lock holder with a long critical section, several
Test-and-TestAndSet spinners.  Under the base implementation every spin
Test acquires the line exclusively (ownership ping-pong, interconnect
traffic, and a slow release because the holder's Unset must queue behind
the spinners' transfers).  The DRF1 optimization spins on shared cached
copies.
"""

from conftest import emit_table, mean

from repro.hw import AdveHillPolicy, Definition1Policy
from repro.sim.system import SystemConfig, run_on_hardware
from repro.workloads import contended_release_workload

SEEDS = range(8)
HOLD_SWEEP = [50, 150, 300, 600]
SPINNERS = 3


def spin_sweep():
    rows = []
    for hold in HOLD_SWEEP:
        program = contended_release_workload(
            num_spinners=SPINNERS, hold_cycles=hold
        )
        for name, factory in (
            ("adve-hill (DRF0)", AdveHillPolicy),
            ("adve-hill (DRF1 Test opt.)", lambda: AdveHillPolicy(drf1_optimized=True)),
            ("definition1", Definition1Policy),
        ):
            cycles, messages = [], []
            for seed in SEEDS:
                run = run_on_hardware(program, factory(), SystemConfig(seed=seed))
                assert run.result.memory_value("count") == SPINNERS + 1
                cycles.append(run.cycles)
                messages.append(run.messages_sent)
            rows.append(
                (hold, name, f"{mean(cycles):.0f}", f"{mean(messages):.0f}")
            )
    return rows


def test_e4_spin_serialization(benchmark):
    rows = benchmark.pedantic(spin_sweep, rounds=1, iterations=1)
    emit_table(
        "E4",
        f"Section 6 -- Test-and-TestAndSet spinning, {SPINNERS} spinners (8 seeds)",
        ["hold cycles", "implementation", "mean cycles", "mean messages"],
        rows,
        notes=(
            "Paper: the base implementation serializes spin Tests as writes;\n"
            "the DRF1 refinement lets them hit a shared cached copy, cutting\n"
            "interconnect traffic -- increasingly so with longer hold times."
        ),
    )
    for hold in HOLD_SWEEP[2:]:
        base = next(r for r in rows if r[0] == hold and "DRF0" in r[1])
        drf1 = next(r for r in rows if r[0] == hold and "DRF1" in r[1])
        assert float(drf1[3]) < float(base[3]), (
            f"hold={hold}: DRF1 should cut message traffic"
        )
